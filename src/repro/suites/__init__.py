"""Models and runnable miniatures of the ten surveyed benchmark suites.

This package regenerates the paper's evaluation artifacts:

* Table 1 (data-generation techniques) — derived by
  :mod:`repro.suites.classify` from capability facts in
  :mod:`repro.suites.registry`;
* Table 2 (benchmarking techniques) — derived from each suite's workload
  inventory;
* each suite additionally has an executable miniature
  (:mod:`repro.suites.miniatures`) running its workloads on this
  repository's engines.
"""

from repro.suites.classify import Table1Row, classify_generator, classify_suite
from repro.suites.miniatures import (
    MINIATURES,
    MiniatureReport,
    run_miniature,
)
from repro.suites.registry import SUITES, SuiteModel, suite
from repro.suites.tables import (
    PAPER_TABLE1,
    PAPER_TABLE2,
    Table2Row,
    generate_table1,
    generate_table2,
    table1_matches_paper,
    table2_matches_paper,
)

__all__ = [
    "MINIATURES",
    "MiniatureReport",
    "PAPER_TABLE1",
    "PAPER_TABLE2",
    "SUITES",
    "SuiteModel",
    "Table1Row",
    "Table2Row",
    "classify_generator",
    "classify_suite",
    "generate_table1",
    "generate_table2",
    "run_miniature",
    "suite",
    "table1_matches_paper",
    "table2_matches_paper",
]
