"""Derive the paper's Table 1 classifications from capability facts.

Section 4.1 defines the vocabulary:

* **Volume** — "the volume of synthetic data is *scalable*. By contrast,
  some benchmarks such as HiBench and LinkBench also use fixed-size data
  as inputs. Hence we call these benchmarks *partially scalable*."
* **Velocity** — "benchmarks [that] provide parallel strategies … the
  data generation rate can be controlled. However, … the data updating
  frequency is not considered … hence *semi-controllable*. We also call
  benchmarks *un-controllable* if both … are not considered."  A suite
  controlling both would be *fully controllable* (Section 5.1's goal).
* **Veracity** — *un-considered* when "the generation process of
  synthetic data is independent of the benchmarking applications";
  *partially considered* when a portion of data uses distributions
  derived from real data; *considered* when per-type data models capture
  and preserve real-data characteristics.

These rules are code here, so Table 1 is regenerated, not transcribed.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.suites.registry import GeneratorCapability, SuiteModel


@dataclass(frozen=True)
class Table1Row:
    """One derived row of Table 1."""

    benchmark: str
    volume: str
    velocity: str
    variety: str
    veracity: str


def classify_volume(capability: GeneratorCapability) -> str:
    if capability.scalable_volume and capability.fixed_size_inputs:
        return "Partially scalable"
    if capability.scalable_volume:
        return "Scalable"
    return "Fixed"


def classify_velocity(capability: GeneratorCapability) -> str:
    if capability.parallel_generation and capability.update_frequency_control:
        return "Fully controllable"
    if capability.parallel_generation:
        return "Semi-controllable"
    return "Un-controllable"


def classify_variety(capability: GeneratorCapability) -> str:
    return ", ".join(capability.data_sources)


def classify_veracity(capability: GeneratorCapability) -> str:
    if capability.full_real_data_models:
        return "Considered"
    if capability.partial_real_data_models:
        return "Partially considered"
    if capability.generation_independent_of_apps:
        return "Un-considered"
    return "Un-considered"


def classify_suite(model: SuiteModel) -> Table1Row:
    """Derive one suite's Table 1 row from its capability facts."""
    capability = model.capability
    return Table1Row(
        benchmark=model.name,
        volume=classify_volume(capability),
        velocity=classify_velocity(capability),
        variety=classify_variety(capability),
        veracity=classify_veracity(capability),
    )


def classify_generator(generator) -> Table1Row:
    """Classify one of *our own* data generators on the same axes.

    Used by the benchmarks to show where this framework's generators land
    in the paper's taxonomy (the Section 5.1 'fully controllable' goal).
    """
    from repro.datagen.base import DataGenerator

    assert isinstance(generator, DataGenerator)
    capability = GeneratorCapability(
        data_sources=(generator.data_type.label,),
        scalable_volume=True,
        fixed_size_inputs=False,
        parallel_generation=True,  # every generator partitions
        update_frequency_control=True,  # UpdateScheduler exists for all
        generation_independent_of_apps=not generator.veracity_aware,
        partial_real_data_models=False,
        full_real_data_models=generator.veracity_aware,
    )
    return Table1Row(
        benchmark=f"repro:{generator.name}",
        volume=classify_volume(capability),
        velocity=classify_velocity(capability),
        variety=classify_variety(capability),
        veracity=classify_veracity(capability),
    )
