"""Declarative models of the ten benchmark suites the paper surveys.

Each :class:`SuiteModel` records the suite's data-generation capabilities
(the raw facts Section 4.1 discusses) and its workload inventory (the raw
facts behind Table 2).  The Table 1 *classifications* — scalable vs
partially scalable, un- vs semi-controllable, the veracity levels — are
NOT stored here: they are derived from these capability facts by
:mod:`repro.suites.classify`, and the benchmark harness asserts that the
derivation reproduces the paper's table row for row.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class GeneratorCapability:
    """Data-generation facts about one suite (inputs to Table 1)."""

    #: Data sources the suite's inputs cover, in the paper's order.
    data_sources: tuple[str, ...]
    #: Synthetic data volume can be scaled by a parameter.
    scalable_volume: bool
    #: The suite also ships (or depends on) fixed-size data sets.
    fixed_size_inputs: bool
    #: Multiple data generators can run in parallel (generation rate).
    parallel_generation: bool
    #: The data updating frequency can be controlled.
    update_frequency_control: bool
    #: Synthetic generation is independent of the benchmarked applications.
    generation_independent_of_apps: bool
    #: A small portion of data uses distributions derived from real data.
    partial_real_data_models: bool
    #: Per-type data models capture and preserve real-data characteristics.
    full_real_data_models: bool


@dataclass(frozen=True)
class WorkloadEntry:
    """One (category, examples) row of a suite's workload inventory."""

    category: str  # "Online services" | "Offline analytics" | "Real-time analytics"
    examples: str


@dataclass(frozen=True)
class SuiteModel:
    """One surveyed benchmark suite."""

    name: str
    reference: str  # the paper's citation key
    capability: GeneratorCapability
    workloads: tuple[WorkloadEntry, ...]
    software_stacks: str
    #: Which target systems the suite evaluates (Section 4.2 prose).
    target_systems: str = ""
    notes: str = ""


def _suite_models() -> tuple[SuiteModel, ...]:
    return (
        SuiteModel(
            name="HiBench",
            reference="[12]",
            capability=GeneratorCapability(
                data_sources=("Texts",),
                scalable_volume=True,
                fixed_size_inputs=True,
                parallel_generation=False,
                update_frequency_control=False,
                generation_independent_of_apps=True,
                partial_real_data_models=False,
                full_real_data_models=False,
            ),
            workloads=(
                WorkloadEntry(
                    "Offline analytics",
                    "Sort, WordCount, TeraSort, PageRank, K-means, "
                    "Bayes classification",
                ),
                WorkloadEntry("Real-time analytics", "Nutch Indexing"),
            ),
            software_stacks="Hadoop and Hive",
            target_systems="MapReduce Hadoop systems",
        ),
        SuiteModel(
            name="GridMix",
            reference="[4]",
            capability=GeneratorCapability(
                data_sources=("Texts",),
                scalable_volume=True,
                fixed_size_inputs=False,
                parallel_generation=False,
                update_frequency_control=False,
                generation_independent_of_apps=True,
                partial_real_data_models=False,
                full_real_data_models=False,
            ),
            workloads=(
                WorkloadEntry("Online services", "Sort, sampling a large dataset"),
            ),
            software_stacks="Hadoop",
            target_systems="MapReduce Hadoop systems",
        ),
        SuiteModel(
            name="PigMix",
            reference="[6]",
            capability=GeneratorCapability(
                data_sources=("Texts",),
                scalable_volume=True,
                fixed_size_inputs=False,
                parallel_generation=False,
                update_frequency_control=False,
                generation_independent_of_apps=True,
                partial_real_data_models=False,
                full_real_data_models=False,
            ),
            workloads=(WorkloadEntry("Online services", "12 data queries"),),
            software_stacks="Hadoop",
            target_systems="MapReduce Hadoop systems",
        ),
        SuiteModel(
            name="YCSB",
            reference="[9]",
            capability=GeneratorCapability(
                data_sources=("Tables",),
                scalable_volume=True,
                fixed_size_inputs=False,
                parallel_generation=False,
                update_frequency_control=False,
                generation_independent_of_apps=True,
                partial_real_data_models=False,
                full_real_data_models=False,
            ),
            workloads=(
                WorkloadEntry("Online services", "OLTP (read, write, scan, update)"),
            ),
            software_stacks="NoSQL systems",
            target_systems=(
                "Cassandra and HBase vs PNUTS and MySQL (cloud serving stores)"
            ),
        ),
        SuiteModel(
            name="Performance benchmark",
            reference="[15]",
            capability=GeneratorCapability(
                data_sources=("Tables", "texts"),
                scalable_volume=True,
                fixed_size_inputs=False,
                parallel_generation=False,
                update_frequency_control=False,
                generation_independent_of_apps=True,
                partial_real_data_models=False,
                full_real_data_models=False,
            ),
            workloads=(
                WorkloadEntry(
                    "Online services",
                    "Data loading, select, aggregate, join, count URL links",
                ),
            ),
            software_stacks="DBMS and Hadoop",
            target_systems="parallel SQL DBMSs (DBMS-X, Vertica) vs MapReduce",
        ),
        SuiteModel(
            name="TPC-DS",
            reference="[11]",
            capability=GeneratorCapability(
                data_sources=("Tables",),
                scalable_volume=True,
                fixed_size_inputs=False,
                parallel_generation=True,
                update_frequency_control=False,
                generation_independent_of_apps=False,
                partial_real_data_models=True,
                full_real_data_models=False,
            ),
            workloads=(
                WorkloadEntry(
                    "Online services", "Data loading, queries and maintenance"
                ),
            ),
            software_stacks="DBMS",
            target_systems="decision-support DBMSs",
            notes="MUDD generates a small portion of crucial data sets from "
            "realistic distributions",
        ),
        SuiteModel(
            name="BigBench",
            reference="[11]",
            capability=GeneratorCapability(
                data_sources=("Texts", "web logs", "tables"),
                scalable_volume=True,
                fixed_size_inputs=False,
                parallel_generation=True,
                update_frequency_control=False,
                generation_independent_of_apps=False,
                partial_real_data_models=True,
                full_real_data_models=False,
            ),
            workloads=(
                WorkloadEntry(
                    "Online services",
                    "Database operations (select, create and drop tables)",
                ),
                WorkloadEntry("Offline analytics", "K-means, classification"),
            ),
            software_stacks="DBMS and Hadoop",
            target_systems="Teradata Aster DBMS and MapReduce systems",
            notes="web logs and reviews derive from the table data",
        ),
        SuiteModel(
            name="LinkBench",
            reference="[17]",
            capability=GeneratorCapability(
                data_sources=("Graphs",),
                scalable_volume=True,
                fixed_size_inputs=True,
                parallel_generation=True,
                update_frequency_control=False,
                generation_independent_of_apps=False,
                partial_real_data_models=True,
                full_real_data_models=False,
            ),
            workloads=(
                WorkloadEntry(
                    "Online services",
                    "Simple operations such as select, insert, update, and "
                    "delete; and association range queries and count queries",
                ),
            ),
            software_stacks="DBMS",
            target_systems="MySQL storing Facebook's social graph",
        ),
        SuiteModel(
            name="CloudSuite",
            reference="[10]",
            capability=GeneratorCapability(
                data_sources=("Texts", "graphs", "videos", "tables"),
                scalable_volume=True,
                fixed_size_inputs=True,
                parallel_generation=True,
                update_frequency_control=False,
                generation_independent_of_apps=False,
                partial_real_data_models=True,
                full_real_data_models=False,
            ),
            workloads=(
                WorkloadEntry("Online services", "YCSB's workloads"),
                WorkloadEntry(
                    "Offline analytics", "Text classification, WordCount"
                ),
            ),
            software_stacks="NoSQL systems, Hadoop, GraphLab",
            target_systems="cloud service architectures",
        ),
        SuiteModel(
            name="BigDataBench",
            reference="[19]",
            capability=GeneratorCapability(
                data_sources=("Texts", "resumes", "graphs", "tables"),
                scalable_volume=True,
                fixed_size_inputs=False,
                parallel_generation=True,
                update_frequency_control=False,
                generation_independent_of_apps=False,
                partial_real_data_models=False,
                full_real_data_models=True,
            ),
            workloads=(
                WorkloadEntry(
                    "Online services", "Database operations (read, write, scan)"
                ),
                WorkloadEntry(
                    "Offline analytics",
                    "Micro Benchmarks (sort, grep, WordCount, CFS); search "
                    "engine (index, PageRank); social network (K-means, "
                    "connected components (CC)); e-commerce (collaborative "
                    "filtering (CF), Naive Bayes)",
                ),
                WorkloadEntry(
                    "Real-time analytics",
                    "Relational database query (select, aggregate, join)",
                ),
            ),
            software_stacks=(
                "NoSQL systems, DBMS, real-time and offline analytics systems"
            ),
            target_systems="a hybrid of different big data systems",
        ),
    )


#: The ten surveyed suites, in the paper's Table 1 order.
SUITES: tuple[SuiteModel, ...] = _suite_models()


def suite(name: str) -> SuiteModel:
    """Look a suite model up by name."""
    for model in SUITES:
        if model.name == name:
            return model
    raise KeyError(
        f"unknown suite {name!r}; known: {[model.name for model in SUITES]}"
    )
