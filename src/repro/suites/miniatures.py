"""Runnable miniatures of the ten surveyed benchmark suites.

Table 2 lists what each suite runs; this module makes every row
executable on this repository's engines, at laptop scale.  A miniature is
not a faithful port (DESIGN.md §2 documents the substitution) — it is the
suite's *workload inventory* exercised end to end: the same operations,
categories, and software-stack shape, producing real measurements.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.core.errors import ExecutionError
from repro.datagen.base import DataSet
from repro.datagen.corpus import load_retail_tables, load_text_corpus
from repro.datagen.graph import RmatGraphGenerator
from repro.datagen.kv import KeyValueGenerator
from repro.datagen.mixture import GaussianMixtureGenerator
from repro.datagen.sampling import reservoir_sample
from repro.datagen.table import TableGenerator, retail_star_schema
from repro.datagen.text import LdaTextGenerator, RandomTextGenerator
from repro.datagen.weblog import WebLogGenerator
from repro.engines.dbms import DbmsEngine, col, lit
from repro.engines.mapreduce import MapReduceEngine
from repro.engines.nosql import NoSqlStore, YcsbClient, STANDARD_WORKLOADS
from repro.workloads import (
    ConnectedComponentsWorkload,
    CollaborativeFilteringWorkload,
    CountUrlLinksWorkload,
    GrepWorkload,
    InvertedIndexWorkload,
    KMeansWorkload,
    NaiveBayesWorkload,
    PageRankWorkload,
    RelationalQueryWorkload,
    SortWorkload,
    TeraSortWorkload,
    WordCountWorkload,
    YcsbWorkload,
)


@dataclass
class MiniatureReport:
    """What one suite miniature ran and measured."""

    suite: str
    runs: dict[str, Any] = field(default_factory=dict)
    notes: str = ""

    @property
    def workload_names(self) -> list[str]:
        return sorted(self.runs)

    def summary(self) -> dict[str, float]:
        """workload → duration seconds (uniform high-level view)."""
        summary = {}
        for name, result in self.runs.items():
            duration = getattr(result, "duration_seconds", None)
            if duration is None and isinstance(result, dict):
                duration = result.get("duration_seconds", 0.0)
            summary[name] = float(duration or 0.0)
        return summary


def _scaled(base: int, scale: float) -> int:
    return max(10, int(round(base * scale)))


def _text_data(scale: float, seed: int = 11) -> DataSet:
    return RandomTextGenerator(document_length=20, seed=seed).generate(
        _scaled(120, scale)
    )


def _lda_text(scale: float, seed: int = 12) -> DataSet:
    generator = LdaTextGenerator(iterations=10, seed=seed)
    generator.fit(load_text_corpus(num_documents=80, words_per_document=40))
    return generator.generate(_scaled(120, scale))


def _graph_data(scale: float, seed: int = 13) -> DataSet:
    return RmatGraphGenerator(seed=seed).generate(_scaled(128, scale))


def _kv_data(scale: float, seed: int = 14) -> DataSet:
    return KeyValueGenerator(field_count=4, field_length=20, seed=seed).generate(
        _scaled(200, scale)
    )


def _mixture_data(scale: float, seed: int = 15) -> DataSet:
    return GaussianMixtureGenerator(seed=seed).generate(_scaled(200, scale))


# ---------------------------------------------------------------------------
# Miniatures
# ---------------------------------------------------------------------------


def hibench_miniature(scale: float = 1.0) -> MiniatureReport:
    """HiBench: MapReduce micro + ML workloads on Hadoop-like stack."""
    report = MiniatureReport("HiBench", notes="offline analytics on MapReduce")
    text = _text_data(scale)
    report.runs["sort"] = SortWorkload().run(MapReduceEngine(), text)
    report.runs["wordcount"] = WordCountWorkload().run(MapReduceEngine(), text)
    report.runs["terasort"] = TeraSortWorkload().run(MapReduceEngine(), text)
    report.runs["pagerank"] = PageRankWorkload().run(
        MapReduceEngine(), _graph_data(scale), max_iterations=10
    )
    report.runs["kmeans"] = KMeansWorkload().run(
        MapReduceEngine(), _mixture_data(scale), num_clusters=4, max_iterations=8
    )
    lda = _lda_text(scale)
    report.runs["bayes"] = NaiveBayesWorkload().run(MapReduceEngine(), lda)
    report.runs["nutch-indexing"] = InvertedIndexWorkload().run(
        MapReduceEngine(), lda
    )
    return report


def gridmix_miniature(scale: float = 1.0) -> MiniatureReport:
    """GridMix: sort plus sampling a large data set, on MapReduce."""
    report = MiniatureReport("GridMix", notes="Hadoop mix jobs")
    text = _text_data(scale, seed=21)
    report.runs["sort"] = SortWorkload().run(MapReduceEngine(), text)
    sample = reservoir_sample(text.records, max(5, text.num_records // 10), seed=3)
    report.runs["sampling"] = {
        "records_in": text.num_records,
        "records_out": len(sample),
        "duration_seconds": 0.0,
    }
    return report


#: PigMix's "12 data queries", expressed in the SQL front-end so the
#: miniature exercises parser → planner → executor end to end.
PIGMIX_QUERIES: dict[str, str] = {
    "L1-project": "SELECT order_id, quantity FROM orders",
    "L2-filter": "SELECT * FROM orders WHERE quantity >= 3",
    "L3-join": (
        "SELECT * FROM orders "
        "JOIN customers ON orders.customer_id = customers.customer_id"
    ),
    "L4-group": (
        "SELECT customer_id, COUNT(*) AS n FROM orders GROUP BY customer_id"
    ),
    "L5-sum": (
        "SELECT product_id, SUM(quantity) AS total "
        "FROM orders GROUP BY product_id"
    ),
    "L6-orderby": "SELECT * FROM products ORDER BY price DESC",
    "L7-limit": "SELECT * FROM orders ORDER BY day LIMIT 10",
    "L8-avg": (
        "SELECT country, AVG(age) AS mean_age FROM customers GROUP BY country"
    ),
    "L9-two-joins": (
        "SELECT * FROM orders "
        "JOIN customers ON orders.customer_id = customers.customer_id "
        "JOIN products ON orders.product_id = products.product_id"
    ),
    "L10-filtered-join": (
        "SELECT * FROM orders "
        "JOIN products ON orders.product_id = products.product_id "
        "WHERE day < 180"
    ),
    "L11-minmax": (
        "SELECT category, MIN(price) AS cheapest, MAX(price) AS dearest "
        "FROM products GROUP BY category"
    ),
    "L12-distinct-ish": (
        "SELECT customer_id, product_id, COUNT(*) AS n "
        "FROM orders GROUP BY customer_id, product_id"
    ),
}


def pigmix_miniature(scale: float = 1.0) -> MiniatureReport:
    """PigMix: 12 data queries, written in SQL, on the relational engine."""
    engine = DbmsEngine()
    for name, dataset in load_retail_tables(
        num_customers=_scaled(60, scale),
        num_products=_scaled(40, scale),
        num_orders=_scaled(200, scale),
    ).items():
        engine.load_dataset(dataset, name)
    report = MiniatureReport("PigMix", notes="12 SQL data queries on the DBMS")
    for name, sql_text in PIGMIX_QUERIES.items():
        result = engine.sql(sql_text)
        report.runs[name] = {
            "rows": len(result.rows),
            "duration_seconds": result.wall_seconds,
        }
    return report


def ycsb_miniature(scale: float = 1.0) -> MiniatureReport:
    """YCSB: core workloads A/B/C against the NoSQL store."""
    report = MiniatureReport("YCSB", notes="cloud serving workloads")
    for mix in ("A", "B", "C"):
        store = NoSqlStore(num_partitions=8, replication=2, seed=31)
        client = YcsbClient(store, STANDARD_WORKLOADS[mix](), seed=32)
        client.load(_scaled(150, scale))
        run = client.run(_scaled(400, scale))
        report.runs[f"workload-{mix}"] = {
            "throughput_ops_per_second": run.throughput_ops_per_second,
            "duration_seconds": run.simulated_seconds,
            "failures": run.failures,
        }
    return report


def pavlo_miniature(scale: float = 1.0) -> MiniatureReport:
    """Pavlo performance benchmark: the DBMS-vs-MapReduce comparison."""
    report = MiniatureReport(
        "Performance benchmark", notes="same tasks on DBMS and Hadoop"
    )
    orders = load_retail_tables(num_orders=_scaled(300, scale))["orders"]
    workload = RelationalQueryWorkload()
    report.runs["select-join-aggregate@dbms"] = workload.run(DbmsEngine(), orders)
    report.runs["select-join-aggregate@mapreduce"] = workload.run(
        MapReduceEngine(), orders
    )
    tables = load_retail_tables(
        num_customers=_scaled(50, scale), num_products=_scaled(30, scale)
    )
    weblog = WebLogGenerator(
        tables["customers"], tables["products"], seed=41
    ).generate(_scaled(300, scale))
    counter = CountUrlLinksWorkload()
    report.runs["count-url-links@dbms"] = counter.run(DbmsEngine(), weblog)
    report.runs["count-url-links@mapreduce"] = counter.run(
        MapReduceEngine(), weblog
    )
    report.runs["grep@mapreduce"] = GrepWorkload().run(
        MapReduceEngine(), _text_data(scale, seed=42), pattern_text="river"
    )
    return report


def tpcds_miniature(scale: float = 1.0) -> MiniatureReport:
    """TPC-DS: load a star schema, run queries, apply data maintenance."""
    engine = DbmsEngine()
    schemas = retail_star_schema(
        num_customers=_scaled(80, scale), num_products=_scaled(40, scale)
    )
    import time

    started = time.perf_counter()
    for name, schema in schemas.items():
        volume = {"customers": 80, "products": 40, "orders": 400}[name]
        dataset = TableGenerator(schema, seed=51).generate(_scaled(volume, scale))
        engine.load_dataset(dataset, name)
    load_seconds = time.perf_counter() - started
    report = MiniatureReport("TPC-DS", notes="decision support on a DBMS")
    report.runs["data-loading"] = {"duration_seconds": load_seconds}
    decision_query = engine.execute(
        engine.query("orders")
        .join("products", "product_id", "product_id")
        .where(col("quantity") >= lit(2))
        .group_by("category")
        .aggregate("sum", "quantity", "volume")
        .order_by("volume", descending=True)
    )
    report.runs["reporting-query"] = {
        "rows": len(decision_query.rows),
        "duration_seconds": decision_query.wall_seconds,
    }
    maintained = engine.update(
        "orders", col("quantity") == lit(1), {"quantity": 2}
    )
    deleted = engine.delete("orders", col("day") >= lit(360))
    report.runs["data-maintenance"] = {
        "rows_updated": maintained,
        "rows_deleted": deleted,
        "duration_seconds": 0.0,
    }
    return report


def bigbench_miniature(scale: float = 1.0) -> MiniatureReport:
    """BigBench: TPC-DS tables + chained web logs/reviews + analytics."""
    report = MiniatureReport(
        "BigBench", notes="structured + semi-structured + analytics"
    )
    tables = load_retail_tables(
        num_customers=_scaled(60, scale),
        num_products=_scaled(30, scale),
        num_orders=_scaled(250, scale),
    )
    engine = DbmsEngine()
    for name, dataset in tables.items():
        engine.load_dataset(dataset, name)
    database_ops = engine.execute(
        engine.query("orders").where(col("quantity") >= lit(2))
    )
    report.runs["database-select"] = {
        "rows": len(database_ops.rows),
        "duration_seconds": database_ops.wall_seconds,
    }
    engine.create_table("scratch", ("id", "value"))
    engine.drop_table("scratch")
    report.runs["create-drop-table"] = {"duration_seconds": 0.0}
    weblog = WebLogGenerator(
        tables["customers"], tables["products"], seed=61
    ).generate(_scaled(200, scale))
    report.runs["weblog-generation"] = {
        "records_out": weblog.num_records,
        "duration_seconds": 0.0,
    }
    report.runs["kmeans"] = KMeansWorkload().run(
        MapReduceEngine(), _mixture_data(scale, seed=62),
        num_clusters=3, max_iterations=6,
    )
    report.runs["classification"] = NaiveBayesWorkload().run(
        MapReduceEngine(), _lda_text(scale, seed=63)
    )
    return report


def linkbench_miniature(scale: float = 1.0) -> MiniatureReport:
    """LinkBench: social-graph node/link operations against a store."""
    store = NoSqlStore(num_partitions=8, replication=1, seed=71)
    graph = _graph_data(scale, seed=72)
    import numpy as np

    rng = np.random.default_rng(73)
    for index, (src, dst) in enumerate(graph.records):
        store.insert(f"node:{src:08d}", {"degree_hint": 0})
        store.insert(f"link:{src:08d}:{dst:08d}", {"position": index})
    latencies: dict[str, list[float]] = {
        "get-node": [], "insert-link": [], "update-node": [],
        "delete-link": [], "range-query": [], "count-query": [],
    }
    vertices = sorted({v for edge in graph.records for v in edge})
    for _ in range(_scaled(150, scale)):
        vertex = vertices[int(rng.integers(len(vertices)))]
        latencies["get-node"].append(
            store.read(f"node:{vertex:08d}").latency_seconds
        )
        other = vertices[int(rng.integers(len(vertices)))]
        latencies["insert-link"].append(
            store.insert(f"link:{vertex:08d}:{other:08d}", {"position": -1}).latency_seconds
        )
        latencies["update-node"].append(
            store.update(f"node:{vertex:08d}", {"degree_hint": 1}).latency_seconds
        )
        latencies["delete-link"].append(
            store.delete(f"link:{vertex:08d}:{other:08d}").latency_seconds
        )
        scan = store.scan(f"link:{vertex:08d}:", 20)
        latencies["range-query"].append(scan.latency_seconds)
        latencies["count-query"].append(scan.latency_seconds)
    report = MiniatureReport("LinkBench", notes="social graph serving store")
    for name, samples in latencies.items():
        report.runs[name] = {
            "operations": len(samples),
            "mean_latency_seconds": sum(samples) / len(samples),
            "duration_seconds": sum(samples),
        }
    return report


def cloudsuite_miniature(scale: float = 1.0) -> MiniatureReport:
    """CloudSuite: serving (YCSB) plus analytics (classification, WC)."""
    report = MiniatureReport("CloudSuite", notes="cloud service architecture")
    inner = ycsb_miniature(scale)
    for name, run in inner.runs.items():
        report.runs[f"ycsb-{name}"] = run
    report.runs["text-classification"] = NaiveBayesWorkload().run(
        MapReduceEngine(), _lda_text(scale, seed=81)
    )
    report.runs["wordcount"] = WordCountWorkload().run(
        MapReduceEngine(), _text_data(scale, seed=82)
    )
    return report


def bigdatabench_miniature(scale: float = 1.0) -> MiniatureReport:
    """BigDataBench: one representative per scenario and domain."""
    report = MiniatureReport(
        "BigDataBench", notes="micro + OLTP + relational + 3 domains"
    )
    text = _text_data(scale, seed=91)
    report.runs["micro-sort"] = SortWorkload().run(MapReduceEngine(), text)
    report.runs["micro-grep"] = GrepWorkload().run(
        MapReduceEngine(), text, pattern_text="stone"
    )
    report.runs["micro-wordcount"] = WordCountWorkload().run(
        MapReduceEngine(), text
    )
    from repro.engines.dfs import DistributedFileSystem
    from repro.workloads import CfsWorkload

    report.runs["micro-cfs"] = CfsWorkload().run(
        DistributedFileSystem(), text, files=4
    )
    report.runs["cloud-oltp"] = YcsbWorkload().run(
        NoSqlStore(seed=92), _kv_data(scale, seed=93),
        workload_mix="B", operation_count=_scaled(300, scale),
    )
    orders = load_retail_tables(num_orders=_scaled(250, scale))["orders"]
    report.runs["relational-query"] = RelationalQueryWorkload().run(
        DbmsEngine(), orders
    )
    lda = _lda_text(scale, seed=94)
    report.runs["search-index"] = InvertedIndexWorkload().run(
        MapReduceEngine(), lda
    )
    report.runs["search-pagerank"] = PageRankWorkload().run(
        MapReduceEngine(), _graph_data(scale, seed=95), max_iterations=10
    )
    report.runs["social-kmeans"] = KMeansWorkload().run(
        MapReduceEngine(), _mixture_data(scale, seed=96),
        num_clusters=4, max_iterations=6,
    )
    report.runs["social-cc"] = ConnectedComponentsWorkload().run(
        MapReduceEngine(), _graph_data(scale, seed=97), max_iterations=20
    )
    report.runs["ecommerce-cf"] = CollaborativeFilteringWorkload().run(
        MapReduceEngine(), orders
    )
    report.runs["ecommerce-bayes"] = NaiveBayesWorkload().run(
        MapReduceEngine(), lda
    )
    # Variety fidelity: BigDataBench's Table 1 row lists resumes among
    # its data sources.
    from repro.datagen.resume import ResumeGenerator, cluster_cohesion

    resumes = ResumeGenerator(seed=98).generate(_scaled(100, scale))
    report.runs["data-resumes"] = {
        "records_out": resumes.num_records,
        "skill_cluster_cohesion": cluster_cohesion(resumes.records),
        "duration_seconds": 0.0,
    }
    return report


#: suite name → miniature runner, in Table 1/2 order.
MINIATURES = {
    "HiBench": hibench_miniature,
    "GridMix": gridmix_miniature,
    "PigMix": pigmix_miniature,
    "YCSB": ycsb_miniature,
    "Performance benchmark": pavlo_miniature,
    "TPC-DS": tpcds_miniature,
    "BigBench": bigbench_miniature,
    "LinkBench": linkbench_miniature,
    "CloudSuite": cloudsuite_miniature,
    "BigDataBench": bigdatabench_miniature,
}


def run_miniature(name: str, scale: float = 1.0) -> MiniatureReport:
    """Run one suite miniature by name."""
    runner = MINIATURES.get(name)
    if runner is None:
        raise ExecutionError(
            f"unknown miniature {name!r}; available: {sorted(MINIATURES)}"
        )
    return runner(scale)
