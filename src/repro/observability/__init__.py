"""Structured tracing & instrumentation (cross-cutting, zero-dependency).

Gives every layer of the Figure-2 architecture a shared measurement
substrate: the five-step process, test/data generation, the dataset
cache, the runner's executor backends, and the MapReduce runtime all
record into the thread's current :class:`Tracer`.  See
:mod:`repro.observability.tracing`.
"""

from repro.observability.tracing import (
    NULL_SPAN,
    NULL_TRACER,
    Span,
    Tracer,
    current_tracer,
    summarize_spans,
    trace_span,
)

__all__ = [
    "NULL_SPAN",
    "NULL_TRACER",
    "Span",
    "Tracer",
    "current_tracer",
    "summarize_spans",
    "trace_span",
]
