"""Structured tracing for the five-step process (zero dependencies).

The paper's execution layer owes users *result analysis* over the whole
benchmarking process (Figure 1), and the surveyed suites stress that
benchmark numbers are only trustworthy with per-phase instrumentation.
This module is the measurement substrate: a :class:`Tracer` producing
nested :class:`Span` trees with monotonic timings, attributes, and
counters, safe to use from the thread and process executor backends.

Design constraints, in order:

* **Zero overhead when off.**  The disabled tracer hands out one shared
  no-op context manager and one shared no-op span; instrumented code
  pays a thread-local lookup and two method calls per span, nothing
  else.  ``if span:`` is the idiomatic guard for work that only matters
  when tracing (the null span is falsy).
* **Thread safety.**  Each thread keeps its own span stack
  (``threading.local``); finished root spans are appended to a shared,
  lock-protected list.  Worker threads and processes record into their
  own local tracer and the parent grafts the finished trees in
  submission order, so a traced parallel run renders the same tree
  shape as the serial path.
* **Process-merge safety.**  Spans serialize to plain dicts
  (:meth:`Span.to_dict` / :meth:`Span.from_dict`); worker processes
  return their span trees inside the ``RunResult`` payload and the
  parent grafts them in submission order.

Instrumented code does not pass tracers around: it opens spans on the
thread's *current* tracer (:func:`trace_span`), which defaults to the
disabled :data:`NULL_TRACER` until :meth:`Tracer.activate` installs a
real one.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass, field
from typing import Any


@dataclass
class Span:
    """One timed region of the benchmarking process.

    ``started`` is a :func:`time.perf_counter` reading, meaningful only
    within the process that recorded it; serialized spans keep just the
    duration.
    """

    name: str
    attrs: dict[str, Any] = field(default_factory=dict)
    counters: dict[str, float] = field(default_factory=dict)
    started: float = 0.0
    duration_seconds: float = 0.0
    children: list["Span"] = field(default_factory=list)

    def set(self, **attrs: Any) -> "Span":
        """Attach (or overwrite) attributes; returns self for chaining."""
        self.attrs.update(attrs)
        return self

    def incr(self, counter: str, amount: float = 1) -> "Span":
        """Bump a named counter on this span."""
        self.counters[counter] = self.counters.get(counter, 0) + amount
        return self

    def record_max(self, counter: str, value: float) -> "Span":
        """Keep the running maximum of a gauge-style counter.

        Used for high-water marks (e.g. ``peak_batch_bytes`` on the
        chunked data path) where summing samples would be meaningless.
        """
        current = self.counters.get(counter)
        if current is None or value > current:
            self.counters[counter] = value
        return self

    @property
    def self_seconds(self) -> float:
        """Time spent in this span excluding its children."""
        return max(
            0.0,
            self.duration_seconds
            - sum(child.duration_seconds for child in self.children),
        )

    def walk(self):
        """Depth-first iteration over this span and all descendants."""
        yield self
        for child in self.children:
            yield from child.walk()

    def to_dict(self) -> dict[str, Any]:
        """A JSON-friendly (and picklable) tree representation."""
        payload: dict[str, Any] = {
            "name": self.name,
            "duration_seconds": self.duration_seconds,
        }
        if self.attrs:
            payload["attrs"] = dict(self.attrs)
        if self.counters:
            payload["counters"] = dict(self.counters)
        if self.children:
            payload["children"] = [child.to_dict() for child in self.children]
        return payload

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "Span":
        return cls(
            name=payload["name"],
            attrs=dict(payload.get("attrs", {})),
            counters=dict(payload.get("counters", {})),
            duration_seconds=payload.get("duration_seconds", 0.0),
            children=[
                cls.from_dict(child) for child in payload.get("children", [])
            ],
        )


class _NullSpan:
    """The no-op span the disabled tracer yields (falsy by design)."""

    __slots__ = ()

    def set(self, **attrs: Any) -> "_NullSpan":
        return self

    def incr(self, counter: str, amount: float = 1) -> "_NullSpan":
        return self

    def record_max(self, counter: str, value: float) -> "_NullSpan":
        return self

    def __bool__(self) -> bool:
        return False


NULL_SPAN = _NullSpan()


class _NullSpanContext:
    """Shared context manager for disabled tracing (no allocation)."""

    __slots__ = ()

    def __enter__(self) -> _NullSpan:
        return NULL_SPAN

    def __exit__(self, *exc_info: object) -> bool:
        return False


_NULL_CONTEXT = _NullSpanContext()


class _SpanContext:
    """Opens a span on ``__enter__``, closes and files it on ``__exit__``."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", name: str, attrs: dict[str, Any]):
        self._tracer = tracer
        self._span = Span(name=name, attrs=attrs)

    def __enter__(self) -> Span:
        span = self._span
        span.started = time.perf_counter()
        self._tracer._stack().append(span)
        return span

    def __exit__(self, exc_type, exc_value, traceback) -> bool:
        span = self._span
        span.duration_seconds = time.perf_counter() - span.started
        if exc_type is not None:
            span.attrs["error"] = exc_type.__name__
        stack = self._tracer._stack()
        stack.pop()
        if stack:
            stack[-1].children.append(span)
        else:
            self._tracer._file_root(span)
        return False


class Tracer:
    """Collects nested spans; thread-safe, mergeable across processes."""

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._local = threading.local()
        self._roots: list[Span] = []
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------

    def span(self, name: str, **attrs: Any):
        """Context manager timing one region: ``with tracer.span(...)``."""
        if not self.enabled:
            return _NULL_CONTEXT
        return _SpanContext(self, name, attrs)

    def current(self) -> Span | None:
        """The innermost open span on this thread, if any."""
        if not self.enabled:
            return None
        stack = self._stack()
        return stack[-1] if stack else None

    def annotate(self, **attrs: Any) -> None:
        """Set attributes on the current span (no-op when none is open)."""
        span = self.current()
        if span is not None:
            span.set(**attrs)

    def count(self, counter: str, amount: float = 1) -> None:
        """Bump a counter on the current span (no-op when none is open)."""
        span = self.current()
        if span is not None:
            span.incr(counter, amount)

    def count_max(self, counter: str, value: float) -> None:
        """Record a running-maximum gauge on the current span.

        The high-water-mark companion of :meth:`count`: used by the
        chunked data path for ``peak_batch_bytes``, where the largest
        observed value is the answer and sums would mislead.
        """
        span = self.current()
        if span is not None:
            span.record_max(counter, value)

    def graft(self, spans: list[Span]) -> None:
        """Adopt finished span trees (worker output) in the given order.

        Grafted trees become children of the current span, or new roots
        when no span is open — exactly where a serial execution would
        have produced them.
        """
        if not self.enabled or not spans:
            return
        parent = self.current()
        if parent is not None:
            parent.children.extend(spans)
        else:
            with self._lock:
                self._roots.extend(spans)

    # ------------------------------------------------------------------
    # Collection
    # ------------------------------------------------------------------

    def roots(self) -> list[Span]:
        """Finished top-level spans, in completion order."""
        with self._lock:
            return list(self._roots)

    def clear(self) -> None:
        with self._lock:
            self._roots.clear()

    def to_jsonl(self) -> str:
        """One JSON object per root span tree (the ``--trace-out`` dump)."""
        return "\n".join(
            json.dumps(root.to_dict(), sort_keys=True, default=str)
            for root in self.roots()
        )

    def activate(self) -> "_TracerActivation":
        """Install as this thread's current tracer for a ``with`` block."""
        return _TracerActivation(self)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def _file_root(self, span: Span) -> None:
        with self._lock:
            self._roots.append(span)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "on" if self.enabled else "off"
        return f"Tracer({state}, roots={len(self._roots)})"


#: The default tracer: disabled, shared, records nothing.
NULL_TRACER = Tracer(enabled=False)

_active = threading.local()


class _TracerActivation:
    """Thread-local install/restore of the current tracer."""

    __slots__ = ("_tracer", "_previous")

    def __init__(self, tracer: Tracer) -> None:
        self._tracer = tracer
        self._previous: Tracer | None = None

    def __enter__(self) -> Tracer:
        self._previous = getattr(_active, "tracer", None)
        _active.tracer = self._tracer
        return self._tracer

    def __exit__(self, *exc_info: object) -> bool:
        _active.tracer = self._previous
        return False


def current_tracer() -> Tracer:
    """This thread's active tracer (:data:`NULL_TRACER` by default)."""
    tracer = getattr(_active, "tracer", None)
    return tracer if tracer is not None else NULL_TRACER


def trace_span(name: str, **attrs: Any):
    """Open a span on the current tracer: ``with trace_span("x") as s:``."""
    return current_tracer().span(name, **attrs)


def summarize_spans(spans: list[Span]) -> dict[str, dict[str, Any]]:
    """Aggregate a span forest by name: call count and total duration.

    This is the compact per-result form embedded in JSON reports, where
    a full tree would drown the metrics it annotates.  Counters total
    under a ``counters`` key per span name (present only when a span of
    that name carried any) — how retry counts and cache hit/miss totals
    survive into reports without shipping the whole tree.
    """
    summary: dict[str, dict[str, Any]] = {}
    for root in spans:
        for span in root.walk():
            entry = summary.setdefault(
                span.name, {"count": 0, "total_seconds": 0.0}
            )
            entry["count"] += 1
            entry["total_seconds"] += span.duration_seconds
            if span.counters:
                totals = entry.setdefault("counters", {})
                for counter, amount in span.counters.items():
                    if counter.startswith("peak_"):
                        # High-water marks (Span.record_max) aggregate by
                        # maximum: summing peaks across spans would claim
                        # more memory than any span ever held.
                        totals[counter] = max(totals.get(counter, 0), amount)
                    else:
                        totals[counter] = totals.get(counter, 0) + amount
    return summary
