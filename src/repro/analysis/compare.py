"""The statistical comparison engine (result analysis, piece 2 of 4).

Comparing two benchmark runs honestly means separating three questions
the verdict has to answer at once:

1. **Is the difference real?** — a seeded bootstrap confidence interval
   on the relative difference of means (percentile method).  Resampling
   makes no normality assumption, which matters for latency-shaped
   samples; seeding makes the interval reproducible.
2. **Does the evidence agree?** — a two-sided Mann–Whitney U test
   (normal approximation with tie correction).  Rank-based, so a single
   outlier cannot manufacture significance.  With very small samples
   the test *cannot* reach significance (the minimum achievable p-value
   for n=m=2 is 1/3), so it only participates in the verdict when its
   resolution actually covers ``alpha``.
3. **Is the difference big enough to care?** — a relative
   effect-size threshold (``tolerance``).  A statistically certain
   0.1% delta is still "unchanged" for gating purposes.

The verdicts are ``improved`` / ``regressed`` / ``unchanged`` /
``inconclusive``.  Single-sample runs (n=1 on either side) are handled
honestly: no interval and no test are possible, so only a delta well
beyond the tolerance (``SINGLE_SAMPLE_FACTOR``×) earns a directional
verdict; anything else in the gray zone is ``inconclusive`` rather than
a false "unchanged".
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from statistics import fmean
from typing import Any

from repro.analysis.store import RunRecord
from repro.core.errors import AnalysisError
from repro.core.results import MetricStats, RunResult

#: The four verdicts a per-metric comparison can emit.
VERDICTS = ("improved", "regressed", "unchanged", "inconclusive")

#: Metrics where a smaller value is the better one (mirrors the lead-
#: metric handling in :mod:`repro.core.process`).
LOWER_IS_BETTER = frozenset(
    {
        "duration",
        "mean_latency",
        "latency_p95",
        "latency_p99",
        "energy",
        "cost",
    }
)

#: Default relative effect-size threshold: deltas below 5% are noise.
DEFAULT_TOLERANCE = 0.05
#: Default significance level for interval/test agreement.
DEFAULT_ALPHA = 0.05
#: Bootstrap resamples (seeded, so cheap enough to keep high).
DEFAULT_BOOTSTRAP_ITERATIONS = 2000
#: With n=1 on a side, only a delta this many times the tolerance earns
#: a directional verdict; smaller non-trivial deltas are inconclusive.
SINGLE_SAMPLE_FACTOR = 3.0


def metric_direction(metric: str) -> str:
    """``"lower"`` or ``"higher"`` — which way is better for a metric."""
    return "lower" if metric in LOWER_IS_BETTER else "higher"


# ---------------------------------------------------------------------------
# Statistics primitives (stdlib-only; scipy is an optional test dep)
# ---------------------------------------------------------------------------


def bootstrap_mean_delta_ci(
    baseline: list[float],
    candidate: list[float],
    *,
    iterations: int = DEFAULT_BOOTSTRAP_ITERATIONS,
    confidence: float = 0.95,
    seed: int = 0,
) -> tuple[float, float]:
    """Percentile-bootstrap CI on the relative difference of means.

    The statistic is ``(mean(candidate*) - mean(baseline*)) / scale``
    with ``scale = |mean(baseline)|`` fixed from the observed baseline
    (falling back to an absolute difference when the baseline mean is
    zero).  The RNG is seeded from the inputs' shape, so identical
    inputs always produce the identical interval.
    """
    if len(baseline) < 2 or len(candidate) < 2:
        raise AnalysisError("bootstrap needs at least 2 samples per side")
    scale = abs(fmean(baseline)) or 1.0
    rng = random.Random(f"bootstrap|{seed}|{len(baseline)}|{len(candidate)}")
    deltas = []
    for _ in range(iterations):
        resampled_b = rng.choices(baseline, k=len(baseline))
        resampled_c = rng.choices(candidate, k=len(candidate))
        deltas.append((fmean(resampled_c) - fmean(resampled_b)) / scale)
    deltas.sort()
    tail = (1.0 - confidence) / 2.0
    low_index = int(math.floor(tail * (iterations - 1)))
    high_index = int(math.ceil((1.0 - tail) * (iterations - 1)))
    return deltas[low_index], deltas[high_index]


def mann_whitney_u(
    baseline: list[float], candidate: list[float]
) -> tuple[float, float]:
    """Two-sided Mann–Whitney U: ``(U, p)``.

    Normal approximation with tie correction and continuity correction
    — the classic large-sample form, adequate here because the exact
    small-sample regime is detected separately (see
    :func:`min_achievable_p`) and excluded from verdict decisions.
    All-tied inputs (zero rank variance) return ``p = 1.0``.
    """
    n, m = len(baseline), len(candidate)
    if n == 0 or m == 0:
        raise AnalysisError("Mann-Whitney needs samples on both sides")
    pooled = sorted(
        [(value, 0) for value in baseline] + [(value, 1) for value in candidate]
    )
    # Midranks with tie bookkeeping.
    ranks = [0.0] * (n + m)
    tie_sizes: list[int] = []
    index = 0
    while index < len(pooled):
        stop = index
        while stop + 1 < len(pooled) and pooled[stop + 1][0] == pooled[index][0]:
            stop += 1
        midrank = (index + stop) / 2.0 + 1.0
        for position in range(index, stop + 1):
            ranks[position] = midrank
        if stop > index:
            tie_sizes.append(stop - index + 1)
        index = stop + 1
    rank_sum_candidate = sum(
        rank for rank, (_, side) in zip(ranks, pooled) if side == 1
    )
    u_candidate = rank_sum_candidate - m * (m + 1) / 2.0
    mean_u = n * m / 2.0
    total = n + m
    tie_term = sum(t**3 - t for t in tie_sizes) / (total * (total - 1))
    variance = n * m / 12.0 * ((total + 1) - tie_term)
    if variance <= 0:
        return u_candidate, 1.0
    z = (abs(u_candidate - mean_u) - 0.5) / math.sqrt(variance)
    z = max(z, 0.0)
    p = 2.0 * (1.0 - _normal_cdf(z))
    return u_candidate, min(max(p, 0.0), 1.0)


def _normal_cdf(z: float) -> float:
    return 0.5 * (1.0 + math.erf(z / math.sqrt(2.0)))


def min_achievable_p(n: int, m: int) -> float:
    """The smallest two-sided p an exact U test could produce.

    Complete separation of the two samples has probability
    ``n! m! / (n+m)!`` per direction under the null; below ~4 samples a
    side the test simply cannot reach 0.05, so it must not veto a
    verdict there.
    """
    return 2.0 * (
        math.factorial(n) * math.factorial(m) / math.factorial(n + m)
    )


# ---------------------------------------------------------------------------
# Typed comparison results
# ---------------------------------------------------------------------------


@dataclass
class MetricComparison:
    """The comparison of one metric between baseline and candidate."""

    metric: str
    direction: str  # "lower" or "higher" is better
    verdict: str  # improved | regressed | unchanged | inconclusive
    baseline_mean: float
    candidate_mean: float
    baseline_n: int
    candidate_n: int
    #: ``(candidate_mean - baseline_mean) / |baseline_mean|``.
    relative_delta: float
    #: Bootstrap CI on the relative delta (None when n < 2 on a side).
    ci_low: float | None = None
    ci_high: float | None = None
    #: Two-sided Mann–Whitney p-value (None when n < 2 on a side).
    p_value: float | None = None
    #: The effect-size threshold the verdict used.
    tolerance: float = DEFAULT_TOLERANCE
    #: Percentile snapshots (p50/p95/p99) of both sides.
    baseline_percentiles: dict[str, float] = field(default_factory=dict)
    candidate_percentiles: dict[str, float] = field(default_factory=dict)

    @property
    def significant(self) -> bool:
        """Whether the interval (and test, where usable) excludes zero."""
        if self.ci_low is None or self.ci_high is None:
            return False
        return not (self.ci_low <= 0.0 <= self.ci_high)

    def as_dict(self) -> dict[str, Any]:
        return {
            "metric": self.metric,
            "direction": self.direction,
            "verdict": self.verdict,
            "baseline_mean": self.baseline_mean,
            "candidate_mean": self.candidate_mean,
            "baseline_n": self.baseline_n,
            "candidate_n": self.candidate_n,
            "relative_delta": self.relative_delta,
            "ci_low": self.ci_low,
            "ci_high": self.ci_high,
            "p_value": self.p_value,
            "tolerance": self.tolerance,
            "baseline_percentiles": self.baseline_percentiles,
            "candidate_percentiles": self.candidate_percentiles,
        }


@dataclass
class Comparison:
    """A full per-metric comparison of two runs (or series)."""

    baseline: str
    candidate: str
    metrics: dict[str, MetricComparison] = field(default_factory=dict)

    @property
    def overall(self) -> str:
        """Worst-first rollup: regressed > inconclusive > improved >
        unchanged — a single noisy metric keeps the overall honest."""
        verdicts = {c.verdict for c in self.metrics.values()}
        for verdict in ("regressed", "inconclusive", "improved"):
            if verdict in verdicts:
                return verdict
        return "unchanged"

    def with_verdict(self, verdict: str) -> list[MetricComparison]:
        return [c for c in self.metrics.values() if c.verdict == verdict]

    def as_dict(self) -> dict[str, Any]:
        return {
            "baseline": self.baseline,
            "candidate": self.candidate,
            "overall": self.overall,
            "metrics": {
                name: comparison.as_dict()
                for name, comparison in self.metrics.items()
            },
        }


# ---------------------------------------------------------------------------
# The comparison entry points
# ---------------------------------------------------------------------------


def compare_samples(
    metric: str,
    baseline: list[float],
    candidate: list[float],
    *,
    direction: str | None = None,
    tolerance: float = DEFAULT_TOLERANCE,
    alpha: float = DEFAULT_ALPHA,
    iterations: int = DEFAULT_BOOTSTRAP_ITERATIONS,
    seed: int = 0,
) -> MetricComparison:
    """Compare one metric's samples and emit a verdict.

    Decision rule, in order:

    1. effect below ``tolerance`` → ``unchanged`` (however certain);
    2. n ≥ 2 both sides: directional verdict iff the bootstrap CI
       excludes zero *and* the U test agrees wherever its resolution
       covers ``alpha``; otherwise ``inconclusive``;
    3. n = 1 on a side: directional only beyond
       ``SINGLE_SAMPLE_FACTOR × tolerance``, else ``inconclusive``.
    """
    if not baseline or not candidate:
        raise AnalysisError(
            f"metric {metric!r}: cannot compare empty sample lists"
        )
    if tolerance < 0:
        raise AnalysisError(f"tolerance must be non-negative, got {tolerance}")
    direction = direction or metric_direction(metric)
    if direction not in ("lower", "higher"):
        raise AnalysisError(
            f"direction must be 'lower' or 'higher', got {direction!r}"
        )
    mean_b, mean_c = fmean(baseline), fmean(candidate)
    scale = abs(mean_b) or 1.0
    relative_delta = (mean_c - mean_b) / scale

    ci_low = ci_high = p_value = None
    if len(baseline) >= 2 and len(candidate) >= 2:
        ci_low, ci_high = bootstrap_mean_delta_ci(
            baseline, candidate, iterations=iterations, seed=seed
        )
        _, p_value = mann_whitney_u(baseline, candidate)
        significant = not (ci_low <= 0.0 <= ci_high)
        if min_achievable_p(len(baseline), len(candidate)) <= alpha:
            significant = significant and p_value <= alpha
        if abs(relative_delta) <= tolerance:
            verdict = "unchanged"
        elif significant:
            verdict = _directional_verdict(relative_delta, direction)
        else:
            verdict = "inconclusive"
    else:
        if abs(relative_delta) <= tolerance:
            verdict = "unchanged"
        elif abs(relative_delta) >= SINGLE_SAMPLE_FACTOR * tolerance:
            verdict = _directional_verdict(relative_delta, direction)
        else:
            verdict = "inconclusive"

    return MetricComparison(
        metric=metric,
        direction=direction,
        verdict=verdict,
        baseline_mean=mean_b,
        candidate_mean=mean_c,
        baseline_n=len(baseline),
        candidate_n=len(candidate),
        relative_delta=relative_delta,
        ci_low=ci_low,
        ci_high=ci_high,
        p_value=p_value,
        tolerance=tolerance,
        baseline_percentiles=_percentiles(metric, baseline),
        candidate_percentiles=_percentiles(metric, candidate),
    )


def _directional_verdict(relative_delta: float, direction: str) -> str:
    went_up = relative_delta > 0
    if direction == "lower":
        return "regressed" if went_up else "improved"
    return "improved" if went_up else "regressed"


def _percentiles(metric: str, samples: list[float]) -> dict[str, float]:
    stats = MetricStats(metric, list(samples))
    return {"p50": stats.p50, "p95": stats.p95, "p99": stats.p99}


def _metric_samples(source: Any) -> dict[str, list[float]]:
    """Metric → samples from a RunRecord, RunResult, or plain dict."""
    if isinstance(source, RunRecord):
        return source.metrics
    if isinstance(source, RunResult):
        return {
            name: list(stats.samples) for name, stats in source.metrics.items()
        }
    if isinstance(source, dict):
        return {name: list(samples) for name, samples in source.items()}
    raise AnalysisError(
        f"cannot extract metric samples from {type(source).__name__}"
    )


def _label(source: Any, fallback: str) -> str:
    if isinstance(source, RunRecord):
        return source.record_id
    if isinstance(source, RunResult):
        return source.test_name
    return fallback


def compare_records(
    baseline: Any,
    candidate: Any,
    *,
    metrics: list[str] | None = None,
    tolerance: float = DEFAULT_TOLERANCE,
    tolerances: dict[str, float] | None = None,
    directions: dict[str, str] | None = None,
    alpha: float = DEFAULT_ALPHA,
    iterations: int = DEFAULT_BOOTSTRAP_ITERATIONS,
    seed: int = 0,
) -> Comparison:
    """Compare two runs metric by metric.

    Accepts :class:`~repro.analysis.store.RunRecord`,
    :class:`~repro.core.results.RunResult`, or plain
    ``{metric: samples}`` dicts on either side.  ``metrics`` restricts
    the comparison; by default every metric both sides carry is
    compared (baseline order).
    """
    baseline_samples = _metric_samples(baseline)
    candidate_samples = _metric_samples(candidate)
    if metrics is None:
        metrics = [
            name for name in baseline_samples if name in candidate_samples
        ]
    if not metrics:
        raise AnalysisError("the two runs share no comparable metrics")
    comparison = Comparison(
        baseline=_label(baseline, "baseline"),
        candidate=_label(candidate, "candidate"),
    )
    for name in metrics:
        if name not in baseline_samples or name not in candidate_samples:
            raise AnalysisError(
                f"metric {name!r} is not present on both sides; shared: "
                f"{sorted(set(baseline_samples) & set(candidate_samples))}"
            )
        comparison.metrics[name] = compare_samples(
            name,
            baseline_samples[name],
            candidate_samples[name],
            direction=(directions or {}).get(name),
            tolerance=(tolerances or {}).get(name, tolerance),
            alpha=alpha,
            iterations=iterations,
            seed=seed,
        )
    return comparison


def compare_series(
    baseline_records: list[RunRecord],
    candidate_records: list[RunRecord],
    **kwargs: Any,
) -> Comparison:
    """Compare two series by pooling each side's samples per metric.

    Pooling repeats across runs of the same fingerprint raises the
    sample count (and with it the statistical power) without changing
    what is being measured.
    """
    if not baseline_records or not candidate_records:
        raise AnalysisError("cannot compare empty record series")

    def pooled(records: list[RunRecord]) -> dict[str, list[float]]:
        out: dict[str, list[float]] = {}
        for record in records:
            for name, samples in record.metrics.items():
                out.setdefault(name, []).extend(samples)
        return out

    comparison = compare_records(
        pooled(baseline_records), pooled(candidate_records), **kwargs
    )
    comparison.baseline = (
        f"{baseline_records[0].record_id}..{baseline_records[-1].record_id}"
        if len(baseline_records) > 1
        else baseline_records[0].record_id
    )
    comparison.candidate = (
        f"{candidate_records[0].record_id}..{candidate_records[-1].record_id}"
        if len(candidate_records) > 1
        else candidate_records[0].record_id
    )
    return comparison
