"""The regression gate (result analysis, piece 4 of 4).

``check_regressions`` evaluates a candidate run against a named
baseline and returns a machine-readable :class:`GateReport` whose
``exit_code`` carries CI semantics: 0 when no metric regressed, 1
otherwise.  Per-metric direction (lower-is-better vs higher) and
tolerance come from the comparison engine; the gate only decides what
to *do* with the verdicts.

The default candidate is the newest record in the baseline's own
series — "did the latest run of this exact configuration get slower
than the blessed one?" — which is exactly the question a CI job asks
after re-running a pinned benchmark on a new commit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.analysis.baselines import BaselineManager
from repro.analysis.compare import (
    DEFAULT_ALPHA,
    DEFAULT_TOLERANCE,
    Comparison,
    compare_records,
)
from repro.analysis.store import RunRecord, RunStore
from repro.core.errors import AnalysisError


@dataclass
class GateReport:
    """The machine-readable outcome of one gate evaluation."""

    baseline_name: str
    baseline_id: str
    candidate_id: str
    passed: bool
    comparison: Comparison | None = None
    reasons: list[str] = field(default_factory=list)

    @property
    def exit_code(self) -> int:
        """CI semantics: 0 = gate passed, 1 = regression detected."""
        return 0 if self.passed else 1

    def as_dict(self) -> dict[str, Any]:
        return {
            "baseline_name": self.baseline_name,
            "baseline_id": self.baseline_id,
            "candidate_id": self.candidate_id,
            "passed": self.passed,
            "exit_code": self.exit_code,
            "reasons": list(self.reasons),
            "comparison": (
                self.comparison.as_dict() if self.comparison else None
            ),
        }


def check_regressions(
    store: RunStore,
    baseline: str,
    candidate: str | RunRecord | None = None,
    *,
    metrics: list[str] | None = None,
    tolerance: float = DEFAULT_TOLERANCE,
    tolerances: dict[str, float] | None = None,
    directions: dict[str, str] | None = None,
    alpha: float = DEFAULT_ALPHA,
    fail_on_inconclusive: bool = False,
) -> GateReport:
    """Evaluate a candidate run against a named baseline.

    ``candidate`` may be a store reference (id / prefix / ``latest``),
    an already-loaded record, or ``None`` — meaning the newest record
    of the baseline's series that is not the baseline itself.

    The gate fails when any compared metric's verdict is ``regressed``,
    when the candidate run itself failed, or (with
    ``fail_on_inconclusive``) when the evidence cannot rule a
    regression out.
    """
    manager = BaselineManager(store)
    baseline_record = manager.resolve(baseline)

    if candidate is None:
        later = [
            record
            for record in store.series(baseline_record.series)
            if record.record_id != baseline_record.record_id
        ]
        if not later:
            raise AnalysisError(
                f"no candidate runs in series {baseline_record.series!r} "
                f"beyond baseline {baseline!r}; record a new run first"
            )
        candidate_record = later[-1]
    elif isinstance(candidate, RunRecord):
        candidate_record = candidate
    else:
        candidate_record = store.get(candidate)

    report = GateReport(
        baseline_name=baseline,
        baseline_id=baseline_record.record_id,
        candidate_id=candidate_record.record_id,
        passed=True,
    )

    if not candidate_record.ok:
        report.passed = False
        report.reasons.append(
            f"candidate {candidate_record.record_id} has status "
            f"{candidate_record.status!r}"
        )
        return report

    comparison = compare_records(
        baseline_record,
        candidate_record,
        metrics=metrics,
        tolerance=tolerance,
        tolerances=tolerances,
        directions=directions,
        alpha=alpha,
    )
    report.comparison = comparison
    for name, metric in comparison.metrics.items():
        if metric.verdict == "regressed":
            report.passed = False
            report.reasons.append(
                f"{name} regressed {metric.relative_delta:+.1%} "
                f"(CI [{_fmt(metric.ci_low)}, {_fmt(metric.ci_high)}], "
                f"p={_fmt(metric.p_value)})"
            )
        elif metric.verdict == "inconclusive" and fail_on_inconclusive:
            report.passed = False
            report.reasons.append(
                f"{name} inconclusive at {metric.relative_delta:+.1%} "
                f"with n={metric.candidate_n} (fail_on_inconclusive)"
            )
    return report


def _fmt(value: float | None) -> str:
    return "n/a" if value is None else f"{value:.3g}"
