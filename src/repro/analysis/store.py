"""The persistent run store (result analysis, piece 1 of 4).

Every recorded run becomes one append-only JSONL line under a
configurable directory (``REPRO_STORE_DIR``, default ``.repro-runs``).
A record captures everything a later comparison needs:

* the **spec fingerprint** — prescription, workload, engine, volume,
  seed, chunk size, executor, repeats, partitions, params — hashed into
  a *series* key, so runs of identical configurations group into
  comparable series across time;
* the **environment fingerprint** — python version, platform, CPU
  count, git SHA — the "what changed" half of a perf investigation;
* the full :class:`~repro.core.results.RunResult` serialization
  (per-metric **samples**, not just means, so the comparison engine can
  bootstrap) or the captured :class:`~repro.core.results.TaskFailure`;
* the per-task **trace summary** when the run was traced.

Records never mutate; baselines (see
:mod:`repro.analysis.baselines`) reference them by id.
"""

from __future__ import annotations

import hashlib
import json
import os
import platform
import subprocess
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.core.errors import AnalysisError
from repro.core.results import RunResult, TaskFailure

#: Environment variable naming the default store directory.
STORE_DIR_ENV = "REPRO_STORE_DIR"
#: Default store directory when neither an argument nor the environment
#: names one.
DEFAULT_STORE_DIR = ".repro-runs"

#: The ``RunResult.extra`` / ``TaskFailure.extra`` key a freshly
#: recorded outcome's id is echoed under.
RECORD_ID_EXTRA_KEY = "record_id"

#: Serializes record-id assignment across every store in this process.
_APPEND_LOCK = threading.Lock()


def fingerprint_hash(fingerprint: dict[str, Any]) -> str:
    """Content hash of a fingerprint dict — the series key.

    Canonical JSON (sorted keys, stringified fallbacks) through SHA-256,
    truncated to 12 hex chars: collision-safe at any plausible number of
    distinct configurations and short enough to type.
    """
    canonical = json.dumps(fingerprint, sort_keys=True, default=str)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:12]


def spec_fingerprint(
    prescription: str,
    engine: str,
    *,
    workload: str | None = None,
    volume: int | None = None,
    seed: Any = None,
    repeats: int = 1,
    params: dict[str, Any] | None = None,
    chunk_size: int | None = None,
    executor: str = "serial",
    data_partitions: int | None = None,
    layout: str = "row",
    tuning: Any = None,
) -> dict[str, Any]:
    """The canonical spec fingerprint two comparable runs must share.

    Everything that changes *what work runs* belongs here; everything
    that changes *how fast the code is* (git SHA, python version,
    hardware) belongs in :func:`environment_fingerprint` — so a code
    change keeps the series intact and shows up as movement within it.

    ``layout`` joins the payload only when non-default ("columnar"):
    every historical record was implicitly row-layout, and omitting the
    default keeps those series byte-identical and comparable.  The same
    contract covers ``tuning``: a normal profile contributes nothing
    (every historical record was implicitly normal), while a tuned
    profile's payload (see
    :meth:`repro.tuning.profiles.TuningProfile.fingerprint`) forks the
    series so tuned runs never pollute baseline history.
    """
    params = dict(params or {})
    fingerprint = {
        "prescription": prescription,
        "workload": workload or prescription,
        "engine": engine,
        "volume": volume,
        "seed": seed if seed is not None else params.get("seed", 0),
        "repeats": repeats,
        "params": params,
        "chunk_size": chunk_size,
        "executor": executor,
        "data_partitions": data_partitions or 1,
    }
    if layout != "row":
        fingerprint["layout"] = layout
    if tuning:
        fingerprint["tuning"] = tuning
    return fingerprint


_ENV_CACHE: dict[str, Any] | None = None


def _git_sha() -> str | None:
    try:
        completed = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    if completed.returncode != 0:
        return None
    return completed.stdout.strip() or None


def environment_fingerprint(refresh: bool = False) -> dict[str, Any]:
    """Python/platform/CPU/git identity of the recording process.

    Cached per process (the git subprocess is the expensive part);
    ``refresh=True`` recomputes.
    """
    global _ENV_CACHE
    if _ENV_CACHE is None or refresh:
        _ENV_CACHE = {
            "python": platform.python_version(),
            "platform": platform.platform(),
            "cpus": os.cpu_count(),
            "git_sha": _git_sha(),
        }
    return dict(_ENV_CACHE)


@dataclass
class RunRecord:
    """One immutable line of the run store."""

    record_id: str
    series: str
    created_at: str
    fingerprint: dict[str, Any]
    environment: dict[str, Any]
    result: dict[str, Any]
    trace_summary: dict[str, Any] | None = None

    # -- convenience views ------------------------------------------------

    @property
    def test_name(self) -> str:
        return self.result.get("test", "")

    @property
    def engine(self) -> str:
        return self.result.get("engine", "")

    @property
    def workload(self) -> str:
        return self.result.get("workload", "")

    @property
    def status(self) -> str:
        return self.result.get("status", "ok")

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    @property
    def metrics(self) -> dict[str, list[float]]:
        """Metric name → raw samples (empty for failure records)."""
        out: dict[str, list[float]] = {}
        for name, stats in self.result.get("metrics", {}).items():
            samples = stats.get("samples")
            if samples:
                out[name] = [float(s) for s in samples]
        return out

    def samples(self, metric: str) -> list[float]:
        try:
            return self.metrics[metric]
        except KeyError:
            raise AnalysisError(
                f"record {self.record_id!r} has no samples of metric "
                f"{metric!r}; available: {sorted(self.metrics)}"
            ) from None

    def mean(self, metric: str) -> float:
        samples = self.samples(metric)
        return sum(samples) / len(samples)

    # -- serialization ----------------------------------------------------

    def as_dict(self) -> dict[str, Any]:
        payload: dict[str, Any] = {
            "record_id": self.record_id,
            "series": self.series,
            "created_at": self.created_at,
            "fingerprint": self.fingerprint,
            "environment": self.environment,
            "result": self.result,
        }
        if self.trace_summary:
            payload["trace_summary"] = self.trace_summary
        return payload

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "RunRecord":
        return cls(
            record_id=payload["record_id"],
            series=payload["series"],
            created_at=payload.get("created_at", ""),
            fingerprint=payload.get("fingerprint", {}),
            environment=payload.get("environment", {}),
            result=payload.get("result", {}),
            trace_summary=payload.get("trace_summary"),
        )


@dataclass
class RunStore:
    """Append-only JSONL store of recorded runs.

    The directory is created lazily on first write, so constructing a
    store (e.g. to *read* history) never touches the filesystem.
    """

    root: Path = field(default_factory=lambda: Path(resolve_store_dir()))

    FILENAME = "runs.jsonl"

    def __post_init__(self) -> None:
        self.root = Path(self.root)

    @property
    def path(self) -> Path:
        return self.root / self.FILENAME

    # -- writing ----------------------------------------------------------

    def record_outcome(
        self,
        outcome: RunResult | TaskFailure,
        fingerprint: dict[str, Any],
        environment: dict[str, Any] | None = None,
        trace_summary: dict[str, Any] | None = None,
    ) -> RunRecord:
        """Append one outcome as a new immutable record.

        The record id (``r0001``, ``r0002``, …) is echoed back into the
        outcome's ``extra`` so reports can reference it.
        """
        from repro.execution.runner import TRACE_SUMMARY_KEY

        if trace_summary is None:
            trace_summary = outcome.extra.get(TRACE_SUMMARY_KEY)
        # Record ids derive from the current file length, so the
        # read-then-append must be atomic within the process — the
        # service's scheduler threads record concurrently (the lock is
        # process-wide: independent RunStore instances share files).
        with _APPEND_LOCK:
            record = RunRecord(
                record_id=f"r{len(self.records()) + 1:04d}",
                series=fingerprint_hash(fingerprint),
                created_at=time.strftime(
                    "%Y-%m-%dT%H:%M:%SZ", time.gmtime()
                ),
                fingerprint=dict(fingerprint),
                environment=environment or environment_fingerprint(),
                result=outcome.as_dict(),
                trace_summary=trace_summary,
            )
            self.root.mkdir(parents=True, exist_ok=True)
            with self.path.open("a", encoding="utf-8") as handle:
                handle.write(
                    json.dumps(record.as_dict(), default=str) + "\n"
                )
        outcome.extra[RECORD_ID_EXTRA_KEY] = record.record_id
        return record

    # -- reading ----------------------------------------------------------

    def records(self) -> list[RunRecord]:
        """Every record, oldest first (file order is append order)."""
        if not self.path.exists():
            return []
        records: list[RunRecord] = []
        for line_no, line in enumerate(
            self.path.read_text(encoding="utf-8").splitlines(), start=1
        ):
            line = line.strip()
            if not line:
                continue
            try:
                records.append(RunRecord.from_dict(json.loads(line)))
            except (json.JSONDecodeError, KeyError) as error:
                raise AnalysisError(
                    f"corrupt run store {self.path}: line {line_no}: {error}"
                ) from None
        return records

    def series(self, key: str) -> list[RunRecord]:
        """All records of one series, oldest first."""
        return [r for r in self.records() if r.series == key]

    def latest(self, series: str | None = None) -> RunRecord:
        """Newest record (optionally within one series)."""
        records = self.series(series) if series else self.records()
        if not records:
            raise AnalysisError(
                f"run store {self.path} has no records"
                + (f" in series {series!r}" if series else "")
            )
        return records[-1]

    def get(self, ref: str) -> RunRecord:
        """Resolve a record reference.

        Accepts ``"latest"``, an exact record id, a unique record-id
        prefix, or a series key / unique series prefix (resolving to the
        newest record of that series).
        """
        records = self.records()
        if not records:
            raise AnalysisError(f"run store {self.path} has no records")
        if ref == "latest":
            return records[-1]
        for record in records:
            if record.record_id == ref:
                return record
        id_matches = [r for r in records if r.record_id.startswith(ref)]
        if len({r.record_id for r in id_matches}) == 1:
            return id_matches[0]
        series_matches = [r for r in records if r.series.startswith(ref)]
        if series_matches and len({r.series for r in series_matches}) == 1:
            return series_matches[-1]
        if id_matches or series_matches:
            raise AnalysisError(f"ambiguous record reference {ref!r}")
        raise AnalysisError(
            f"no record matching {ref!r} in {self.path}; "
            f"ids: {[r.record_id for r in records[-5:]]} (last 5)"
        )


def resolve_store_dir(explicit: str | os.PathLike | None = None) -> str:
    """The store directory: explicit > ``REPRO_STORE_DIR`` > default."""
    if explicit:
        return str(explicit)
    return os.environ.get(STORE_DIR_ENV, "").strip() or DEFAULT_STORE_DIR
