"""Result analysis (the Execution Layer's closing component, Figure 2).

The paper names *result analysis* as a first-class piece of the
execution layer, and Section 5 asks for evaluation metrics that let
users **compare** systems.  This package closes the loop from
run → record → comparison → verdict:

* :mod:`repro.analysis.store` — a persistent, append-only run store
  (JSONL records keyed by a spec-fingerprint content hash, so identical
  configurations group into comparable series);
* :mod:`repro.analysis.compare` — statistical comparison of two runs or
  series: bootstrap confidence intervals on the mean, Mann–Whitney U,
  and relative-effect-size thresholds, emitting typed verdicts;
* :mod:`repro.analysis.baselines` — promote recorded runs to named
  baselines;
* :mod:`repro.analysis.gate` — evaluate new runs against a baseline
  with per-metric direction and tolerance: the CI regression gate.
"""

from repro.analysis.baselines import Baseline, BaselineManager
from repro.analysis.compare import (
    Comparison,
    MetricComparison,
    VERDICTS,
    compare_records,
    compare_samples,
    compare_series,
    metric_direction,
)
from repro.analysis.gate import GateReport, check_regressions
from repro.analysis.store import (
    RunRecord,
    RunStore,
    environment_fingerprint,
    fingerprint_hash,
    resolve_store_dir,
    spec_fingerprint,
)

__all__ = [
    "Baseline",
    "BaselineManager",
    "Comparison",
    "GateReport",
    "MetricComparison",
    "RunRecord",
    "RunStore",
    "VERDICTS",
    "check_regressions",
    "compare_records",
    "compare_samples",
    "compare_series",
    "environment_fingerprint",
    "fingerprint_hash",
    "metric_direction",
    "resolve_store_dir",
    "spec_fingerprint",
]
