"""Baseline management (result analysis, piece 3 of 4).

A *baseline* is a recorded run promoted under a name ("main",
"v1.2", "pre-refactor") that later runs are judged against.  Baselines
live in a small JSON map next to the run store's JSONL file; promoting
never copies the record — the name is a pointer, the record stays
immutable in the store.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass
from typing import Any

from repro.analysis.store import RunRecord, RunStore
from repro.core.errors import AnalysisError


@dataclass
class Baseline:
    """A named pointer to one recorded run."""

    name: str
    record_id: str
    series: str
    promoted_at: str

    def as_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "record_id": self.record_id,
            "series": self.series,
            "promoted_at": self.promoted_at,
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "Baseline":
        return cls(
            name=payload["name"],
            record_id=payload["record_id"],
            series=payload.get("series", ""),
            promoted_at=payload.get("promoted_at", ""),
        )


class BaselineManager:
    """Promote, list, and resolve named baselines for one run store."""

    FILENAME = "baselines.json"

    def __init__(self, store: RunStore) -> None:
        self.store = store

    @property
    def path(self):
        return self.store.root / self.FILENAME

    def _load(self) -> dict[str, Baseline]:
        if not self.path.exists():
            return {}
        try:
            payload = json.loads(self.path.read_text(encoding="utf-8"))
        except json.JSONDecodeError as error:
            raise AnalysisError(
                f"corrupt baselines file {self.path}: {error}"
            ) from None
        return {
            name: Baseline.from_dict(entry) for name, entry in payload.items()
        }

    def _save(self, baselines: dict[str, Baseline]) -> None:
        self.store.root.mkdir(parents=True, exist_ok=True)
        self.path.write_text(
            json.dumps(
                {name: b.as_dict() for name, b in sorted(baselines.items())},
                indent=2,
            )
            + "\n",
            encoding="utf-8",
        )

    # ------------------------------------------------------------------

    def promote(self, ref: str, name: str) -> Baseline:
        """Promote a recorded run (by any store reference) to a name.

        Re-promoting an existing name repoints it — the previous record
        stays in the store, only the pointer moves.  Failed runs cannot
        be promoted: gating against a broken reference would make every
        candidate look healthy.
        """
        if not name or name == "latest":
            raise AnalysisError(f"invalid baseline name {name!r}")
        record = self.store.get(ref)
        if not record.ok:
            raise AnalysisError(
                f"record {record.record_id!r} has status "
                f"{record.status!r}; only ok runs can become baselines"
            )
        baseline = Baseline(
            name=name,
            record_id=record.record_id,
            series=record.series,
            promoted_at=time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        )
        baselines = self._load()
        baselines[name] = baseline
        self._save(baselines)
        return baseline

    def all(self) -> dict[str, Baseline]:
        return self._load()

    def get(self, name: str) -> Baseline:
        baselines = self._load()
        if name not in baselines:
            raise AnalysisError(
                f"unknown baseline {name!r}; "
                f"available: {sorted(baselines) or '(none)'}"
            )
        return baselines[name]

    def resolve(self, name: str) -> RunRecord:
        """The run record a baseline name points at."""
        return self.store.get(self.get(name).record_id)

    def remove(self, name: str) -> None:
        baselines = self._load()
        if name not in baselines:
            raise AnalysisError(f"unknown baseline {name!r}")
        del baselines[name]
        self._save(baselines)
