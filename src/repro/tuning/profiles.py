"""Typed tuning profiles: documented knob surfaces per engine.

A :class:`TuningProfile` is a named, serializable set of knob values for
one engine.  The contract that keeps historical data comparable:

* ``normal`` is the **bare engine** — no knobs at all.  Every run the
  store recorded before tuning profiles existed was implicitly normal,
  so a normal profile contributes nothing to the spec fingerprint and
  those series stay byte-identical.
* any non-normal profile forks the series: its name and knob values
  join the fingerprint (see
  :func:`repro.analysis.store.spec_fingerprint`), exactly like the
  ``layout`` field before it.

Knob names are validated against each engine's *actual* constructor or
config surface — a profile is proven buildable
(:meth:`TuningProfile.validate` instantiates the configured engine)
before any benchmark spends time on it.  The per-engine surfaces:

======== ==============================================================
engine   knobs
======== ==============================================================
dbms     :class:`~repro.engines.dbms.planner.PlannerConfig` fields:
         ``join_algorithm``, ``use_indexes``, ``predicate_pushdown``,
         ``nested_loop_threshold``, ``layout``, ``batch_size``
mapreduce cluster split/slot shape (``num_nodes``, ``slots_per_node``,
         ``seconds_per_record``, ``network_bytes_per_second``,
         ``speculative_execution``) plus combiner batching
         (``combine_batch_records``)
nosql    ``num_partitions``, ``replication``
streaming ``service_seconds_per_event``
dfs      ``num_nodes``, ``block_size``, ``replication``,
         ``disk_bytes_per_second``, ``network_bytes_per_second``,
         ``seek_seconds``
======== ==============================================================

Every engine additionally accepts the harness-level
:data:`DATASET_CACHE_KNOB` (``dataset_cache_bytes``) — a resident-byte
budget applied to the test generator's
:class:`~repro.datagen.cache.DatasetCache`, not the engine constructor.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.core.errors import TuningError

#: The harness-level knob: a resident-byte budget for the dataset cache
#: (applied to the :class:`~repro.datagen.cache.DatasetCache` the test
#: generator serves data from, never to the engine constructor).
DATASET_CACHE_KNOB = "dataset_cache_bytes"

#: Engine → the engine-level knob names a profile may set.  Each name
#: maps one-to-one onto the engine's constructor/config surface, which
#: :meth:`TuningProfile.validate` exercises for real.
ENGINE_KNOBS: dict[str, tuple[str, ...]] = {
    "dbms": (
        "join_algorithm",
        "use_indexes",
        "predicate_pushdown",
        "nested_loop_threshold",
        "layout",
        "batch_size",
    ),
    "mapreduce": (
        "num_nodes",
        "slots_per_node",
        "seconds_per_record",
        "network_bytes_per_second",
        "speculative_execution",
        "combine_batch_records",
    ),
    "nosql": ("num_partitions", "replication"),
    "streaming": ("service_seconds_per_event",),
    "dfs": (
        "num_nodes",
        "block_size",
        "replication",
        "disk_bytes_per_second",
        "network_bytes_per_second",
        "seek_seconds",
    ),
}

#: The documented optimized knob set per engine.  Chosen to mirror the
#: paper's Table 2 techniques on each substrate: vectorized columnar
#: execution + hash joins on the DBMS, combiner batching + more task
#: slots on MapReduce, finer partitioning on the NoSQL store, larger
#: blocks (fewer seeks) on the DFS.  Streaming has no honest tuning
#: knob beyond its service rate, which *is* the benchmark variable —
#: its optimized profile equals normal and the ablation driver skips
#: the redundant cell.
OPTIMIZED_KNOBS: dict[str, dict[str, Any]] = {
    "dbms": {"layout": "columnar", "join_algorithm": "hash", "batch_size": 2048},
    "mapreduce": {"combine_batch_records": 1024, "slots_per_node": 4},
    "nosql": {"num_partitions": 16},
    "streaming": {},
    "dfs": {"block_size": 65536},
}

#: The two named built-in profiles every engine has.
PROFILE_NAMES = ("normal", "optimized")

#: One-off profile names are spelled ``normal+<knob>``: normal with a
#: single knob lifted from the optimized set.
ONE_OFF_PREFIX = "normal+"


@dataclass
class TuningProfile:
    """A named, serializable knob assignment for one engine."""

    engine: str
    name: str
    knobs: dict[str, Any] = field(default_factory=dict)
    description: str = ""

    def __post_init__(self) -> None:
        self.knobs = dict(self.knobs)

    @property
    def is_normal(self) -> bool:
        """No knobs set — the bare engine, the historical baseline."""
        return not self.knobs

    def engine_options(self) -> dict[str, Any]:
        """The knobs that feed the engine constructor/config (harness
        knobs like the dataset-cache budget excluded)."""
        return {
            key: value
            for key, value in self.knobs.items()
            if key != DATASET_CACHE_KNOB
        }

    @property
    def dataset_cache_bytes(self) -> int | None:
        """The harness-level dataset-cache byte budget, if set."""
        return self.knobs.get(DATASET_CACHE_KNOB)

    def fingerprint(self) -> dict[str, Any] | None:
        """The payload that forks a run-store series, or None.

        Normal profiles return None so pre-tuning series stay
        byte-identical; anything else contributes its name and the
        sorted knob assignment.
        """
        if self.is_normal:
            return None
        return {
            "profile": self.name,
            "knobs": {key: self.knobs[key] for key in sorted(self.knobs)},
        }

    def validate(self) -> "TuningProfile":
        """Prove the profile buildable; raise :class:`TuningError` if not.

        Checks knob names against :data:`ENGINE_KNOBS`, then actually
        instantiates the configured engine — so a type error or
        constraint violation (e.g. ``replication > num_partitions``)
        surfaces at planning time, not mid-benchmark.
        """
        allowed = ENGINE_KNOBS.get(self.engine)
        if allowed is None:
            if self.is_normal:
                return self
            raise TuningError(
                f"engine {self.engine!r} has no tuning surface; "
                f"tunable engines: {sorted(ENGINE_KNOBS)}"
            )
        unknown = sorted(
            key
            for key in self.knobs
            if key not in allowed and key != DATASET_CACHE_KNOB
        )
        if unknown:
            raise TuningError(
                f"unknown knob(s) {unknown} for engine {self.engine!r}; "
                f"allowed: {sorted(allowed)} + ['{DATASET_CACHE_KNOB}']"
            )
        budget = self.knobs.get(DATASET_CACHE_KNOB)
        if budget is not None and (not isinstance(budget, int) or budget <= 0):
            raise TuningError(
                f"{DATASET_CACHE_KNOB} must be a positive integer, "
                f"got {budget!r}"
            )
        options = self.engine_options()
        if options:
            from repro.execution.config import SystemConfiguration

            try:
                SystemConfiguration(self.engine, dict(options)).build()
            except TuningError:
                raise
            except Exception as error:
                raise TuningError(
                    f"profile {self.name!r} does not build on engine "
                    f"{self.engine!r}: {error}"
                ) from error
        return self

    def configuration(
        self, layout: str = "row", fault: Any = None
    ) -> Any:
        """The :class:`~repro.execution.config.SystemConfiguration`
        realizing this profile (merged over the layout's options), or
        None when the engine should run bare.

        None is load-bearing: a bare engine is exactly what historical
        normal-profile runs used, so the normal/row/no-fault case must
        not wrap the engine in an (empty) configuration.
        """
        from repro.execution.config import SystemConfiguration, layout_options

        options = {
            **layout_options(layout).get(self.engine, {}),
            **self.engine_options(),
        }
        if not options and fault is None:
            return None
        return SystemConfiguration(
            self.engine,
            options=options,
            label=f"{self.engine} ({self.name} profile)",
            fault=fault,
        )

    # -- serialization ----------------------------------------------------

    def as_dict(self) -> dict[str, Any]:
        return {
            "engine": self.engine,
            "name": self.name,
            "knobs": dict(self.knobs),
            "description": self.description,
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "TuningProfile":
        return cls(
            engine=payload["engine"],
            name=payload["name"],
            knobs=dict(payload.get("knobs", {})),
            description=payload.get("description", ""),
        )


# ---------------------------------------------------------------------------
# Built-in profiles
# ---------------------------------------------------------------------------


def normal(engine: str) -> TuningProfile:
    """Every engine's baseline: the bare registry engine, no knobs."""
    return TuningProfile(
        engine,
        "normal",
        {},
        description="engine defaults (the historical baseline)",
    )


def optimized(engine: str) -> TuningProfile:
    """The documented tuned configuration for ``engine``.

    Engines without a documented optimized knob set (custom registry
    engines, or streaming) get a profile equal to normal — honest, and
    detectable via :attr:`TuningProfile.is_normal`.
    """
    return TuningProfile(
        engine,
        "optimized",
        dict(OPTIMIZED_KNOBS.get(engine, {})),
        description="documented tuned configuration (see ENGINE_KNOBS)",
    )


def one_off_profiles(engine: str) -> list[TuningProfile]:
    """Per-knob one-offs: normal with a single optimized knob applied.

    These are what the attribution table is built from — each isolates
    one knob's contribution to the optimized profile's delta.  Engines
    whose optimized profile has at most one knob get none (the one-off
    would duplicate the optimized cell).
    """
    knobs = OPTIMIZED_KNOBS.get(engine, {})
    if len(knobs) <= 1:
        return []
    return [
        TuningProfile(
            engine,
            f"{ONE_OFF_PREFIX}{knob}",
            {knob: knobs[knob]},
            description=f"normal with only {knob}={knobs[knob]!r}",
        )
        for knob in sorted(knobs)
    ]


def get_profile(engine: str, name: str) -> TuningProfile:
    """Resolve a profile name for one engine, validated.

    Accepts ``normal``, ``optimized``, and the per-knob one-off
    spelling ``normal+<knob>`` (where ``<knob>`` belongs to the
    engine's optimized set).  Raises :class:`TuningError` otherwise —
    which is also how a spec naming a one-off for the wrong engine
    fails at planning time.
    """
    if name == "normal":
        return normal(engine)
    if name == "optimized":
        return optimized(engine).validate()
    if name.startswith(ONE_OFF_PREFIX):
        knob = name[len(ONE_OFF_PREFIX):]
        knobs = OPTIMIZED_KNOBS.get(engine, {})
        if knob in knobs:
            return TuningProfile(
                engine,
                name,
                {knob: knobs[knob]},
                description=f"normal with only {knob}={knobs[knob]!r}",
            ).validate()
        raise TuningError(
            f"engine {engine!r} has no optimized knob {knob!r}; "
            f"available one-offs: "
            f"{[ONE_OFF_PREFIX + key for key in sorted(knobs)]}"
        )
    raise TuningError(
        f"unknown tuning profile {name!r} for engine {engine!r}; "
        f"available: {list(available_profiles(engine))}"
    )


def available_profiles(engine: str) -> list[str]:
    """Every profile name :func:`get_profile` resolves for ``engine``."""
    names = ["normal", "optimized"]
    knobs = OPTIMIZED_KNOBS.get(engine, {})
    if len(knobs) > 1:
        names.extend(f"{ONE_OFF_PREFIX}{knob}" for knob in sorted(knobs))
    return names


def builtin_profiles() -> dict[str, dict[str, TuningProfile]]:
    """engine → name → profile, for every engine with a tuning surface."""
    table: dict[str, dict[str, TuningProfile]] = {}
    for engine in ENGINE_KNOBS:
        table[engine] = {
            name: get_profile(engine, name)
            for name in available_profiles(engine)
        }
    return table
