"""Tuning ablations: per-engine tuned configuration surfaces.

The paper's Table 2 compares implementation techniques — indexes,
combiners, partitioning, caching — across systems, and conclusions are
only meaningful relative to a *documented* tuning state.  This package
gives every engine a first-class, serializable tuned-configuration
surface (:mod:`repro.tuning.profiles`) and an ablation driver
(:mod:`repro.tuning.ablate`) that sweeps workload × engine ×
{normal, optimized, per-knob one-off} with the statistical machinery of
:mod:`repro.analysis.compare` judging every pair.

Attribute access is lazy (PEP 562): importing
``repro.tuning.profiles`` from hot paths (the five-step process, the
orchestrator) must not drag the ablation driver and the analysis stack
in with it.
"""

from typing import Any

_EXPORTS = {
    "AblationCell": "repro.tuning.ablate",
    "AblationReport": "repro.tuning.ablate",
    "AblationVerdict": "repro.tuning.ablate",
    "render_ablation": "repro.tuning.ablate",
    "resolve_workloads": "repro.tuning.ablate",
    "run_ablation": "repro.tuning.ablate",
    "DATASET_CACHE_KNOB": "repro.tuning.profiles",
    "ENGINE_KNOBS": "repro.tuning.profiles",
    "TuningProfile": "repro.tuning.profiles",
    "available_profiles": "repro.tuning.profiles",
    "builtin_profiles": "repro.tuning.profiles",
    "get_profile": "repro.tuning.profiles",
    "normal": "repro.tuning.profiles",
    "one_off_profiles": "repro.tuning.profiles",
    "optimized": "repro.tuning.profiles",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str) -> Any:
    try:
        module_name = _EXPORTS[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        ) from None
    import importlib

    return getattr(importlib.import_module(module_name), name)


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(_EXPORTS))
