"""Ablation driver: workload × engine × tuning-profile matrices.

Expands a matrix of cells — every requested workload on every requested
engine under ``normal``, ``optimized``, and (optionally) each per-knob
one-off profile — runs the whole batch through the existing harness
stack (:class:`~repro.execution.runner.TestRunner`, warm pools,
``--layout`` included), records every cell into the
:class:`~repro.analysis.store.RunStore` under a tuning-aware
fingerprint, and judges each tuned cell against its normal baseline
with the bootstrap-CI + Mann–Whitney machinery of
:mod:`repro.analysis.compare`.

The output is an :class:`AblationReport`: the raw cells (each carrying
its run-store record id and series key), a verdict table (improved /
regressed / unchanged / inconclusive per tuned profile), and a
per-knob attribution table built from the one-off profiles — each row
isolating one knob's contribution to the optimized delta.

With ``service=True`` the matrix is submitted cell-by-cell to the
benchmark service (:mod:`repro.service`) as queued
:class:`~repro.core.spec.BenchmarkSpec` jobs instead of running on a
local runner; outcomes, record ids, and verdicts come out identical.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Iterable

from repro.analysis.compare import (
    DEFAULT_ALPHA,
    DEFAULT_TOLERANCE,
    Comparison,
    compare_records,
)
from repro.core.errors import TuningError
from repro.tuning.profiles import (
    ONE_OFF_PREFIX,
    TuningProfile,
    normal,
    one_off_profiles,
    optimized,
)

#: Short spellings accepted by ``--workloads`` alongside full
#: prescription names (the paper's workload classes, Table 1).
WORKLOAD_ALIASES: dict[str, str] = {
    "relational": "database-aggregate-join",
    "micro": "micro-wordcount",
    "oltp": "oltp-read-write",
    "realtime": "realtime-windowed-aggregation",
}

#: Default engine pair for an ablation matrix: the two substrates the
#: paper contrasts most directly (DBMS vs MapReduce, Table 2).
DEFAULT_ENGINES = ("dbms", "mapreduce")


def _tokens(value: str | Iterable[str]) -> list[str]:
    if isinstance(value, str):
        parts = value.split(",")
    else:
        parts = list(value)
    tokens = [part.strip() for part in parts if part and part.strip()]
    if not tokens:
        raise TuningError("no workloads requested")
    return tokens


def resolve_workloads(
    workloads: str | Iterable[str], repository: Any = None
) -> list[str]:
    """Resolve workload tokens to prescription names.

    Accepts exact prescription names, the aliases in
    :data:`WORKLOAD_ALIASES` (``relational``, ``micro``, ...), and any
    unambiguous prescription-name prefix.  Raises
    :class:`~repro.core.errors.TuningError` for unknown or ambiguous
    tokens.
    """
    if repository is None:
        from repro.core.prescription import builtin_repository

        repository = builtin_repository()
    names = repository.names()
    resolved: list[str] = []
    for token in _tokens(workloads):
        if token in names:
            name = token
        elif token in WORKLOAD_ALIASES:
            name = WORKLOAD_ALIASES[token]
        else:
            matches = [n for n in names if n.startswith(token)]
            if len(matches) == 1:
                name = matches[0]
            elif matches:
                raise TuningError(
                    f"ambiguous workload {token!r}: matches {matches}"
                )
            else:
                raise TuningError(
                    f"unknown workload {token!r}; available: {names} "
                    f"(aliases: {sorted(WORKLOAD_ALIASES)})"
                )
        if name not in resolved:
            resolved.append(name)
    return resolved


def _resolve_engines(engines: str | Iterable[str] | None) -> list[str]:
    if engines is None:
        return list(DEFAULT_ENGINES)
    from repro.core import registry

    known = registry.engines.names()
    resolved: list[str] = []
    for token in _tokens(engines):
        if token not in known:
            raise TuningError(
                f"unknown engine {token!r}; available: {sorted(known)}"
            )
        if token not in resolved:
            resolved.append(token)
    return resolved


# ---------------------------------------------------------------------------
# Report structures
# ---------------------------------------------------------------------------


@dataclass
class AblationCell:
    """One (workload, engine, profile) point of the matrix."""

    prescription: str
    workload: str
    engine: str
    profile: TuningProfile
    #: False when the workload does not run on this engine at all; the
    #: cell is kept (so the report shows the hole) but never executed.
    supported: bool = True
    outcome: Any = None  # RunResult | TaskFailure | None
    record_id: str | None = None
    series: str | None = None

    @property
    def ok(self) -> bool:
        return (
            self.supported
            and self.outcome is not None
            and getattr(self.outcome, "ok", False)
        )

    @property
    def status(self) -> str:
        if not self.supported:
            return "unsupported"
        if self.outcome is None:
            return "skipped"
        return "ok" if self.ok else "failed"

    def mean(self, metric: str) -> float | None:
        if not self.ok:
            return None
        try:
            return self.outcome.mean(metric)
        except Exception:
            return None

    def as_dict(self) -> dict[str, Any]:
        payload: dict[str, Any] = {
            "prescription": self.prescription,
            "workload": self.workload,
            "engine": self.engine,
            "profile": self.profile.name,
            "knobs": dict(self.profile.knobs),
            "status": self.status,
        }
        if self.record_id:
            payload["record_id"] = self.record_id
        if self.series:
            payload["series"] = self.series
        if self.outcome is not None:
            payload["outcome"] = self.outcome.as_dict()
        return payload


@dataclass
class AblationVerdict:
    """One tuned profile judged against its normal baseline."""

    prescription: str
    engine: str
    profile: str
    metric: str
    comparison: Comparison

    @property
    def lead(self) -> Any:
        """The :class:`~repro.analysis.compare.MetricComparison` of the
        lead metric (None if the comparison could not cover it)."""
        return self.comparison.metrics.get(self.metric)

    @property
    def verdict(self) -> str:
        lead = self.lead
        return lead.verdict if lead is not None else "inconclusive"

    @property
    def overall(self) -> str:
        return self.comparison.overall

    def as_dict(self) -> dict[str, Any]:
        return {
            "prescription": self.prescription,
            "engine": self.engine,
            "profile": self.profile,
            "metric": self.metric,
            "verdict": self.verdict,
            "overall": self.overall,
            "comparison": self.comparison.as_dict(),
        }


@dataclass
class AblationReport:
    """Everything one ablation run produced."""

    cells: list[AblationCell] = field(default_factory=list)
    verdicts: list[AblationVerdict] = field(default_factory=list)
    #: Per-knob attribution rows (one per one-off profile cell).
    attribution: list[dict[str, Any]] = field(default_factory=list)
    store_dir: str = ""
    repeats: int = 1
    seed: int = 0
    layout: str = "row"
    tolerance: float = DEFAULT_TOLERANCE
    alpha: float = DEFAULT_ALPHA

    def cell(
        self, prescription: str, engine: str, profile: str
    ) -> AblationCell | None:
        for cell in self.cells:
            if (
                cell.prescription == prescription
                and cell.engine == engine
                and cell.profile.name == profile
            ):
                return cell
        return None

    def verdict_for(
        self, prescription: str, engine: str, profile: str
    ) -> AblationVerdict | None:
        for verdict in self.verdicts:
            if (
                verdict.prescription == prescription
                and verdict.engine == engine
                and verdict.profile == profile
            ):
                return verdict
        return None

    def counts(self) -> dict[str, int]:
        """Verdict histogram over the tuned cells."""
        table: dict[str, int] = {}
        for verdict in self.verdicts:
            table[verdict.verdict] = table.get(verdict.verdict, 0) + 1
        return table

    def matrix_rows(self) -> list[dict[str, Any]]:
        rows = []
        for cell in self.cells:
            row: dict[str, Any] = {
                "workload": cell.prescription,
                "engine": cell.engine,
                "profile": cell.profile.name,
                "status": cell.status,
                "record": cell.record_id or "-",
                "series": cell.series or "-",
            }
            rows.append(row)
        return rows

    def verdict_rows(self) -> list[dict[str, Any]]:
        rows = []
        for verdict in self.verdicts:
            lead = verdict.lead
            row: dict[str, Any] = {
                "workload": verdict.prescription,
                "engine": verdict.engine,
                "profile": verdict.profile,
                "metric": verdict.metric,
                "delta": (
                    f"{lead.relative_delta:+.1%}" if lead is not None else "-"
                ),
                "ci95": _format_ci(lead),
                "p": (
                    f"{lead.p_value:.4f}"
                    if lead is not None and lead.p_value is not None
                    else "-"
                ),
                "verdict": verdict.verdict,
                "baseline": verdict.comparison.baseline,
                "candidate": verdict.comparison.candidate,
            }
            rows.append(row)
        return rows

    def attribution_rows(self) -> list[dict[str, Any]]:
        return [dict(row) for row in self.attribution]

    def as_dict(self) -> dict[str, Any]:
        return {
            "store_dir": self.store_dir,
            "repeats": self.repeats,
            "seed": self.seed,
            "layout": self.layout,
            "tolerance": self.tolerance,
            "alpha": self.alpha,
            "counts": self.counts(),
            "cells": [cell.as_dict() for cell in self.cells],
            "verdicts": [verdict.as_dict() for verdict in self.verdicts],
            "attribution": self.attribution_rows(),
        }


def _format_ci(lead: Any) -> str:
    if lead is None or lead.ci_low is None or lead.ci_high is None:
        return "-"
    return f"[{lead.ci_low:+.1%}, {lead.ci_high:+.1%}]"


# ---------------------------------------------------------------------------
# Matrix construction
# ---------------------------------------------------------------------------


def _profiles_for(
    engine: str,
    include_one_offs: bool,
    profiles: dict[str, list[TuningProfile]] | None,
) -> list[TuningProfile]:
    """The profile column for one engine: normal first, then tuned.

    A custom ``profiles`` mapping replaces the built-in set for its
    engine (normal is prepended if absent).  The built-in set is
    normal + optimized (+ per-knob one-offs); an optimized profile
    equal to normal (e.g. streaming) is dropped — running it would
    double-count the baseline series under a second label.
    """
    if profiles is not None and engine in profiles:
        column = [profile.validate() for profile in profiles[engine]]
        if not any(profile.is_normal for profile in column):
            column.insert(0, normal(engine))
        return column
    column = [normal(engine)]
    tuned = optimized(engine)
    if not tuned.is_normal:
        column.append(tuned.validate())
        if include_one_offs:
            column.extend(
                profile.validate() for profile in one_off_profiles(engine)
            )
    return column


def _build_cells(
    prescription_names: list[str],
    engine_names: list[str],
    include_one_offs: bool,
    profiles: dict[str, list[TuningProfile]] | None,
    repository: Any,
) -> list[AblationCell]:
    from repro.core import registry

    cells: list[AblationCell] = []
    for name in prescription_names:
        prescription = repository.get(name)
        workload = registry.workloads.create(prescription.workload)
        for engine in engine_names:
            if not workload.supports(engine):
                # One unsupported marker per (workload, engine) hole.
                cells.append(
                    AblationCell(
                        name,
                        prescription.workload,
                        engine,
                        normal(engine),
                        supported=False,
                    )
                )
                continue
            for profile in _profiles_for(engine, include_one_offs, profiles):
                cells.append(
                    AblationCell(name, prescription.workload, engine, profile)
                )
    return cells


# ---------------------------------------------------------------------------
# Execution backends
# ---------------------------------------------------------------------------


def _run_cells_local(
    cells: list[AblationCell],
    *,
    repository: Any,
    store: Any,
    repeats: int,
    warmup: int,
    volume: int | None,
    seed: int,
    params: dict[str, Any] | None,
    layout: str,
    executor: str,
    max_workers: int | None,
    warm_pool: bool,
    chunk_size: int | None,
) -> None:
    from repro.core.test_generator import TestGenerator
    from repro.execution.runner import RunnerOptions, RunTask, TestRunner

    overrides = dict(params or {})
    overrides.setdefault("seed", seed)

    # Cells sharing a dataset-cache budget share one runner (the budget
    # shapes the generator's cache, not the engine); the unbudgeted
    # majority runs on the default runner.
    by_budget: dict[int | None, list[AblationCell]] = {}
    for cell in cells:
        by_budget.setdefault(cell.profile.dataset_cache_bytes, []).append(cell)

    for budget, group in by_budget.items():
        generator_kwargs: dict[str, Any] = {"repository": repository}
        if budget is not None:
            from repro.datagen.cache import DatasetCache

            generator_kwargs["dataset_cache"] = DatasetCache(
                max_resident_bytes=budget
            )
        runner = TestRunner(
            test_generator=TestGenerator(**generator_kwargs),
            configurations={},
            options=RunnerOptions(
                repeats=repeats,
                warmup_runs=warmup,
                executor=executor,
                max_workers=max_workers,
                warm_pool=warm_pool,
                on_error="continue",
            ),
            store=store,
        )
        tasks = [
            RunTask(
                repository.get(cell.prescription),
                cell.engine,
                volume_override=volume,
                overrides=dict(overrides),
                configuration=cell.profile.configuration(layout),
                chunk_size=chunk_size,
                tuning=cell.profile.fingerprint(),
            )
            for cell in group
        ]
        with runner:
            outcomes = runner.run_many(tasks)
        for cell, outcome in zip(group, outcomes):
            cell.outcome = outcome


def _run_cells_service(
    cells: list[AblationCell],
    *,
    repository: Any,
    store_dir: str,
    repeats: int,
    volume: int | None,
    seed: int,
    params: dict[str, Any] | None,
    layout: str,
    executor: str,
    max_workers: int | None,
    warm_pool: bool,
    chunk_size: int | None,
    schedulers: int,
) -> None:
    from repro.core.spec import BenchmarkSpec
    from repro.service import ServiceClient

    for cell in cells:
        if cell.profile.dataset_cache_bytes is not None:
            raise TuningError(
                f"profile {cell.profile.name!r} sets a dataset-cache "
                "budget, which only the local ablation path applies; "
                "drop service=True or the budget knob"
            )

    with ServiceClient(
        schedulers=schedulers, store_dir=store_dir, repository=repository
    ) as client:
        handles = []
        cell_params = dict(params or {})
        cell_params.setdefault("seed", seed)
        for cell in cells:
            spec = BenchmarkSpec(
                prescription=cell.prescription,
                engines=[cell.engine],
                volume=volume,
                repeats=repeats,
                params=dict(cell_params),
                executor=executor,
                max_workers=max_workers,
                warm_pool=warm_pool,
                chunk_size=chunk_size,
                layout=layout,
                tuning=cell.profile.name,
                record=True,
                store_dir=store_dir,
            )
            handles.append(client.submit(spec, client="ablate"))
        for cell, handle in zip(cells, handles):
            job = handle.wait()
            outcomes = job.outcomes or []
            cell.outcome = outcomes[0] if outcomes else None


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------


def run_ablation(
    workloads: str | Iterable[str],
    engines: str | Iterable[str] | None = None,
    *,
    repeats: int = 5,
    warmup: int = 0,
    volume: int | None = None,
    seed: int = 0,
    params: dict[str, Any] | None = None,
    layout: str = "row",
    executor: str = "serial",
    max_workers: int | None = None,
    warm_pool: bool = True,
    chunk_size: int | None = None,
    include_one_offs: bool = True,
    profiles: dict[str, list[TuningProfile]] | None = None,
    metrics: list[str] | None = None,
    tolerance: float = DEFAULT_TOLERANCE,
    alpha: float = DEFAULT_ALPHA,
    store_dir: str | None = None,
    repository: Any = None,
    service: bool = False,
    schedulers: int = 2,
) -> AblationReport:
    """Run a tuning-ablation matrix and judge every tuned cell.

    Every executed cell is recorded into the run store (ablations are
    about comparable evidence, so recording is not optional); the
    returned report carries each cell's record id and series key, the
    verdict table, and the per-knob attribution rows.

    The lead metric per workload is ``metrics[0]`` when given, else the
    prescription's first declared metric, else ``duration``.  Verdicts
    come from :func:`repro.analysis.compare.compare_records` with the
    given ``tolerance``/``alpha`` and the seeded bootstrap, so the same
    matrix at the same seed renders byte-identical verdicts.
    """
    from repro.analysis.store import (
        RECORD_ID_EXTRA_KEY,
        RunStore,
        resolve_store_dir,
    )

    if repository is None:
        from repro.core.prescription import builtin_repository

        repository = builtin_repository()
    prescription_names = resolve_workloads(workloads, repository)
    engine_names = _resolve_engines(engines)
    cells = _build_cells(
        prescription_names, engine_names, include_one_offs, profiles, repository
    )
    runnable = [cell for cell in cells if cell.supported]
    resolved_dir = resolve_store_dir(store_dir)
    store = RunStore(resolved_dir)

    if service:
        _run_cells_service(
            runnable,
            repository=repository,
            store_dir=resolved_dir,
            repeats=repeats,
            volume=volume,
            seed=seed,
            params=params,
            layout=layout,
            executor=executor,
            max_workers=max_workers,
            warm_pool=warm_pool,
            chunk_size=chunk_size,
            schedulers=schedulers,
        )
    else:
        _run_cells_local(
            runnable,
            repository=repository,
            store=store,
            repeats=repeats,
            warmup=warmup,
            volume=volume,
            seed=seed,
            params=params,
            layout=layout,
            executor=executor,
            max_workers=max_workers,
            warm_pool=warm_pool,
            chunk_size=chunk_size,
        )

    for cell in runnable:
        if cell.outcome is None:
            continue
        record_id = cell.outcome.extra.get(RECORD_ID_EXTRA_KEY)
        if record_id:
            cell.record_id = record_id
            try:
                cell.series = store.get(record_id).series
            except Exception:
                cell.series = None

    report = AblationReport(
        cells=cells,
        store_dir=resolved_dir,
        repeats=repeats,
        seed=seed,
        layout=layout,
        tolerance=tolerance,
        alpha=alpha,
    )
    _judge(report, prescription_names, engine_names, repository, metrics)
    return report


def _lead_metric(
    metrics: list[str] | None, prescription: Any
) -> str:
    if metrics:
        return metrics[0]
    if prescription.metric_names:
        return prescription.metric_names[0]
    return "duration"


def _judge(
    report: AblationReport,
    prescription_names: list[str],
    engine_names: list[str],
    repository: Any,
    metrics: list[str] | None,
) -> None:
    for name in prescription_names:
        prescription = repository.get(name)
        lead = _lead_metric(metrics, prescription)
        compared = metrics or [lead]
        for engine in engine_names:
            base = report.cell(name, engine, "normal")
            if base is None or not base.ok:
                continue
            for cell in report.cells:
                if (
                    cell.prescription != name
                    or cell.engine != engine
                    or cell.profile.is_normal
                    or not cell.ok
                ):
                    continue
                comparison = compare_records(
                    base.outcome,
                    cell.outcome,
                    metrics=compared,
                    tolerance=report.tolerance,
                    alpha=report.alpha,
                    seed=report.seed,
                )
                comparison.baseline = base.record_id or comparison.baseline
                comparison.candidate = (
                    cell.record_id or comparison.candidate
                )
                verdict = AblationVerdict(
                    name, engine, cell.profile.name, lead, comparison
                )
                report.verdicts.append(verdict)
                if cell.profile.name.startswith(ONE_OFF_PREFIX):
                    knob = cell.profile.name[len(ONE_OFF_PREFIX):]
                    lead_cmp = verdict.lead
                    report.attribution.append(
                        {
                            "workload": name,
                            "engine": engine,
                            "knob": knob,
                            "value": repr(cell.profile.knobs.get(knob)),
                            "metric": lead,
                            "delta": (
                                f"{lead_cmp.relative_delta:+.1%}"
                                if lead_cmp is not None
                                else "-"
                            ),
                            "ci95": _format_ci(lead_cmp),
                            "p": (
                                f"{lead_cmp.p_value:.4f}"
                                if lead_cmp is not None
                                and lead_cmp.p_value is not None
                                else "-"
                            ),
                            "verdict": verdict.verdict,
                            "record": cell.record_id or "-",
                        }
                    )


# ---------------------------------------------------------------------------
# Rendering
# ---------------------------------------------------------------------------


def render_ablation(
    report: AblationReport,
    style: str = "ascii",
    metrics: list[str] | None = None,
) -> str:
    """Render a report as an ascii, markdown, or json document.

    The cell-metrics section reuses
    :func:`repro.execution.report.render_results` (the same renderer
    every other verb uses); the verdict and attribution tables are
    ablation-specific.
    """
    if style == "json":
        return json.dumps(report.as_dict(), indent=2, sort_keys=True)
    if style not in ("ascii", "markdown"):
        raise TuningError(
            f"unknown ablation render style {style!r}; "
            "expected one of ('ascii', 'markdown', 'json')"
        )
    from repro.execution.report import (
        ascii_table,
        markdown_table,
        render_results,
    )

    table = ascii_table if style == "ascii" else markdown_table
    heading = (lambda text: text) if style == "ascii" else (
        lambda text: f"## {text}"
    )
    workloads = sorted({cell.prescription for cell in report.cells})
    engines = sorted({cell.engine for cell in report.cells})
    parts: list[str] = [
        f"tuning ablation: {len(workloads)} workload(s) × "
        f"{len(engines)} engine(s), repeats={report.repeats}, "
        f"seed={report.seed}, layout={report.layout}, "
        f"store={report.store_dir}"
    ]
    parts.append(heading("matrix"))
    parts.append(table(report.matrix_rows()))
    outcomes = [cell.outcome for cell in report.cells if cell.outcome]
    if outcomes:
        parts.append(heading("cell metrics"))
        parts.append(render_results(outcomes, style=style, metrics=metrics))
    if report.verdicts:
        parts.append(heading("verdicts (vs normal)"))
        parts.append(table(report.verdict_rows()))
    if report.attribution:
        parts.append(heading("per-knob attribution"))
        parts.append(table(report.attribution_rows()))
    counts = report.counts()
    if counts:
        summary = ", ".join(
            f"{counts[key]} {key}" for key in sorted(counts)
        )
        parts.append(f"verdicts: {summary} "
                     f"(tolerance={report.tolerance:.0%}, "
                     f"alpha={report.alpha})")
    return "\n\n".join(parts)
