"""Admission control (benchmark-as-a-service, piece 2).

A service built to survive heavy traffic cannot let every submission
block until a scheduler frees up — it must **admit or reject at the
door**.  :class:`AdmissionQueue` is a bounded priority queue that sheds
load instead of blocking: a submission that would exceed the queue
capacity or the per-client quota raises a typed :class:`AdmissionError`
immediately, carrying a ``retry_after`` hint computed from the same
deterministic :class:`~repro.execution.retry.RetryPolicy` machinery the
runner uses for task retries — so a well-behaved client backs off on a
seeded exponential schedule rather than hammering the queue.

Quotas count a client's *active* jobs (queued or running); the
orchestrator releases the slot when a job reaches a terminal state, so
a client's budget recycles as its work drains.
"""

from __future__ import annotations

import heapq
import threading
import time
from collections import Counter

from repro.core.errors import ServiceError
from repro.execution.retry import RetryPolicy
from repro.service.jobs import Job

#: Why an admission was refused.
ADMISSION_REASONS = ("queue_full", "quota_exceeded", "closed")

#: Default backoff schedule behind ``retry_after`` hints: 50 ms doubling
#: per consecutive rejection, capped at 5 s, with the policy's seeded
#: jitter so stampeding clients decorrelate deterministically.
DEFAULT_HINT_POLICY = RetryPolicy(
    max_attempts=1, backoff_seconds=0.05, max_backoff_seconds=5.0
)


class AdmissionError(ServiceError):
    """A submission was load-shed instead of enqueued.

    ``reason`` is one of :data:`ADMISSION_REASONS`; ``retry_after`` is
    the client-side resubmission hint in seconds (0 when retrying is
    pointless, e.g. the service is shutting down).
    """

    def __init__(
        self, message: str, *, reason: str, retry_after: float = 0.0
    ) -> None:
        super().__init__(message)
        self.reason = reason
        self.retry_after = retry_after


class AdmissionQueue:
    """Bounded, priority-ordered, load-shedding job queue.

    Higher ``Job.priority`` drains first; ties drain in submission
    order.  ``capacity`` bounds queued (not yet admitted) jobs;
    ``per_client_quota`` bounds one client's active jobs.  Thread-safe.
    """

    def __init__(
        self,
        capacity: int = 64,
        per_client_quota: int | None = None,
        hint_policy: RetryPolicy | None = None,
    ) -> None:
        if capacity <= 0:
            raise ServiceError(f"capacity must be positive, got {capacity}")
        if per_client_quota is not None and per_client_quota <= 0:
            raise ServiceError(
                f"per_client_quota must be positive, got {per_client_quota}"
            )
        self.capacity = capacity
        self.per_client_quota = per_client_quota
        self.hint_policy = hint_policy or DEFAULT_HINT_POLICY
        self._heap: list[tuple[int, int, Job]] = []
        self._seq = 0
        self._active: Counter[str] = Counter()
        self._rejections: Counter[str] = Counter()
        self._closed = False
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)

    # -- submission --------------------------------------------------------

    def submit(self, job: Job) -> int:
        """Enqueue or raise :class:`AdmissionError`; returns the depth
        observed right after admission (the job's load stamp)."""
        with self._lock:
            if self._closed:
                raise AdmissionError(
                    "the service is shutting down; submissions are closed",
                    reason="closed",
                )
            if self._live_depth() >= self.capacity:
                raise AdmissionError(
                    f"admission queue is full ({self.capacity} queued); "
                    f"retry after {self._hint(job.client):.3f}s",
                    reason="queue_full",
                    retry_after=self._hint(job.client, bump=True),
                )
            if (
                self.per_client_quota is not None
                and self._active[job.client] >= self.per_client_quota
            ):
                raise AdmissionError(
                    f"client {job.client!r} already has "
                    f"{self._active[job.client]} active job(s) "
                    f"(quota {self.per_client_quota}); "
                    f"retry after {self._hint(job.client):.3f}s",
                    reason="quota_exceeded",
                    retry_after=self._hint(job.client, bump=True),
                )
            self._rejections.pop(job.client, None)
            self._active[job.client] += 1
            self._seq += 1
            heapq.heappush(self._heap, (-job.priority, self._seq, job))
            depth = self._live_depth()
            job.queue_depth_at_submit = depth
            self._not_empty.notify()
            return depth

    def _hint(self, client: str, bump: bool = False) -> float:
        """Seeded backoff hint growing with consecutive rejections."""
        attempt = self._rejections[client] + 1
        if bump:
            self._rejections[client] = attempt
        return self.hint_policy.delay(attempt, key=client)

    # -- draining ----------------------------------------------------------

    def take(self, timeout: float | None = None) -> Job | None:
        """Pop the highest-priority queued job, waiting up to ``timeout``.

        Returns None on timeout (or immediate emptiness with
        ``timeout=0``).  Jobs cancelled while queued are skipped — their
        tombstones are discarded here.
        """
        deadline = (
            None if timeout is None else time.monotonic() + timeout
        )
        with self._not_empty:
            while True:
                job = self._pop_live()
                if job is not None:
                    return job
                remaining = (
                    None if deadline is None
                    else deadline - time.monotonic()
                )
                if remaining is not None and remaining <= 0:
                    return None
                self._not_empty.wait(remaining)

    def _pop_live(self) -> Job | None:
        while self._heap:
            _, _, job = heapq.heappop(self._heap)
            if job.state == "queued":
                return job
        return None

    # -- bookkeeping -------------------------------------------------------

    def cancel(self, job_id: str) -> Job | None:
        """Tombstone a queued job; returns it, or None when not queued.

        The entry stays in the heap (removal from the middle of a heap
        is O(n)); :meth:`take` discards tombstones as it encounters
        them.  The caller owns the state transition and quota release.
        """
        with self._lock:
            for _, _, job in self._heap:
                if job.job_id == job_id and job.state == "queued":
                    return job
        return None

    def release(self, client: str) -> None:
        """Return one of ``client``'s active slots (job went terminal)."""
        with self._lock:
            if self._active[client] > 0:
                self._active[client] -= 1
                if not self._active[client]:
                    del self._active[client]

    def depth(self) -> int:
        """Queued (live, uncancelled) jobs right now."""
        with self._lock:
            return self._live_depth()

    def _live_depth(self) -> int:
        return sum(
            1 for _, _, job in self._heap if job.state == "queued"
        )

    def active(self, client: str) -> int:
        """``client``'s active (queued + running) job count."""
        with self._lock:
            return self._active[client]

    def close(self) -> None:
        """Reject all further submissions; queued jobs keep draining."""
        with self._not_empty:
            self._closed = True
            self._not_empty.notify_all()

    @property
    def closed(self) -> bool:
        return self._closed
