"""The job orchestrator (benchmark-as-a-service, piece 3).

Turns the runner into a worker: a pool of scheduler threads drains the
:class:`~repro.service.queue.AdmissionQueue`, drives each job's spec
through the existing :class:`~repro.execution.runner.TestRunner`
(per-scheduler runners are kept warm across jobs, so the process
backend's worker pools amortize exactly as they do under ``run_many``),
auto-records outcomes into the :class:`~repro.analysis.store.RunStore`
when the spec asks, and appends every lifecycle transition to the
append-only job log next to the store.

Observability: each job executes under a ``job`` span on the
orchestrator's tracer — queue-wait seconds, priority, and a
``queue.depth`` counter (the depth observed when the job was admitted
to the queue) ride on it, so a traced burst shows exactly how deep the
backlog ran.  Subscribers get a :class:`JobEvent` per transition via
:meth:`Orchestrator.subscribe` (push) or the per-job iterator on
:class:`~repro.service.client.JobHandle` (pull).

Parity contract: a job's outcomes — metrics, extras, and recorded
run-store entries — are exactly what the equivalent direct
``TestRunner.run_many`` call with the spec's options would produce;
the service owns the lifecycle, not the semantics.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.core.errors import ServiceError
from repro.core.prescription import PrescriptionRepository, builtin_repository
from repro.core.results import TaskFailure
from repro.core.spec import BenchmarkSpec
from repro.observability import NULL_TRACER, Tracer
from repro.service.jobs import Job, JobLog
from repro.service.queue import AdmissionQueue


@dataclass
class JobEvent:
    """One observed lifecycle transition."""

    job_id: str
    state: str
    at: float
    detail: dict[str, Any] = field(default_factory=dict)


class Orchestrator:
    """Schedules queued jobs onto warm runners; owns the job lifecycle."""

    def __init__(
        self,
        *,
        schedulers: int = 2,
        queue: AdmissionQueue | None = None,
        repository: PrescriptionRepository | None = None,
        store_dir: str | None = None,
        tracer: Tracer | None = None,
        log_jobs: bool = True,
    ) -> None:
        if schedulers <= 0:
            raise ServiceError(
                f"schedulers must be positive, got {schedulers}"
            )
        self.schedulers = schedulers
        self.queue = queue or AdmissionQueue()
        self.repository = repository or builtin_repository()
        self.store_dir = store_dir
        self.tracer = tracer or NULL_TRACER
        from repro.analysis.store import resolve_store_dir

        self.job_log = (
            JobLog(resolve_store_dir(store_dir)) if log_jobs else None
        )
        self._jobs: dict[str, Job] = {}
        self._seq = 0
        self._threads: list[threading.Thread] = []
        self._runners: list[Any] = []
        self._runner_lock = threading.Lock()
        self._local = threading.local()
        self._subscribers: list[Callable[[JobEvent], None]] = []
        self._cond = threading.Condition()
        self._started = False
        self._closing = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> "Orchestrator":
        """Spawn the scheduler threads (idempotent)."""
        with self._cond:
            if self._started:
                return self
            if self._closing:
                raise ServiceError("orchestrator is already shut down")
            self._started = True
        for index in range(self.schedulers):
            thread = threading.Thread(
                target=self._scheduler_loop,
                name=f"repro-scheduler-{index}",
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)
        return self

    def shutdown(self, wait: bool = True, drain: bool = True) -> None:
        """Stop accepting work; optionally finish what is queued.

        ``drain=True`` (the default) lets queued jobs run to completion
        before the schedulers exit; ``drain=False`` cancels everything
        still queued.  Running jobs always finish — the runner has no
        preemption, and killing mid-benchmark would corrupt results.
        """
        self.queue.close()
        if not drain:
            with self._cond:
                queued = [
                    job for job in self._jobs.values()
                    if job.state == "queued"
                ]
            for job in queued:
                self.cancel(job.job_id)
        with self._cond:
            self._closing = True
            self._cond.notify_all()
        if wait:
            for thread in self._threads:
                thread.join()
        with self._runner_lock:
            runners, self._runners = self._runners, []
        for runner in runners:
            runner.close()

    def __enter__(self) -> "Orchestrator":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.shutdown()

    # ------------------------------------------------------------------
    # Submission and queries
    # ------------------------------------------------------------------

    def submit(
        self,
        spec: BenchmarkSpec | str,
        *,
        client: str = "anonymous",
        priority: int = 0,
    ) -> Job:
        """Validate, admit, and enqueue one job.

        Validation happens *here* — at the service door, the Planning
        step of Figure 1 — so a misconfigured spec is rejected before
        it occupies a queue slot.  Admission may raise
        :class:`~repro.service.queue.AdmissionError` (load shedding).
        """
        if isinstance(spec, str):
            spec = BenchmarkSpec(prescription=spec)
        spec.validate(self.repository)
        with self._cond:
            self._seq += 1
            job = Job(
                spec=spec,
                job_id=f"j{self._seq:04d}",
                client=client,
                priority=priority,
            )
        self.queue.submit(job)
        with self._cond:
            self._jobs[job.job_id] = job
        if self.job_log is not None:
            self.job_log.append(job, "queued")
        self._notify(JobEvent(job.job_id, "queued", job.submitted_at))
        return job

    def job(self, job_id: str) -> Job:
        with self._cond:
            try:
                return self._jobs[job_id]
            except KeyError:
                raise ServiceError(
                    f"unknown job {job_id!r}; known: {sorted(self._jobs)}"
                ) from None

    def jobs(self) -> list[Job]:
        """Every job this orchestrator has accepted, submission order."""
        with self._cond:
            return list(self._jobs.values())

    def status(self, job_id: str) -> str:
        return self.job(job_id).state

    def wait(self, job_id: str, timeout: float | None = None) -> Job:
        """Block until the job is terminal; raises on timeout."""
        job = self.job(job_id)
        deadline = (
            None if timeout is None else time.monotonic() + timeout
        )
        with self._cond:
            while not job.terminal:
                remaining = (
                    None if deadline is None
                    else deadline - time.monotonic()
                )
                if remaining is not None and remaining <= 0:
                    raise ServiceError(
                        f"timed out after {timeout}s waiting for job "
                        f"{job_id} (state: {job.state})"
                    )
                self._cond.wait(remaining)
        return job

    def cancel(self, job_id: str) -> bool:
        """Cancel a still-queued job; returns whether it took effect.

        Admitted/running jobs are past the point of no return (no
        preemption); terminal jobs are already settled.  A successful
        cancel releases the client's quota slot and leaves a tombstone
        the queue discards.
        """
        job = self.job(job_id)
        with self._cond:
            if job.state != "queued":
                return False
            at = job.transition("cancelled")
            self._cond.notify_all()
        self.queue.release(job.client)
        if self.job_log is not None:
            self.job_log.append(job, "cancelled")
        self._notify(JobEvent(job.job_id, "cancelled", at))
        return True

    # ------------------------------------------------------------------
    # Events
    # ------------------------------------------------------------------

    def subscribe(self, callback: Callable[[JobEvent], None]) -> None:
        """Push every future :class:`JobEvent` to ``callback``.

        Called synchronously from scheduler threads — keep callbacks
        quick; a raising callback is dropped from the list rather than
        poisoning the scheduler.
        """
        with self._cond:
            self._subscribers.append(callback)

    def unsubscribe(self, callback: Callable[[JobEvent], None]) -> None:
        with self._cond:
            if callback in self._subscribers:
                self._subscribers.remove(callback)

    def _notify(self, event: JobEvent) -> None:
        with self._cond:
            subscribers = list(self._subscribers)
        for callback in subscribers:
            try:
                callback(event)
            except Exception:  # noqa: BLE001 — observers must not kill work
                self.unsubscribe(callback)

    def watch(self, job_id: str):
        """Yield the job's transitions (historical, then live) until
        it goes terminal — the pull-style twin of :meth:`subscribe`."""
        job = self.job(job_id)
        seen = 0
        while True:
            with self._cond:
                while len(job.history) == seen and not job.terminal:
                    self._cond.wait()
                fresh = job.history[seen:]
                seen = len(job.history)
            for state, at in fresh:
                yield JobEvent(job.job_id, state, at)
            if job.terminal and seen == len(job.history):
                return

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------

    def _scheduler_loop(self) -> None:
        while True:
            job = self.queue.take(timeout=0.05)
            if job is None:
                with self._cond:
                    if self._closing and self.queue.depth() == 0:
                        return
                continue
            self._run_job(job)

    def _transition(
        self, job: Job, state: str, detail: dict[str, Any] | None = None
    ) -> None:
        with self._cond:
            at = job.transition(state)
            self._cond.notify_all()
        if self.job_log is not None:
            self.job_log.append(job, state, detail)
        self._notify(JobEvent(job.job_id, state, at, detail or {}))

    def _run_job(self, job: Job) -> None:
        # Check-and-admit atomically: a cancel() racing this scheduler
        # either wins (we see "cancelled" and drop the job — its quota
        # slot is already released) or loses (the job is admitted and
        # past the point of no return).
        with self._cond:
            if job.state != "queued":
                return
            at = job.transition("admitted")
            self._cond.notify_all()
        if self.job_log is not None:
            self.job_log.append(job, "admitted")
        self._notify(JobEvent(job.job_id, "admitted", at))
        with self.tracer.activate():
            with self.tracer.span(
                "job",
                job_id=job.job_id,
                prescription=job.spec.prescription,
                client=job.client,
                priority=job.priority,
            ) as span:
                if span:
                    span.set(
                        queue_wait_seconds=job.queue_wait_seconds() or 0.0
                    )
                    span.incr("queue.depth", job.queue_depth_at_submit)
                self._transition(job, "running")
                try:
                    outcomes = self._execute(job.spec)
                except Exception as error:  # noqa: BLE001 — job-scoped
                    job.error_type = type(error).__name__
                    job.error_message = str(error)
                    if span:
                        span.set(status="failed", error=job.error_type)
                    self._transition(
                        job,
                        "failed",
                        {
                            "error_type": job.error_type,
                            "error_message": job.error_message,
                        },
                    )
                else:
                    from repro.analysis.store import RECORD_ID_EXTRA_KEY

                    job.outcomes = outcomes
                    job.record_ids = [
                        outcome.extra[RECORD_ID_EXTRA_KEY]
                        for outcome in outcomes
                        if RECORD_ID_EXTRA_KEY in outcome.extra
                    ]
                    job.failure_count = sum(
                        1 for outcome in outcomes
                        if isinstance(outcome, TaskFailure)
                    )
                    if span:
                        span.set(
                            status="done",
                            tasks=len(outcomes),
                            failures=job.failure_count,
                        )
                    detail: dict[str, Any] = {"tasks": len(outcomes)}
                    if job.record_ids:
                        detail["record_ids"] = list(job.record_ids)
                    if job.failure_count:
                        detail["failure_count"] = job.failure_count
                    self._transition(job, "done", detail)
        self.queue.release(job.client)

    # ------------------------------------------------------------------
    # Execution (the worker half: spec -> runner batch)
    # ------------------------------------------------------------------

    def _execute(self, spec: BenchmarkSpec) -> list[Any]:
        """One spec through the warm per-scheduler runner.

        Mirrors the direct ``TestRunner`` call a library user would
        make: default engine configurations, one
        :class:`~repro.execution.runner.RunTask` per resolved engine,
        the run store attached when the spec records.  The runner (and
        its warm process pool, dataset cache, and executor) persists on
        this scheduler thread across jobs with the same execution
        options.
        """
        from repro.execution.config import default_configurations, layout_options
        from repro.execution.runner import RunTask
        from repro.tuning.profiles import get_profile

        runner = self._runner_for(spec)
        configurations = default_configurations()
        engine_names = spec.resolved_engines(self.repository)
        profiles = {
            name: get_profile(name, spec.tuning) for name in engine_names
        }
        layout_opts = layout_options(spec.layout)
        # Per-engine option overlay: layout options first, then the
        # tuning profile's knobs (profile wins on conflict).
        engine_options = {
            name: {
                **layout_opts.get(name, {}),
                **(
                    profiles[name].engine_options()
                    if name in profiles
                    else {}
                ),
            }
            for name in set(engine_names) | set(layout_opts)
        }
        engine_options = {
            name: options for name, options in engine_options.items() if options
        }
        if engine_options:
            from dataclasses import replace

            configurations = {
                name: replace(
                    configuration,
                    options={
                        **configuration.options,
                        **engine_options.get(name, {}),
                    },
                )
                for name, configuration in configurations.items()
            }
        if spec.inject_latency:
            from dataclasses import replace

            from repro.engines.faults import FaultSpec

            slowdown = FaultSpec(
                latency_rate=1.0, latency_seconds=spec.inject_latency
            )
            configurations = {
                name: replace(configuration, fault=slowdown)
                for name, configuration in configurations.items()
            }
        runner.configurations = configurations
        if spec.should_record:
            from repro.analysis.store import RunStore, resolve_store_dir

            runner.store = RunStore(
                resolve_store_dir(spec.store_dir or self.store_dir)
            )
        else:
            runner.store = None
        prescription = self.repository.get(spec.prescription)
        tasks = [
            RunTask(
                prescription,
                engine_name,
                spec.volume,
                dict(spec.params),
                data_partitions=(
                    spec.data_partitions
                    if spec.data_partitions > 1
                    else None
                ),
                chunk_size=spec.chunk_size,
                tuning=profiles[engine_name].fingerprint(),
            )
            for engine_name in engine_names
        ]
        return runner.run_many(tasks)

    def _runner_for(self, spec: BenchmarkSpec):
        """This scheduler thread's runner for the spec's options.

        Keyed on everything that shapes execution; a job with different
        options closes the thread's previous runner (releasing its
        executor and warm pool) and builds a fresh one.
        """
        from repro.core.test_generator import TestGenerator
        from repro.execution.runner import RunnerOptions, TestRunner

        key = (
            spec.executor,
            spec.max_workers,
            spec.warm_pool,
            spec.repeats,
            spec.on_error,
            spec.retries,
            spec.retry_backoff,
            spec.task_timeout,
        )
        cached = getattr(self._local, "runner_entry", None)
        if cached is not None and cached[0] == key:
            return cached[1]
        if cached is not None:
            cached[1].close()
            with self._runner_lock:
                if cached[1] in self._runners:
                    self._runners.remove(cached[1])
        runner = TestRunner(
            test_generator=TestGenerator(self.repository),
            options=RunnerOptions(
                repeats=spec.repeats,
                executor=spec.executor,
                max_workers=spec.max_workers,
                warm_pool=spec.warm_pool,
                on_error=spec.on_error,
                retries=spec.retries,
                retry_backoff=spec.retry_backoff,
                task_timeout=spec.task_timeout,
            ),
        )
        self._local.runner_entry = (key, runner)
        with self._runner_lock:
            self._runners.append(runner)
        return runner
