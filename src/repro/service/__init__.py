"""Benchmark-as-a-service: an async job orchestrator over the runner.

The ROADMAP's north star — serving heavy traffic — needs the runner to
be a *worker*, not an owner of its own lifecycle.  This package is the
service in front of it:

* :mod:`repro.service.jobs` — the :class:`Job` state machine
  (``queued → admitted → running → done|failed|cancelled``) and the
  append-only JSONL job log next to the run store;
* :mod:`repro.service.queue` — bounded admission with per-client
  quotas and load shedding (typed :class:`AdmissionError` with seeded
  ``retry_after`` resubmission hints);
* :mod:`repro.service.orchestrator` — scheduler threads draining the
  queue through warm per-scheduler :class:`TestRunner` instances,
  auto-recording into the :class:`RunStore`, streaming
  :class:`JobEvent` transitions, and tracing per-job spans with
  queue-depth counters;
* :mod:`repro.service.client` — the in-process :class:`ServiceClient`
  / :class:`JobHandle` surface the CLI verbs (``serve``, ``submit``,
  ``jobs list|show|cancel``) drive.
"""

from repro.service.client import JobHandle, ServiceClient
from repro.service.jobs import (
    JOB_STATES,
    TERMINAL_STATES,
    Job,
    JobLog,
)
from repro.service.orchestrator import JobEvent, Orchestrator
from repro.service.queue import (
    ADMISSION_REASONS,
    AdmissionError,
    AdmissionQueue,
)

__all__ = [
    "ADMISSION_REASONS",
    "AdmissionError",
    "AdmissionQueue",
    "JOB_STATES",
    "Job",
    "JobEvent",
    "JobHandle",
    "JobLog",
    "Orchestrator",
    "ServiceClient",
    "TERMINAL_STATES",
]
