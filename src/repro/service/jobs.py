"""Jobs and the append-only job log (benchmark-as-a-service, piece 1).

The paper frames benchmarking as a repeatable five-step *process*; the
service layer makes each run of that process a first-class **job** with
an explicit lifecycle::

    queued -> admitted -> running -> done | failed | cancelled

A :class:`Job` pairs a versioned :class:`~repro.core.spec.BenchmarkSpec`
with its state machine, timestamps, and (once finished) its outcomes
and run-store record ids.  Every transition is appended to a JSONL
**job log** living next to the :class:`~repro.analysis.store.RunStore`
(same directory, its own file), so ``repro-bench jobs list`` can audit
what the service did long after the process exits — and
:meth:`JobLog.replay` reconstructs the jobs from nothing but the log.

States are orchestration facts, not benchmark verdicts: a job whose
batch *completed* is ``done`` even when some tasks captured a
:class:`~repro.core.results.TaskFailure` under ``on_error="continue"``
(the failures ride along in the outcomes); ``failed`` means the runner
itself raised before producing a batch.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.core.errors import ServiceError
from repro.core.spec import BenchmarkSpec

#: Every job state, in lifecycle order.
JOB_STATES = (
    "queued", "admitted", "running", "done", "failed", "cancelled",
)

#: States a job never leaves.
TERMINAL_STATES = frozenset({"done", "failed", "cancelled"})

#: The legal state machine (queued jobs can be cancelled before a
#: scheduler ever admits them; running jobs finish or fail).
_TRANSITIONS: dict[str, frozenset[str]] = {
    "queued": frozenset({"admitted", "cancelled"}),
    "admitted": frozenset({"running", "cancelled"}),
    "running": frozenset({"done", "failed", "cancelled"}),
    "done": frozenset(),
    "failed": frozenset(),
    "cancelled": frozenset(),
}


@dataclass
class Job:
    """One benchmark run owned by the service.

    ``outcomes`` is runtime-only (live :class:`RunResult` /
    :class:`TaskFailure` objects handed to waiting clients); everything
    else serializes through :meth:`as_dict` and survives in the job log.
    """

    spec: BenchmarkSpec
    job_id: str = ""
    client: str = "anonymous"
    priority: int = 0
    state: str = "queued"
    submitted_at: float = field(default_factory=time.time)
    #: (state, wall-clock) pairs, one per transition, submission first.
    history: list[tuple[str, float]] = field(default_factory=list)
    #: Queue depth observed right after this job was enqueued (the
    #: load signal the per-job trace span surfaces).
    queue_depth_at_submit: int = 0
    error_type: str | None = None
    error_message: str | None = None
    #: Run-store record ids, outcome order (spec asked for recording).
    record_ids: list[str] = field(default_factory=list)
    #: Captured TaskFailure count within a completed batch.
    failure_count: int = 0
    #: Live outcomes — populated in-process only, never serialized.
    outcomes: list[Any] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.state not in _TRANSITIONS:
            raise ServiceError(
                f"unknown job state {self.state!r}; known: {JOB_STATES}"
            )
        if not self.history:
            self.history.append((self.state, self.submitted_at))

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    @property
    def timestamps(self) -> dict[str, float]:
        """State → wall-clock of the (first) transition into it."""
        stamps: dict[str, float] = {}
        for state, at in self.history:
            stamps.setdefault(state, at)
        return stamps

    def queue_wait_seconds(self) -> float | None:
        """Seconds between submission and admission (None while queued)."""
        stamps = self.timestamps
        if "admitted" not in stamps:
            return None
        return max(0.0, stamps["admitted"] - self.submitted_at)

    def transition(self, state: str, at: float | None = None) -> float:
        """Move to ``state``, enforcing the machine; returns the stamp."""
        allowed = _TRANSITIONS.get(self.state)
        if allowed is None:
            raise ServiceError(
                f"unknown job state {self.state!r}; known: {JOB_STATES}"
            )
        if state not in allowed:
            raise ServiceError(
                f"job {self.job_id or '<unsubmitted>'} cannot go "
                f"{self.state!r} -> {state!r}; allowed: {sorted(allowed)}"
            )
        at = time.time() if at is None else at
        self.state = state
        self.history.append((state, at))
        return at

    # -- serialization ----------------------------------------------------

    def as_dict(self) -> dict[str, Any]:
        payload: dict[str, Any] = {
            "job_id": self.job_id,
            "client": self.client,
            "priority": self.priority,
            "state": self.state,
            "submitted_at": self.submitted_at,
            "history": [list(entry) for entry in self.history],
            "queue_depth_at_submit": self.queue_depth_at_submit,
            "spec": self.spec.as_dict(),
        }
        if self.error_type:
            payload["error_type"] = self.error_type
            payload["error_message"] = self.error_message
        if self.record_ids:
            payload["record_ids"] = list(self.record_ids)
        if self.failure_count:
            payload["failure_count"] = self.failure_count
        return payload

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "Job":
        return cls(
            spec=BenchmarkSpec.from_dict(payload["spec"]),
            job_id=payload.get("job_id", ""),
            client=payload.get("client", "anonymous"),
            priority=payload.get("priority", 0),
            state=payload.get("state", "queued"),
            submitted_at=payload.get("submitted_at", 0.0),
            history=[
                (str(state), float(at))
                for state, at in payload.get("history", [])
            ],
            queue_depth_at_submit=payload.get("queue_depth_at_submit", 0),
            error_type=payload.get("error_type"),
            error_message=payload.get("error_message"),
            record_ids=list(payload.get("record_ids", [])),
            failure_count=payload.get("failure_count", 0),
        )


@dataclass
class JobLog:
    """Append-only JSONL audit trail of every job the service touched.

    Lives next to the run store (same directory, ``jobs.jsonl``).  The
    submission event carries the full job payload (including the
    versioned spec); later transition events are one line each.  The
    file is the source of truth for the offline CLI verbs
    (``jobs list|show|cancel``) — :meth:`replay` folds the lines back
    into :class:`Job` objects, newest state winning.
    """

    root: Path
    FILENAME = "jobs.jsonl"

    def __post_init__(self) -> None:
        self.root = Path(self.root)
        self._lock = threading.Lock()

    @property
    def path(self) -> Path:
        return self.root / self.FILENAME

    # -- writing ----------------------------------------------------------

    def append(
        self, job: Job, event: str, detail: dict[str, Any] | None = None
    ) -> None:
        """Append one lifecycle event (``event`` is the entered state)."""
        line: dict[str, Any] = {
            "job_id": job.job_id,
            "event": event,
            "at": job.timestamps.get(event, time.time()),
        }
        if event == "queued":
            line["job"] = job.as_dict()
        if detail:
            line["detail"] = detail
        with self._lock:
            self.root.mkdir(parents=True, exist_ok=True)
            with self.path.open("a", encoding="utf-8") as handle:
                handle.write(json.dumps(line, default=str) + "\n")

    # -- reading ----------------------------------------------------------

    def events(self) -> list[dict[str, Any]]:
        """Every logged event, oldest first."""
        if not self.path.exists():
            return []
        events: list[dict[str, Any]] = []
        for line_no, line in enumerate(
            self.path.read_text(encoding="utf-8").splitlines(), start=1
        ):
            line = line.strip()
            if not line:
                continue
            try:
                events.append(json.loads(line))
            except json.JSONDecodeError as error:
                raise ServiceError(
                    f"corrupt job log {self.path}: line {line_no}: {error}"
                ) from None
        return events

    def replay(self) -> dict[str, Job]:
        """Reconstruct every logged job, submission order preserved.

        Transition events re-run through :meth:`Job.transition`, so a
        log that encodes an illegal jump fails loudly here instead of
        silently yielding an impossible state.  Events for unknown job
        ids (a truncated log) are skipped.
        """
        jobs: dict[str, Job] = {}
        for event in self.events():
            name = event.get("event")
            job_id = event.get("job_id", "")
            if name == "queued" and "job" in event:
                job = Job.from_dict(event["job"])
                jobs[job.job_id] = job
                continue
            job = jobs.get(job_id)
            if job is None or name is None:
                continue
            job.transition(name, at=event.get("at"))
            detail = event.get("detail") or {}
            if "error_type" in detail:
                job.error_type = detail["error_type"]
                job.error_message = detail.get("error_message")
            if "record_ids" in detail:
                job.record_ids = list(detail["record_ids"])
            if "failure_count" in detail:
                job.failure_count = detail["failure_count"]
        return jobs

    def get(self, job_id: str) -> Job:
        """One replayed job, by exact id or unique prefix."""
        jobs = self.replay()
        if job_id in jobs:
            return jobs[job_id]
        matches = [job for key, job in jobs.items() if key.startswith(job_id)]
        if len(matches) == 1:
            return matches[0]
        if matches:
            raise ServiceError(f"ambiguous job reference {job_id!r}")
        raise ServiceError(
            f"no job {job_id!r} in {self.path}; known: {sorted(jobs)[-5:]}"
        )
