"""The in-process service client (benchmark-as-a-service, piece 4).

:class:`ServiceClient` is the one blessed way to talk to the
orchestrator — the same object the ``repro-bench serve`` / ``submit`` /
``jobs`` CLI verbs drive::

    from repro.api import BenchmarkSpec, ServiceClient

    with ServiceClient(store_dir=".repro-runs") as client:
        handle = client.submit(BenchmarkSpec("micro-wordcount", volume=200))
        job = handle.wait()
        for outcome in handle.result():
            print(outcome.engine, outcome.status)

A :class:`JobHandle` is a future over one job: ``status()`` polls,
``wait()`` blocks until the lifecycle settles, ``result()`` returns the
batch outcomes (or raises :class:`~repro.core.errors.ServiceError` with
the captured error for failed/cancelled jobs), ``cancel()`` withdraws a
still-queued job, and ``events()`` iterates the lifecycle transitions
as they happen.
"""

from __future__ import annotations

from typing import Any

from repro.core.errors import ServiceError
from repro.core.spec import BenchmarkSpec
from repro.service.jobs import Job, TERMINAL_STATES
from repro.service.orchestrator import JobEvent, Orchestrator


class JobHandle:
    """A client's view of one submitted job."""

    def __init__(self, job: Job, orchestrator: Orchestrator) -> None:
        self._job = job
        self._orchestrator = orchestrator

    @property
    def job_id(self) -> str:
        return self._job.job_id

    @property
    def job(self) -> Job:
        return self._job

    def status(self) -> str:
        """The job's current lifecycle state."""
        return self._job.state

    def wait(self, timeout: float | None = None) -> Job:
        """Block until the job settles; raises on timeout."""
        return self._orchestrator.wait(self._job.job_id, timeout)

    def result(self, timeout: float | None = None) -> list[Any]:
        """The finished batch's outcomes, in task submission order.

        Blocks like :meth:`wait`.  A ``done`` job returns its outcomes
        — including any captured
        :class:`~repro.core.results.TaskFailure` from an
        ``on_error="continue"`` batch.  A ``failed`` or ``cancelled``
        job raises :class:`ServiceError` carrying what went wrong.
        """
        job = self.wait(timeout)
        if job.state == "done":
            return list(job.outcomes)
        if job.state == "failed":
            raise ServiceError(
                f"job {job.job_id} failed: "
                f"{job.error_type}: {job.error_message}"
            )
        raise ServiceError(f"job {job.job_id} was cancelled")

    def cancel(self) -> bool:
        """Withdraw the job if it is still queued."""
        return self._orchestrator.cancel(self._job.job_id)

    def events(self):
        """Iterate lifecycle transitions (historical, then live) until
        the job goes terminal."""
        return self._orchestrator.watch(self._job.job_id)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"JobHandle({self._job.job_id}, {self._job.state})"


class ServiceClient:
    """Submit, watch, fetch, and cancel benchmark jobs in-process.

    Wraps an :class:`Orchestrator` — either one you pass in (shared
    with other clients) or a private one built from the keyword
    arguments (``schedulers``, ``store_dir``, ``queue``, ``tracer``,
    ...) and started lazily on first submit.  Closing the client shuts
    down a private orchestrator (draining queued jobs first) but leaves
    a shared one alone.
    """

    def __init__(
        self, orchestrator: Orchestrator | None = None, **options: Any
    ) -> None:
        if orchestrator is not None and options:
            raise ServiceError(
                "pass either a shared orchestrator or construction "
                f"options, not both (got {sorted(options)})"
            )
        self._owns_orchestrator = orchestrator is None
        self.orchestrator = orchestrator or Orchestrator(**options)

    def submit(
        self,
        spec: BenchmarkSpec | str,
        *,
        client: str = "anonymous",
        priority: int = 0,
    ) -> JobHandle:
        """Validate, admit, and enqueue; returns immediately.

        May raise :class:`~repro.service.queue.AdmissionError` (load
        shedding — the ``retry_after`` attribute is the resubmission
        hint) or :class:`~repro.core.errors.SpecError` (the spec failed
        Planning-step validation).
        """
        self.orchestrator.start()
        job = self.orchestrator.submit(
            spec, client=client, priority=priority
        )
        return JobHandle(job, self.orchestrator)

    def handle(self, job_id: str) -> JobHandle:
        """Re-attach to a previously submitted job."""
        return JobHandle(self.orchestrator.job(job_id), self.orchestrator)

    def jobs(self) -> list[Job]:
        return self.orchestrator.jobs()

    def status(self, job_id: str) -> str:
        return self.orchestrator.status(job_id)

    def cancel(self, job_id: str) -> bool:
        return self.orchestrator.cancel(job_id)

    def subscribe(self, callback) -> None:
        self.orchestrator.subscribe(callback)

    def close(self) -> None:
        """Drain and shut down a private orchestrator (idempotent)."""
        if self._owns_orchestrator:
            self.orchestrator.shutdown()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


__all__ = [
    "JobEvent",
    "JobHandle",
    "ServiceClient",
    "TERMINAL_STATES",
]
