"""Small shared utilities used across the repro framework."""

from __future__ import annotations

import math
import time
from collections.abc import Iterable, Iterator, Sequence
from typing import TypeVar

T = TypeVar("T")

#: Bytes per unit, for human-readable volume parsing/formatting.
_SIZE_UNITS = {
    "b": 1,
    "kb": 10**3,
    "mb": 10**6,
    "gb": 10**9,
    "tb": 10**12,
    "pb": 10**15,
}


def parse_size(text: str | int | float) -> int:
    """Parse a human-readable size such as ``"10MB"`` or ``"1.5 GB"`` to bytes.

    Plain numbers are interpreted as bytes.  Parsing is case-insensitive and
    tolerates whitespace between the number and the unit.

    >>> parse_size("10MB")
    10000000
    >>> parse_size(1024)
    1024
    """
    if isinstance(text, (int, float)):
        return int(text)
    cleaned = text.strip().lower().replace(" ", "")
    for unit in sorted(_SIZE_UNITS, key=len, reverse=True):
        if cleaned.endswith(unit):
            number = cleaned[: -len(unit)]
            return int(float(number) * _SIZE_UNITS[unit])
    return int(float(cleaned))


def format_size(num_bytes: float) -> str:
    """Format a byte count as a human-readable string (``"1.5 GB"``)."""
    value = float(num_bytes)
    for unit in ("B", "KB", "MB", "GB", "TB"):
        if abs(value) < 1000.0:
            return f"{value:.1f} {unit}"
        value /= 1000.0
    return f"{value:.1f} PB"


def chunked(items: Sequence[T], num_chunks: int) -> list[Sequence[T]]:
    """Split ``items`` into ``num_chunks`` contiguous, near-equal chunks.

    Earlier chunks receive the remainder, so sizes differ by at most one.
    Empty chunks are produced when ``num_chunks`` exceeds ``len(items)``.
    """
    if num_chunks <= 0:
        raise ValueError(f"num_chunks must be positive, got {num_chunks}")
    base, extra = divmod(len(items), num_chunks)
    chunks: list[Sequence[T]] = []
    start = 0
    for index in range(num_chunks):
        size = base + (1 if index < extra else 0)
        chunks.append(items[start : start + size])
        start += size
    return chunks


def batched(iterable: Iterable[T], batch_size: int) -> Iterator[list[T]]:
    """Yield successive lists of at most ``batch_size`` items.

    >>> list(batched([1, 2, 3, 4, 5], 2))
    [[1, 2], [3, 4], [5]]
    """
    if batch_size <= 0:
        raise ValueError(f"batch_size must be positive, got {batch_size}")
    batch: list[T] = []
    for item in iterable:
        batch.append(item)
        if len(batch) == batch_size:
            yield batch
            batch = []
    if batch:
        yield batch


class Stopwatch:
    """A simple monotonic stopwatch used by runners and rate controllers."""

    def __init__(self) -> None:
        self._start: float | None = None
        self._elapsed = 0.0

    def start(self) -> "Stopwatch":
        self._start = time.perf_counter()
        return self

    def stop(self) -> float:
        """Stop and return the total elapsed seconds."""
        if self._start is None:
            raise RuntimeError("stopwatch was never started")
        self._elapsed += time.perf_counter() - self._start
        self._start = None
        return self._elapsed

    @property
    def elapsed(self) -> float:
        """Elapsed seconds so far (running or stopped)."""
        if self._start is not None:
            return self._elapsed + (time.perf_counter() - self._start)
        return self._elapsed

    def __enter__(self) -> "Stopwatch":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()


def percentile(sorted_samples: Sequence[float], fraction: float) -> float:
    """Linear-interpolation percentile of an already-sorted sample list.

    ``fraction`` is in [0, 1]; e.g. 0.99 for p99.
    """
    if not sorted_samples:
        raise ValueError("cannot take a percentile of an empty sample")
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"fraction must be in [0, 1], got {fraction}")
    if len(sorted_samples) == 1:
        return float(sorted_samples[0])
    position = fraction * (len(sorted_samples) - 1)
    lower = math.floor(position)
    upper = math.ceil(position)
    if lower == upper:
        return float(sorted_samples[lower])
    weight = position - lower
    return float(sorted_samples[lower] * (1 - weight) + sorted_samples[upper] * weight)


def mean(samples: Sequence[float]) -> float:
    """Arithmetic mean; raises on empty input rather than returning NaN."""
    if not samples:
        raise ValueError("cannot take the mean of an empty sample")
    return sum(samples) / len(samples)
