"""Warm process worker pools: task streams instead of task payloads.

The historical process backend shipped every task as a self-contained
pickled payload — prescription, metric suite, engine configuration —
and rebuilt a runner (plus regenerated the data set) inside the worker
for *every task*.  Fan-out lost to a plain loop: the pool spawned per
batch, the payloads carried kilobytes per task, and N workers generated
the same deterministic data set N times.

This module keeps the pool — and everything expensive in it — **warm**:

* Each worker runs :func:`_initialize_worker` once, building a serial
  :class:`~repro.execution.runner.TestRunner`, resolving the metric
  suite, installing the engine-configuration table, pre-building the
  configured engines (priming lazy imports), and adopting any dataset
  handles known at pool creation into its local
  :class:`~repro.datagen.cache.DatasetCache`.
* Tasks then arrive as :class:`TaskDescriptor` objects — a prescription
  *name* when the worker can resolve it, a dataset *handle* instead of
  records, and a handful of scalars.  Payload size is observable: when
  tracing is on, each task span carries ``payload_bytes``.
* Data sets ship through :mod:`repro.datagen.handoff`: serialized once
  per pool into shared memory (or referenced as an existing spill
  file), re-streamed in place by each worker — or not shipped at all
  (a ``fingerprint`` handle), in which case the worker regenerates the
  identical records deterministically and caches them for every later
  task the pool sends it.
* The pool itself outlives ``run_many``: :class:`WorkerPool` is cached
  on the runner and reused batch after batch (``pool_batch`` on each
  task span counts the reuse), invalidated only when the options,
  suite, or configurations it was initialized with change.

Batches are submitted with a computed :func:`compute_chunksize`, so a
sweep of many small tasks costs a few pipe round-trips, not one per
task.
"""

from __future__ import annotations

import os
import time
import weakref
from collections.abc import Iterable
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any

from repro.core.errors import ExecutionError
from repro.datagen.cache import DatasetCache
from repro.datagen.handoff import (
    DatasetHandle,
    ExportedDataset,
    export_dataset,
    fingerprint_handle,
)
from repro.execution.parallel import compute_chunksize

__all__ = [
    "TaskDescriptor",
    "WorkerInit",
    "WorkerPool",
    "WorkerPoolError",
    "annotate_task_trace",
    "compute_chunksize",
    "shipped_prescription",
]


class WorkerPoolError(ExecutionError):
    """The warm pool cannot be built (e.g. unpicklable initializer state).

    Callers fall back to the cold per-task-payload path, which degrades
    task by task instead of refusing the whole batch.
    """


# ---------------------------------------------------------------------------
# What crosses the boundary
# ---------------------------------------------------------------------------


@dataclass
class WorkerInit:
    """Everything a worker needs exactly once, pickled at pool spawn.

    ``options`` holds the scalar :class:`RunnerOptions` kwargs for the
    worker's serial runner (repeats, warmups, format checking, task
    timeout); retry/on-error policy travels per task instead, so
    per-call overrides never force a pool rebuild.
    """

    options: dict[str, Any] = field(default_factory=dict)
    #: The runner's metric suite (None → the worker builds the standard
    #: suite; unpicklable suites degrade the same way the cold path does).
    suite: Any = None
    #: The runner's engine-configuration table, installed verbatim.
    configurations: dict[str, Any] = field(default_factory=dict)
    #: Engines to build once during initialization — warms the lazy
    #: imports and class caches the first real task would otherwise pay.
    prewarm_engines: tuple[str, ...] = ()


@dataclass
class TaskDescriptor:
    """One task on the warm path: names, scalars, and a dataset handle.

    Deliberately tiny — the worker already holds the runner, suite, and
    configuration table, and the records travel (at most once) through
    shared memory, so this is what a task actually *is*: which
    prescription, which engine, which knobs.
    """

    prescription: Any  # str (worker-resolvable name) or Prescription
    engine_name: str
    volume_override: int | None = None
    overrides: dict[str, Any] = field(default_factory=dict)
    #: Only set for task-specific configurations (configuration sweeps);
    #: None means the worker's installed table decides.
    configuration: Any = None
    data_partitions: int | None = None
    chunk_size: int | None = None
    #: How the worker obtains the data set (see :mod:`repro.datagen.handoff`);
    #: None when the task streams (``chunk_size``) or the key is unknowable.
    handle: DatasetHandle | None = None
    on_error: str = "abort"
    #: The retry policy by value when picklable (preserves custom
    #: ``retryable`` filters); else the worker rebuilds from the scalars.
    retry_policy: Any = None
    retry_scalars: tuple[int, float, float, int] | None = None
    task_index: int = 0
    submitted_wall: float | None = None
    trace: bool = False
    #: Ordinal of the ``run_many`` batch this pool is serving (0-based);
    #: values above zero on a task span are the pool-reuse evidence.
    pool_batch: int = 0
    #: Pickled size of this descriptor, recorded by the parent when
    #: tracing so span trees surface what actually crossed the pipe.
    payload_bytes: int | None = None


# ---------------------------------------------------------------------------
# Worker side
# ---------------------------------------------------------------------------

_CONTEXT: "WorkerContext | None" = None


def _initialize_worker(
    init: WorkerInit, handles: tuple[DatasetHandle, ...] = ()
) -> None:
    """Pool initializer: build the worker's context exactly once."""
    global _CONTEXT
    import repro  # noqa: F401 — fills the registries in the worker

    _CONTEXT = WorkerContext(init, handles)


def _run_descriptor(descriptor: TaskDescriptor) -> Any:
    if _CONTEXT is None:  # pragma: no cover - initializer always ran
        raise ExecutionError("worker received a task before initialization")
    return _CONTEXT.run(descriptor)


class WorkerContext:
    """Per-worker state: a serial runner that persists across tasks."""

    def __init__(
        self, init: WorkerInit, handles: Iterable[DatasetHandle] = ()
    ) -> None:
        from repro.execution.runner import RunnerOptions, TestRunner

        self.runner = TestRunner(
            options=RunnerOptions(executor="serial", **init.options),
            suite=init.suite,
        )
        self.runner.configurations = dict(init.configurations)
        for engine_name in init.prewarm_engines:
            try:
                self.runner._build_engine(engine_name)
            except Exception:  # noqa: BLE001 - prewarm is best-effort
                pass
        for handle in handles:
            self.adopt(handle)

    # ------------------------------------------------------------------

    def adopt(self, handle: DatasetHandle | None) -> None:
        """Make a shipped data set available as a local cache hit.

        Byte-carrying handles are re-streamed (shared memory read in
        place, spill files from disk) and stored under their cache key;
        ``fingerprint`` handles adopt nothing — the first task to need
        the data regenerates it into the cache deterministically.
        """
        cache = self.runner.test_generator.dataset_cache
        if (
            handle is None
            or handle.kind == "fingerprint"
            or cache is None
            or handle.key in cache
        ):
            return
        try:
            cache.put(handle.key, handle.open().materialize())
        except Exception:  # noqa: BLE001 - degrade to regeneration
            # A vanished spill file or unmapped segment is not fatal:
            # the task falls back to deterministic regeneration.
            pass

    def run(self, descriptor: TaskDescriptor) -> Any:
        """Execute one descriptor on the persistent runner."""
        from repro.core.results import RunResult, TaskFailure  # noqa: F401
        from repro.execution.retry import RetryPolicy
        from repro.execution.runner import TRACE_EXTRA_KEY, RunTask

        self.adopt(descriptor.handle)
        runner = self.runner
        task = RunTask(
            prescription=descriptor.prescription,
            engine_name=descriptor.engine_name,
            volume_override=descriptor.volume_override,
            overrides=dict(descriptor.overrides),
            configuration=descriptor.configuration,
            data_partitions=descriptor.data_partitions,
            chunk_size=descriptor.chunk_size,
        )
        policy = descriptor.retry_policy
        if policy is None:
            retries, backoff, jitter, seed = descriptor.retry_scalars or (
                0, 0.0, 0.1, 0,
            )
            policy = RetryPolicy(
                max_attempts=retries + 1,
                backoff_seconds=backoff,
                jitter=jitter,
                seed=seed,
            )
        cache = runner.test_generator.dataset_cache
        cache_before = cache.stats() if cache is not None else None
        if descriptor.trace:
            queue_wait = (
                max(0.0, time.time() - descriptor.submitted_wall)
                if descriptor.submitted_wall is not None
                else 0.0
            )
            outcome = runner._run_task_traced(
                task,
                descriptor.task_index,
                policy,
                descriptor.on_error,
                queue_wait=queue_wait,
            )
            annotate_task_trace(
                outcome.extra.get(TRACE_EXTRA_KEY),
                payload_bytes=descriptor.payload_bytes,
                pool_batch=descriptor.pool_batch,
            )
        else:
            outcome = runner._run_task_guarded(
                task, policy, descriptor.on_error
            )
        if cache_before is not None:
            outcome.extra["worker_cache"] = (
                cache.stats().since(cache_before).as_dict()
            )
        outcome.extra["worker"] = {
            "pid": os.getpid(),
            "pool_batch": descriptor.pool_batch,
        }
        return outcome


def annotate_task_trace(
    trees: list[dict[str, Any]] | None,
    payload_bytes: int | None = None,
    pool_batch: int | None = None,
) -> None:
    """Stamp payload/pool facts onto serialized task span trees.

    ``payload_bytes`` lands both as an attribute (readable in the tree)
    and as a ``task.payload_bytes`` counter (aggregated by
    ``summarize_spans``), so trace summaries keep the shipped-bytes
    total visible — the overhead this layer exists to remove.
    """
    for root in trees or []:
        if payload_bytes is not None:
            root.setdefault("attrs", {})["payload_bytes"] = payload_bytes
            counters = root.setdefault("counters", {})
            counters["task.payload_bytes"] = (
                counters.get("task.payload_bytes", 0) + payload_bytes
            )
        if pool_batch is not None:
            root.setdefault("attrs", {})["pool_batch"] = pool_batch


# ---------------------------------------------------------------------------
# Parent side
# ---------------------------------------------------------------------------


def _release_pool_state(state: dict[str, Any]) -> None:
    """Finalizer shared by explicit shutdown and garbage collection."""
    pool = state.get("pool")
    if pool is not None:
        pool.shutdown(wait=True)
        state["pool"] = None
    exports = state.get("exports", {})
    for export in exports.values():
        export.close()
    exports.clear()


class WorkerPool:
    """A reusable warm process pool plus its exported data sets.

    Owned by a :class:`~repro.execution.runner.TestRunner` and kept
    alive across ``run_many`` / sweep calls; the underlying
    :class:`ProcessPoolExecutor` is created lazily on the first batch so
    dataset handles exported for that batch ride along in the worker
    initializer.  Shutdown (explicit or via garbage collection) releases
    the workers and every shared-memory segment the pool exported.
    """

    def __init__(self, init: WorkerInit, max_workers: int) -> None:
        self.init = init
        self.max_workers = max_workers
        #: ``run_many`` batches served — the pool-reuse counter.
        self.batches = 0
        self._state: dict[str, Any] = {"pool": None, "exports": {}}
        self._finalizer = weakref.finalize(
            self, _release_pool_state, self._state
        )

    # ------------------------------------------------------------------

    @property
    def exports(self) -> dict[str, ExportedDataset]:
        return self._state["exports"]

    def handle_for(self, key: tuple, source: Any) -> DatasetHandle:
        """The (memoized) handle shipping ``source`` to this pool's workers.

        The first request serializes the data set into shared bytes;
        every later batch reuses the same export, so a data set crosses
        the boundary at most once per pool lifetime.
        """
        fingerprint = DatasetCache.fingerprint(key)
        export = self.exports.get(fingerprint)
        if export is None:
            export = export_dataset(key, fingerprint, source)
            self.exports[fingerprint] = export
        return export.handle

    @staticmethod
    def fingerprint_handle_for(key: tuple) -> DatasetHandle:
        """A byte-free handle: workers regenerate deterministically."""
        return fingerprint_handle(key, DatasetCache.fingerprint(key))

    # ------------------------------------------------------------------

    def run_batch(self, descriptors: list[TaskDescriptor]) -> list[Any]:
        """Run one batch on the warm workers, results in submission order."""
        pool = self._ensure_pool()
        self.batches += 1
        chunksize = compute_chunksize(len(descriptors), self.max_workers)
        return list(
            pool.map(_run_descriptor, descriptors, chunksize=chunksize)
        )

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._state["pool"] is None:
            handles = tuple(
                export.handle for export in self.exports.values()
            )
            self._state["pool"] = ProcessPoolExecutor(
                max_workers=self.max_workers,
                initializer=_initialize_worker,
                initargs=(self.init, handles),
            )
        return self._state["pool"]

    def shutdown(self) -> None:
        """Release workers and exported segments (idempotent)."""
        self._finalizer()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"WorkerPool(max_workers={self.max_workers}, "
            f"batches={self.batches}, exports={len(self.exports)})"
        )


# ---------------------------------------------------------------------------
# Prescription shipping
# ---------------------------------------------------------------------------

_BUILTIN_REPOSITORY = None
_BUILTIN_PICKLES: dict[str, bytes | None] = {}


def _builtin_pickle(name: str) -> bytes | None:
    """The pickled built-in prescription for ``name`` (memoized), or None.

    None means the built-in repository has no such name, or its entry is
    unpicklable (iterative stopping-condition callables).
    """
    global _BUILTIN_REPOSITORY
    if name in _BUILTIN_PICKLES:
        return _BUILTIN_PICKLES[name]
    if _BUILTIN_REPOSITORY is None:
        from repro.core.prescription import builtin_repository

        _BUILTIN_REPOSITORY = builtin_repository()
    payload: bytes | None = None
    if name in _BUILTIN_REPOSITORY:
        import pickle

        try:
            payload = pickle.dumps(_BUILTIN_REPOSITORY.get(name))
        except Exception:  # noqa: BLE001 - unpicklable builtin
            payload = None
    _BUILTIN_PICKLES[name] = payload
    return payload


def shipped_prescription(resolved: Any) -> Any:
    """Name when the worker resolves it identically, else by value.

    A prescription that pickles byte-for-byte like the built-in
    repository's entry of the same name ships as its name — the worker's
    own repository reproduces it, so the descriptor stays bytes-small.
    Anything else ships by value when picklable; unpicklable
    prescriptions (iterative stopping conditions) fall back to the name,
    exactly like the cold path.
    """
    import pickle

    try:
        payload = pickle.dumps(resolved)
    except Exception:  # noqa: BLE001 - mirror the cold path's fallback
        return resolved.name
    if payload == _builtin_pickle(resolved.name):
        return resolved.name
    return resolved
