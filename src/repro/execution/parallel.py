"""Pluggable parallel execution backends (Execution Layer, Figure 2).

The paper's execution layer fans prescribed tests out across systems and
scale points, and its data-generation process (Figure 3) explicitly calls
for parallelisable generation.  This module supplies the one fan-out
substrate the whole stack shares: a :class:`ParallelExecutor` with three
interchangeable backends —

* ``serial`` — plain in-order iteration (the reference semantics),
* ``thread`` — a shared :class:`~concurrent.futures.ThreadPoolExecutor`,
* ``process`` — a :class:`~concurrent.futures.ProcessPoolExecutor` for
  CPU-bound fan-out (tasks and results must be picklable).

Every backend returns results **in submission order**, so callers merge
deterministically regardless of which task finishes first; a run fanned
out over any backend is metric-for-metric identical to the serial path
(modulo wall-clock timings, which are measurements, not answers).
"""

from __future__ import annotations

import os
from abc import ABC, abstractmethod
from collections.abc import Callable, Iterable
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Any, TypeVar

from repro.core.errors import ExecutionError

T = TypeVar("T")
R = TypeVar("R")

#: The backend names accepted throughout the stack (RunnerOptions,
#: BenchmarkSpec, the CLI ``--executor`` flag, engine configurations).
EXECUTOR_BACKENDS = ("serial", "thread", "process")

#: Environment variable overriding the default backend everywhere a
#: backend is not chosen explicitly.  CI uses it to run the whole test
#: suite's default-configured runners on the thread or process backend,
#: so backend-specific regressions cannot hide behind the serial default.
EXECUTOR_ENV_VAR = "REPRO_EXECUTOR"


def default_backend() -> str:
    """The backend used when none is configured (env-overridable)."""
    return os.environ.get(EXECUTOR_ENV_VAR, "serial")


def default_max_workers() -> int:
    """Worker count when none is configured: one per CPU, at least one."""
    return max(1, os.cpu_count() or 1)


#: Target task submissions per worker per batch for chunked submission:
#: small enough to keep workers load-balanced, large enough to amortize
#: the per-submission pipe round-trip.
SUBMISSIONS_PER_WORKER = 4


def compute_chunksize(
    num_items: int, max_workers: int, per_worker: int = SUBMISSIONS_PER_WORKER
) -> int:
    """Tasks per pool submission for a batch of ``num_items``.

    ``chunksize=1`` (the stdlib default) costs one pipe round-trip per
    task; for sweeps of many cheap tasks that IPC dominates the runtime.
    Aim for ``per_worker`` submissions per worker so a batch still
    load-balances across the pool while round-trips stay bounded.
    """
    if num_items <= 0:
        return 1
    slots = max(1, max_workers) * per_worker
    return max(1, -(-num_items // slots))


class ParallelExecutor(ABC):
    """Maps a function over items, returning results in submission order.

    Implementations may run tasks concurrently, but the result list is
    always ordered like the input, so downstream merging (sweep points,
    per-engine results, map/reduce task outputs) stays deterministic no
    matter which task finishes first.  Exceptions raised by a task
    propagate to the caller, as they would in a serial loop.
    """

    name: str = "executor"

    @abstractmethod
    def map(self, fn: Callable[[T], R], items: Iterable[T]) -> list[R]:
        """Apply ``fn`` to every item; results in submission order."""

    def shutdown(self) -> None:
        """Release pooled workers (no-op for pool-less backends)."""

    def __enter__(self) -> "ParallelExecutor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.shutdown()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class SerialExecutor(ParallelExecutor):
    """The reference backend: a plain in-order loop, no concurrency."""

    name = "serial"

    def map(self, fn: Callable[[T], R], items: Iterable[T]) -> list[R]:
        return [fn(item) for item in items]


class _PoolBackedExecutor(ParallelExecutor):
    """Shared plumbing for the pool-backed backends (lazy pool creation)."""

    def __init__(self, max_workers: int | None = None) -> None:
        if max_workers is not None and max_workers <= 0:
            raise ExecutionError(
                f"max_workers must be positive, got {max_workers}"
            )
        self.max_workers = max_workers or default_max_workers()
        self._pool: Any = None

    def _make_pool(self) -> Any:
        raise NotImplementedError

    def map(self, fn: Callable[[T], R], items: Iterable[T]) -> list[R]:
        items = list(items)
        if len(items) <= 1:
            # One task gains nothing from a pool (and, for the process
            # backend, would pay pickling for no concurrency).
            return [fn(item) for item in items]
        if self._pool is None:
            self._pool = self._make_pool()
        return list(
            self._pool.map(fn, items, chunksize=self._chunksize(len(items)))
        )

    def _chunksize(self, num_items: int) -> int:
        """Tasks per pool submission; backends override to batch."""
        return 1

    def shutdown(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(max_workers={self.max_workers})"


class ThreadExecutor(_PoolBackedExecutor):
    """Thread-pool backend: shared memory, no pickling requirements.

    Best when tasks release the GIL (NumPy-heavy generation) or when the
    win comes from overlapping independent phases; always safe because
    the framework merges task-local state in submission order.
    """

    name = "thread"

    def _make_pool(self) -> ThreadPoolExecutor:
        return ThreadPoolExecutor(
            max_workers=self.max_workers, thread_name_prefix="repro-exec"
        )


class ProcessExecutor(_PoolBackedExecutor):
    """Process-pool backend for CPU-bound fan-out.

    Tasks and results cross a process boundary, so both must be
    picklable; the runner ships self-contained task payloads (see
    :mod:`repro.execution.runner`) rather than closures.
    """

    name = "process"

    def _make_pool(self) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(max_workers=self.max_workers)

    def _chunksize(self, num_items: int) -> int:
        # One pipe round-trip per task would dominate cheap tasks;
        # batch submissions so IPC amortizes across the batch.
        return compute_chunksize(num_items, self.max_workers)


_BACKEND_CLASSES: dict[str, type[ParallelExecutor]] = {
    "serial": SerialExecutor,
    "thread": ThreadExecutor,
    "process": ProcessExecutor,
}


def resolve_executor(
    spec: "ParallelExecutor | str | None", max_workers: int | None = None
) -> ParallelExecutor:
    """Turn a backend name (or an existing executor) into an executor.

    ``None`` resolves to the serial backend, keeping callers that never
    asked for parallelism on the exact reference semantics.

    An already-constructed executor is returned as-is — but passing
    ``max_workers`` alongside one is a contradiction (the pool size was
    fixed at construction), so a conflicting count raises instead of
    being silently ignored.
    """
    if spec is None:
        return SerialExecutor()
    if isinstance(spec, ParallelExecutor):
        configured = getattr(spec, "max_workers", None)
        if (
            max_workers is not None
            and configured is not None
            and configured != max_workers
        ):
            raise ExecutionError(
                f"max_workers={max_workers} conflicts with the provided "
                f"{type(spec).__name__} (max_workers={configured}); pass a "
                "backend name to build a pool of that size, or construct "
                "the executor with the desired worker count"
            )
        return spec
    backend = _BACKEND_CLASSES.get(spec)
    if backend is None:
        raise ExecutionError(
            f"unknown executor backend {spec!r}; "
            f"available: {', '.join(EXECUTOR_BACKENDS)}"
        )
    if backend is SerialExecutor:
        return SerialExecutor()
    return backend(max_workers)
