"""The Execution Layer: configuration, running, sweeping, reporting."""

from repro.execution.config import (
    SystemConfiguration,
    default_configurations,
    prepare_input,
)
from repro.execution.harness import BenchmarkHarness, SweepPoint, SweepReport
from repro.execution.parallel import (
    EXECUTOR_BACKENDS,
    ParallelExecutor,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    compute_chunksize,
    resolve_executor,
)
from repro.execution.report import (
    RESULT_STYLES,
    ascii_table,
    markdown_table,
    render_results,
    render_trace,
    results_json,
    results_table,
)
from repro.execution.retry import (
    ON_ERROR_POLICIES,
    RetryPolicy,
    TaskTimeoutError,
    call_with_timeout,
)
from repro.execution.runner import (
    RunnerOptions,
    RunOutcome,
    RunTask,
    TestRunner,
)
from repro.execution.workers import (
    TaskDescriptor,
    WorkerInit,
    WorkerPool,
    WorkerPoolError,
)

__all__ = [
    "BenchmarkHarness",
    "EXECUTOR_BACKENDS",
    "ON_ERROR_POLICIES",
    "ParallelExecutor",
    "ProcessExecutor",
    "RESULT_STYLES",
    "RetryPolicy",
    "RunOutcome",
    "RunTask",
    "RunnerOptions",
    "SerialExecutor",
    "SweepPoint",
    "SweepReport",
    "SystemConfiguration",
    "TaskDescriptor",
    "TaskTimeoutError",
    "TestRunner",
    "ThreadExecutor",
    "WorkerInit",
    "WorkerPool",
    "WorkerPoolError",
    "ascii_table",
    "call_with_timeout",
    "compute_chunksize",
    "default_configurations",
    "markdown_table",
    "prepare_input",
    "render_results",
    "render_trace",
    "resolve_executor",
    "results_json",
    "results_table",
]
