"""The Execution Layer: configuration, running, sweeping, reporting."""

from repro.execution.config import (
    SystemConfiguration,
    default_configurations,
    prepare_input,
)
from repro.execution.harness import BenchmarkHarness, SweepPoint, SweepReport
from repro.execution.report import (
    ascii_table,
    markdown_table,
    results_json,
    results_table,
)
from repro.execution.runner import RunnerOptions, TestRunner

__all__ = [
    "BenchmarkHarness",
    "RunnerOptions",
    "SweepPoint",
    "SweepReport",
    "SystemConfiguration",
    "TestRunner",
    "ascii_table",
    "default_configurations",
    "markdown_table",
    "prepare_input",
    "results_json",
    "results_table",
]
