"""The test runner (Execution step of Figure 1).

Runs prescribed tests with warmup and repeats, computes metric statistics
through the standard metric suite, and returns
:class:`~repro.core.results.RunResult` objects ready for analysis.

Engines are rebuilt per repeat so repeats stay independent — a DBMS that
cached tables from the previous repeat, or a KV store already containing
inserted keys, would otherwise contaminate the statistics.

Independent runs — the engines of a cross-system comparison, the points
of a sweep — fan out over the pluggable executor the
:class:`~repro.execution.runner.RunnerOptions` select (``serial`` /
``thread`` / ``process``; see :mod:`repro.execution.parallel`).  Results
are merged in submission order, so every backend returns the same
results in the same order as the serial path.

Fan-out is fault tolerant.  Every task attempt runs under the options'
:class:`~repro.execution.retry.RetryPolicy` (bounded attempts, seeded
exponential backoff) and optional per-task timeout, uniformly on all
three backends.  The ``on_error`` policy decides what a task that
exhausts its attempts does to the batch: ``"abort"`` (the default)
re-raises — the historical fail-fast semantics — while ``"continue"``
captures a :class:`~repro.core.results.TaskFailure` in the task's
submission-order slot and lets the rest of the batch complete.
"""

from __future__ import annotations

import hashlib
import pickle
import time
from collections import Counter
from dataclasses import dataclass, field
from typing import Any

from repro.core.errors import ExecutionError
from repro.core.metrics import MetricSuite
from repro.core.prescription import Prescription
from repro.core.results import RunResult, TaskFailure
from repro.core.test_generator import PrescribedTest, TestGenerator
from repro.datagen.cache import DatasetCache
from repro.datagen.handoff import DatasetHandle
from repro.engines.faults import fault_attempt
from repro.execution.config import (
    SystemConfiguration,
    default_configurations,
    prepare_input,
)
from repro.execution.parallel import (
    EXECUTOR_BACKENDS,
    ParallelExecutor,
    default_backend,
    default_max_workers,
    resolve_executor,
)
from repro.execution.workers import (
    TaskDescriptor,
    WorkerInit,
    WorkerPool,
    WorkerPoolError,
    annotate_task_trace,
    shipped_prescription,
)
from repro.execution.retry import (
    ON_ERROR_POLICIES,
    RetryPolicy,
    call_with_timeout,
)
from repro.observability import (
    NULL_TRACER,
    Span,
    Tracer,
    current_tracer,
    summarize_spans,
)
from repro.workloads.base import WorkloadResult

#: What the fan-out entry points return per task.
RunOutcome = RunResult | TaskFailure

#: The ``RunResult.extra`` key a worker's serialized span trees travel
#: under; popped (and grafted into the parent tracer) by ``run_many``.
TRACE_EXTRA_KEY = "trace"
#: The ``RunResult.extra`` key the per-task span summary is kept under
#: (survives into JSON reports).
TRACE_SUMMARY_KEY = "trace_summary"


@dataclass
class RunnerOptions:
    """Execution policy for one runner."""

    repeats: int = 1
    warmup_runs: int = 0
    #: Validate format convertibility before running (Section 2.3).
    check_format: bool = True
    #: Fan-out backend for independent runs: "serial", "thread",
    #: "process".  Defaults to "serial" unless the ``REPRO_EXECUTOR``
    #: environment variable names another backend.
    executor: str = field(default_factory=default_backend)
    #: Worker count for the pooled backends; None means one per CPU.
    max_workers: int | None = None
    #: Process backend only: keep a warm worker pool alive across
    #: ``run_many`` calls (workers initialize once — runner, suite,
    #: engines, dataset cache — then stream lightweight descriptors).
    #: False restores the cold per-task-payload path.
    warm_pool: bool = True
    #: What a task that exhausts its attempts does to the batch:
    #: "abort" re-raises (fail-fast, the historical semantics) while
    #: "continue" captures a TaskFailure and completes the batch.
    on_error: str = "abort"
    #: Extra attempts after the first (0 = never retry).
    retries: int = 0
    #: Base backoff before the second attempt; grows exponentially.
    retry_backoff: float = 0.0
    #: Seeded jitter fraction applied to each backoff delay.
    retry_jitter: float = 0.1
    #: Seed of the deterministic jitter stream.
    retry_seed: int = 0
    #: Wall-clock budget per task attempt, in seconds (None = unbounded).
    task_timeout: float | None = None

    def __post_init__(self) -> None:
        if self.repeats <= 0:
            raise ExecutionError(f"repeats must be positive, got {self.repeats}")
        if self.warmup_runs < 0:
            raise ExecutionError(
                f"warmup_runs must be non-negative, got {self.warmup_runs}"
            )
        if self.executor not in EXECUTOR_BACKENDS:
            raise ExecutionError(
                f"unknown executor backend {self.executor!r}; "
                f"available: {', '.join(EXECUTOR_BACKENDS)}"
            )
        if self.max_workers is not None and self.max_workers <= 0:
            raise ExecutionError(
                f"max_workers must be positive, got {self.max_workers}"
            )
        if self.on_error not in ON_ERROR_POLICIES:
            raise ExecutionError(
                f"unknown on_error policy {self.on_error!r}; "
                f"available: {', '.join(ON_ERROR_POLICIES)}"
            )
        if self.retries < 0:
            raise ExecutionError(
                f"retries must be non-negative, got {self.retries}"
            )
        if self.retry_backoff < 0:
            raise ExecutionError(
                f"retry_backoff must be non-negative, got {self.retry_backoff}"
            )
        if self.task_timeout is not None and self.task_timeout <= 0:
            raise ExecutionError(
                f"task_timeout must be positive, got {self.task_timeout}"
            )

    def retry_policy(
        self,
        retries: int | None = None,
        retry_backoff: float | None = None,
    ) -> RetryPolicy:
        """The options' retry policy, with optional per-call overrides."""
        effective_retries = self.retries if retries is None else retries
        if effective_retries < 0:
            raise ExecutionError(
                f"retries must be non-negative, got {effective_retries}"
            )
        return RetryPolicy(
            max_attempts=effective_retries + 1,
            backoff_seconds=(
                self.retry_backoff if retry_backoff is None else retry_backoff
            ),
            jitter=self.retry_jitter,
            seed=self.retry_seed,
        )


@dataclass
class RunTask:
    """One independent run request, ready to be fanned out.

    A plain-data description (picklable as long as the prescription is)
    of everything :meth:`TestRunner.run` needs, so a batch of tasks can
    be dispatched to any executor backend and merged in submission
    order.
    """

    prescription: Prescription | str
    engine_name: str
    volume_override: int | None = None
    overrides: dict[str, Any] = field(default_factory=dict)
    #: Explicit engine configuration for this task only; None falls back
    #: to the runner's configuration table.  Passing it per-task keeps
    #: configuration sweeps free of shared-state mutation.
    configuration: SystemConfiguration | None = None
    #: Parallel data-generator partitions (velocity override).
    data_partitions: int | None = None
    #: Record-batch size: when set, the data set is bound as a lazily
    #: streaming source (bounded memory) instead of a materialized list.
    chunk_size: int | None = None
    #: Tuning-profile fingerprint payload (see
    #: :meth:`repro.tuning.profiles.TuningProfile.fingerprint`) for the
    #: run store: None for the normal profile (historical series stay
    #: intact), a dict for tuned profiles (forks the series).  Purely a
    #: recording annotation — the knobs themselves travel in
    #: ``configuration``.
    tuning: Any = None


class TestRunner:
    """Executes prescribed tests and aggregates their metrics."""

    __test__ = False  # "Test" prefix is domain vocabulary, not a pytest class

    def __init__(
        self,
        test_generator: TestGenerator | None = None,
        configurations: dict[str, SystemConfiguration] | None = None,
        options: RunnerOptions | None = None,
        suite: MetricSuite | None = None,
        store: Any = None,
    ) -> None:
        self.test_generator = test_generator or TestGenerator()
        self.configurations = configurations or default_configurations()
        self.options = options or RunnerOptions()
        self.suite = suite or MetricSuite.standard()
        #: Optional :class:`~repro.analysis.store.RunStore`: when set,
        #: every ``run_many`` batch auto-records its outcomes (the
        #: five-step process records at the spec level instead — see
        #: ``BenchmarkSpec.should_record`` — so it leaves this unset).
        self.store = store
        self._executor: ParallelExecutor | None = None
        self._executor_key: tuple[str, int | None] | None = None
        self._worker_pool: WorkerPool | None = None
        self._worker_pool_key: tuple[str, int | None] | None = None

    # ------------------------------------------------------------------

    @property
    def executor(self) -> ParallelExecutor:
        """The fan-out backend the options select (created lazily).

        Mutating ``options.executor`` / ``options.max_workers`` after
        the first access is honored: the cached executor is shut down
        and re-resolved whenever the options no longer match it.
        """
        wanted = (self.options.executor, self.options.max_workers)
        if self._executor is not None and self._executor_key != wanted:
            self._executor.shutdown()
            self._executor = None
        if self._executor is None:
            self._executor = resolve_executor(*wanted)
            self._executor_key = wanted
        return self._executor

    def close(self) -> None:
        """Release pooled executor workers and the warm worker pool."""
        if self._executor is not None:
            self._executor.shutdown()
            self._executor = None
        if self._worker_pool is not None:
            self._worker_pool.shutdown()
            self._worker_pool = None
            self._worker_pool_key = None

    def __enter__(self) -> "TestRunner":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------

    def _build_engine(
        self, engine_name: str, configuration: SystemConfiguration | None = None
    ):
        configuration = (
            configuration
            if configuration is not None
            else self.configurations.get(engine_name)
        )
        if configuration is not None:
            return configuration.build()
        return self.test_generator.engines.create(engine_name)

    def run_once(self, test: PrescribedTest, **overrides: Any) -> WorkloadResult:
        """One execution of an already-bound prescribed test."""
        if self.options.check_format:
            prepare_input(test.dataset, test.engine)
        return test.run(**overrides)

    def run(
        self,
        prescription: Prescription | str,
        engine_name: str,
        volume_override: int | None = None,
        *,
        configuration: SystemConfiguration | None = None,
        data_partitions: int | None = None,
        chunk_size: int | None = None,
        **overrides: Any,
    ) -> RunResult:
        """Generate and run one prescribed test with repeats.

        The data set is generated once (same data every repeat — and
        served from the dataset cache when an identical deterministic
        request already ran); the engine is rebuilt per repeat for
        independence.  With ``chunk_size`` set, the test binds a lazily
        streaming source instead — determinism makes every repeat see
        the same records either way.
        """
        tracer = current_tracer()
        prescription_name = (
            prescription if isinstance(prescription, str) else prescription.name
        )
        with tracer.span(
            "run", prescription=prescription_name, engine=engine_name
        ):
            with tracer.span("test-generation"):
                test = self.test_generator.generate(
                    prescription,
                    engine_name,
                    volume_override,
                    data_partitions,
                    chunk_size,
                )
            for index in range(self.options.warmup_runs):
                with tracer.span("warmup", index=index):
                    fresh = self._rebind(test, engine_name, configuration)
                    self.run_once(fresh, **overrides)
            workload_results = []
            for index in range(self.options.repeats):
                with tracer.span("repeat", index=index):
                    fresh = self._rebind(test, engine_name, configuration)
                    workload_results.append(self.run_once(fresh, **overrides))
            return RunResult.from_workload_results(
                test.name, workload_results, self.suite
            )

    def _rebind(
        self,
        test: PrescribedTest,
        engine_name: str,
        configuration: SystemConfiguration | None = None,
    ) -> PrescribedTest:
        """The same prescription and data on a fresh engine instance."""
        return PrescribedTest(
            prescription=test.prescription,
            engine=self._build_engine(engine_name, configuration),
            workload=test.workload,
            dataset=test.dataset,
        )

    # ------------------------------------------------------------------
    # Fan-out
    # ------------------------------------------------------------------

    def _run_task(self, task: RunTask) -> RunResult:
        return self.run(
            task.prescription,
            task.engine_name,
            task.volume_override,
            configuration=task.configuration,
            data_partitions=task.data_partitions,
            chunk_size=task.chunk_size,
            **task.overrides,
        )

    @staticmethod
    def _task_identity(task: RunTask) -> tuple[str, str]:
        """(prescription name, workload name) for keys and failure records."""
        if isinstance(task.prescription, str):
            return task.prescription, task.prescription
        return task.prescription.name, task.prescription.workload

    def _attempt_loop(
        self,
        task: RunTask,
        policy: RetryPolicy,
        on_error: str,
        task_span: Span | None = None,
    ) -> RunOutcome:
        """Run one task under the retry policy; capture or re-raise.

        Each attempt executes inside a :func:`fault_attempt` scope (so
        injected faults key their seeded decisions on the task and the
        attempt index — identically on every backend) and, when a
        per-task timeout is configured, inside a wall-clock bound.  The
        loop retries failures the policy deems retryable, sleeping its
        deterministic backoff schedule; once attempts are exhausted the
        ``on_error`` policy decides between re-raising (``abort``) and
        returning a :class:`TaskFailure` (``continue``).
        """
        prescription_name, workload_name = self._task_identity(task)
        task_key = f"{prescription_name}@{task.engine_name}"
        timeout = self.options.task_timeout
        tracer = current_tracer()
        error: BaseException | None = None
        attempts = 0
        for attempt in range(policy.max_attempts):
            attempts = attempt + 1
            try:

                def body(attempt: int = attempt) -> RunResult:
                    with fault_attempt(task_key, attempt):
                        return self._run_task(task)

                result = call_with_timeout(body, timeout)
            except Exception as caught:  # noqa: BLE001 — policy-filtered
                error = caught
                tracer.count("task.failed_attempts")
                if not policy.should_retry(caught, attempts):
                    break
                tracer.count("task.retries")
                delay = policy.delay(attempts, task_key)
                if delay > 0:
                    with tracer.span(
                        "backoff", attempt=attempts, seconds=delay
                    ):
                        time.sleep(delay)
                continue
            if policy.max_attempts > 1:
                result.extra["attempts"] = attempts
            if task_span:
                task_span.set(attempts=attempts, status="ok")
            return result
        if task_span:
            task_span.set(
                attempts=attempts,
                status="failed",
                error=type(error).__name__,
            )
        if on_error == "abort":
            raise error
        return TaskFailure.from_exception(
            test_name=task_key,
            workload=workload_name,
            engine=task.engine_name,
            error=error,
            attempts=attempts,
        )

    def _run_task_guarded(
        self, task: RunTask, policy: RetryPolicy, on_error: str
    ) -> RunOutcome:
        """The untraced per-task path (serial loop or thread worker)."""
        return self._attempt_loop(task, policy, on_error)

    def run_many(
        self,
        tasks: list[RunTask],
        *,
        on_error: str | None = None,
        retries: int | None = None,
        retry_backoff: float | None = None,
        retry_policy: RetryPolicy | None = None,
    ) -> list[RunOutcome]:
        """Run independent tasks on the configured executor backend.

        Results come back in submission order, so every backend is a
        drop-in replacement for the serial loop.  The thread backend
        shares this runner (and its dataset cache); the process backend
        streams lightweight descriptors to a warm worker pool that is
        kept alive across calls (see :mod:`repro.execution.workers`),
        shipping data sets as shared-memory/spill-file handles or cache
        fingerprints instead of pickled rows.  With
        ``options.warm_pool`` off — or when the pool cannot be built —
        it falls back to the cold path: each task a self-contained
        payload, a fresh serial runner per task in the worker.

        The keyword-only arguments override the options' failure policy
        for this call: ``on_error`` selects abort/continue semantics,
        ``retries``/``retry_backoff`` adjust the derived retry policy,
        and ``retry_policy`` replaces it outright.  Under
        ``on_error="continue"`` the returned list holds a
        :class:`TaskFailure` in the slot of every task that exhausted
        its attempts — on all three backends.

        When tracing is active, every task — on every backend — records
        its span tree into a task-local tracer and the parent grafts
        the finished trees here in submission order, each under a
        ``task`` span carrying queue-wait vs. execute timings plus the
        attempt count and final status.
        """
        tasks = list(tasks)
        on_error = on_error if on_error is not None else self.options.on_error
        if on_error not in ON_ERROR_POLICIES:
            raise ExecutionError(
                f"unknown on_error policy {on_error!r}; "
                f"available: {', '.join(ON_ERROR_POLICIES)}"
            )
        policy = retry_policy or self.options.retry_policy(
            retries, retry_backoff
        )
        tracer = current_tracer()
        if len(tasks) <= 1 or self.options.executor == "serial":
            if not tracer.enabled:
                # No early return: the store-recording epilogue below
                # must see the serial path's outcomes too.
                outcomes = [
                    self._run_task_guarded(task, policy, on_error)
                    for task in tasks
                ]
            else:
                submitted = time.perf_counter()
                outcomes = [
                    self._run_task_traced(
                        task, index, policy, on_error, submitted=submitted
                    )
                    for index, task in enumerate(tasks)
                ]
        elif self.options.executor == "process":
            outcomes = self._run_many_process(tasks, policy, on_error, tracer)
        else:
            submitted = time.perf_counter()
            if not tracer.enabled:
                outcomes = self.executor.map(
                    lambda task: self._run_task_guarded(task, policy, on_error),
                    tasks,
                )
            else:
                outcomes = self.executor.map(
                    lambda pair: self._run_task_traced(
                        pair[1], pair[0], policy, on_error, submitted=submitted
                    ),
                    list(enumerate(tasks)),
                )
        if tracer.enabled:
            self._graft_task_traces(tracer, outcomes)
        if self.store is not None:
            self._record_outcomes(tasks, outcomes)
        return outcomes

    def _record_outcomes(
        self, tasks: list[RunTask], outcomes: list[RunOutcome]
    ) -> None:
        """Persist a batch's outcomes into the attached run store.

        The fingerprint is rebuilt from each task's own request (plus
        the runner's repeat/executor options), so identical requests
        recorded through the runner and through the five-step process
        land in the same comparable series.
        """
        from repro.analysis.store import environment_fingerprint, spec_fingerprint

        environment = environment_fingerprint()
        for task, outcome in zip(tasks, outcomes):
            prescription_name, workload_name = self._task_identity(task)
            fingerprint = spec_fingerprint(
                prescription_name,
                task.engine_name,
                workload=outcome.workload or workload_name,
                volume=task.volume_override,
                repeats=self.options.repeats,
                params=task.overrides,
                chunk_size=task.chunk_size,
                executor=self.options.executor,
                data_partitions=task.data_partitions,
                # The executed layout as the workload dispatcher observed
                # it (row when the engine has no layout notion), so
                # columnar runs land in their own comparable series.
                layout=outcome.extra.get("layout", "row"),
                tuning=task.tuning,
            )
            self.store.record_outcome(
                outcome, fingerprint, environment=environment
            )

    def _run_task_traced(
        self,
        task: RunTask,
        index: int,
        policy: RetryPolicy,
        on_error: str,
        submitted: float | None = None,
        queue_wait: float | None = None,
    ) -> RunOutcome:
        """One task under a task-local tracer (any thread, same process).

        The local tracer keeps worker-thread spans out of the shared
        tracer's thread-local stacks; the finished tree travels back in
        the outcome payload exactly like a process worker's would, so
        the merge path is one code path for every backend.  In-process
        callers pass the ``perf_counter`` submit stamp; the process
        worker passes a precomputed wall-clock ``queue_wait`` instead.
        """
        local = Tracer()
        if queue_wait is None:
            queue_wait = (
                max(0.0, time.perf_counter() - submitted)
                if submitted is not None
                else 0.0
            )
        with local.activate():
            with local.span(
                "task", index=index, engine=task.engine_name
            ) as span:
                span.set(queue_wait_seconds=queue_wait)
                outcome = self._attempt_loop(
                    task, policy, on_error, task_span=span
                )
        outcome.extra[TRACE_EXTRA_KEY] = [
            root.to_dict() for root in local.roots()
        ]
        return outcome

    @staticmethod
    def _graft_task_traces(tracer: Tracer, outcomes: list[RunOutcome]) -> None:
        """Adopt per-task span trees into the parent tracer, in order.

        The raw trees are popped from the outcome payload (they have
        reached their destination); a compact per-name summary stays
        behind for JSON reports.  Captured failures carry trees too —
        their attempts are part of the run's timeline.
        """
        for outcome in outcomes:
            payloads = outcome.extra.pop(TRACE_EXTRA_KEY, None)
            if not payloads:
                continue
            spans = [Span.from_dict(payload) for payload in payloads]
            tracer.graft(spans)
            outcome.extra[TRACE_SUMMARY_KEY] = summarize_spans(spans)

    def run_on_engines(
        self,
        prescription: Prescription | str,
        engine_names: list[str],
        volume_override: int | None = None,
        *,
        on_error: str | None = None,
        retries: int | None = None,
        retry_backoff: float | None = None,
        **overrides: Any,
    ) -> list[RunOutcome]:
        """The same prescription across several engines (system view).

        The deterministic data set is generated once and shared by every
        engine through the dataset cache; the hit/miss delta *of this
        call* (not process-lifetime totals) is attached to each
        outcome's ``extra["dataset_cache"]``.  ``on_error="continue"``
        keeps one misbehaving engine from discarding the comparison:
        its slot holds a :class:`TaskFailure` while the other engines'
        results survive.
        """
        tasks = [
            RunTask(prescription, engine_name, volume_override, dict(overrides))
            for engine_name in engine_names
        ]
        cache = self.test_generator.dataset_cache
        before = cache.stats() if cache is not None else None
        outcomes = self.run_many(
            tasks,
            on_error=on_error,
            retries=retries,
            retry_backoff=retry_backoff,
        )
        if cache is not None:
            delta = cache.stats().since(before)
            for outcome in outcomes:
                outcome.extra["dataset_cache"] = delta.as_dict()
        return outcomes

    # ------------------------------------------------------------------
    # Process-backend plumbing
    # ------------------------------------------------------------------

    def _run_many_process(
        self,
        tasks: list[RunTask],
        policy: RetryPolicy,
        on_error: str,
        tracer: Tracer,
    ) -> list[RunOutcome]:
        """Dispatch a batch to process workers: warm pool, cold fallback."""
        if self.options.warm_pool:
            try:
                pool = self._ensure_worker_pool()
            except WorkerPoolError:
                # Unpicklable initializer state (e.g. a closure-bearing
                # suite): degrade to the per-task-payload path, which
                # handles that per component instead of per pool.
                pool = None
            if pool is not None:
                return self._run_many_warm(
                    pool, tasks, policy, on_error, tracer
                )
        return self._run_many_cold(tasks, policy, on_error, tracer)

    def _worker_init(self) -> tuple[WorkerInit, str]:
        """The pool initializer for the current runner state, plus its
        content digest (the pool-identity half of the invalidation key).
        """
        suite: MetricSuite | None = self.suite
        try:
            pickle.dumps(suite)
        except Exception:
            suite = None
        init = WorkerInit(
            options={
                "repeats": self.options.repeats,
                "warmup_runs": self.options.warmup_runs,
                "check_format": self.options.check_format,
                "task_timeout": self.options.task_timeout,
            },
            suite=suite,
            configurations=dict(self.configurations),
            prewarm_engines=tuple(sorted(self.configurations)),
        )
        try:
            payload = pickle.dumps(init)
        except Exception as error:
            raise WorkerPoolError(
                f"worker initializer is not picklable: {error}"
            ) from error
        return init, hashlib.sha256(payload).hexdigest()

    def _ensure_worker_pool(self) -> WorkerPool:
        """The warm pool matching current options (rebuilt when stale).

        The key pairs the initializer digest (options scalars, suite,
        configurations) with ``max_workers``: mutating any of them
        between ``run_many`` calls shuts the old pool down and builds a
        fresh one, exactly like the ``executor`` property's behavior.
        """
        init, digest = self._worker_init()
        key = (digest, self.options.max_workers)
        if self._worker_pool is not None and self._worker_pool_key != key:
            self._worker_pool.shutdown()
            self._worker_pool = None
        if self._worker_pool is None:
            max_workers = self.options.max_workers or default_max_workers()
            self._worker_pool = WorkerPool(init, max_workers)
            self._worker_pool_key = key
        return self._worker_pool

    def _run_many_warm(
        self,
        pool: WorkerPool,
        tasks: list[RunTask],
        policy: RetryPolicy,
        on_error: str,
        tracer: Tracer,
    ) -> list[RunOutcome]:
        """The warm path: lightweight descriptors to persistent workers."""
        shipped_policy: RetryPolicy | None = policy
        try:
            pickle.dumps(policy)
        except Exception:
            shipped_policy = None
        scalars = (
            policy.max_attempts - 1,
            policy.backoff_seconds,
            policy.jitter,
            policy.seed,
        )
        # Wall-clock, not perf_counter: the stamp crosses the process
        # boundary and perf_counter epochs are per-process.
        submitted_wall = time.time()
        handles = self._dataset_handles(tasks, pool)
        descriptors = []
        for index, task in enumerate(tasks):
            descriptors.append(
                TaskDescriptor(
                    prescription=self._shipped_task_prescription(task),
                    engine_name=task.engine_name,
                    volume_override=task.volume_override,
                    overrides=dict(task.overrides),
                    configuration=task.configuration,
                    data_partitions=task.data_partitions,
                    chunk_size=task.chunk_size,
                    handle=handles[index],
                    on_error=on_error,
                    retry_policy=shipped_policy,
                    retry_scalars=scalars,
                    task_index=index,
                    submitted_wall=submitted_wall,
                    trace=tracer.enabled,
                    pool_batch=pool.batches,
                )
            )
        if tracer.enabled:
            for descriptor in descriptors:
                descriptor.payload_bytes = len(pickle.dumps(descriptor))
            tracer.count("pool_reuse", pool.batches)
        return pool.run_batch(descriptors)

    def _run_many_cold(
        self,
        tasks: list[RunTask],
        policy: RetryPolicy,
        on_error: str,
        tracer: Tracer,
    ) -> list[RunOutcome]:
        """The cold path: self-contained payloads, fresh worker runners."""
        submitted_wall = time.time()
        payloads = [
            self._task_payload(
                task,
                policy=policy,
                on_error=on_error,
                task_index=index,
                submitted_wall=submitted_wall,
                trace=tracer.enabled,
            )
            for index, task in enumerate(tasks)
        ]
        if tracer.enabled:
            for payload in payloads:
                payload["payload_bytes"] = len(pickle.dumps(payload))
        return self.executor.map(_subprocess_run_task, payloads)

    def _resolved_prescription(self, task: RunTask) -> Prescription:
        prescription = task.prescription
        if isinstance(prescription, str):
            return self.test_generator.repository.get(prescription)
        return prescription

    def _shipped_task_prescription(self, task: RunTask) -> Prescription | str:
        """What the descriptor carries: a worker-resolvable name or value.

        Resolution failures (unknown name) ship unchanged so the worker
        raises them inside its attempt loop — where ``on_error`` policy
        and failure capture apply, exactly like the serial path.
        """
        try:
            return shipped_prescription(self._resolved_prescription(task))
        except Exception:  # noqa: BLE001 - worker reports the real error
            return task.prescription

    def _dataset_key(self, task: RunTask) -> tuple | None:
        """The cache key this task's data set lives under, or None.

        Mirrors :meth:`TestGenerator.select_data` exactly — same key
        tuple, same override precedence — so a shipped fingerprint is
        guaranteed to match what the worker's own generation would
        cache.  Streaming tasks (``chunk_size``) bypass the cache and
        get no key; so does anything that fails to resolve here (the
        worker will surface the real error with full context).
        """
        if task.chunk_size is not None:
            return None
        try:
            requirement = self._resolved_prescription(task).data
            generator = self.test_generator.generators.create(
                requirement.generator
            )
            volume = (
                task.volume_override
                if task.volume_override is not None
                else requirement.volume
            )
            partitions = (
                task.data_partitions
                if task.data_partitions is not None
                else requirement.num_partitions
            )
            return DatasetCache.make_key(
                requirement.generator,
                generator.seed,
                volume,
                partitions,
                requirement.fit_on,
            )
        except Exception:  # noqa: BLE001 - worker reports the real error
            return None

    def _dataset_handles(
        self, tasks: list[RunTask], pool: WorkerPool
    ) -> list[DatasetHandle | None]:
        """One handle per task (deduplicated per dataset key).

        Data already resident or spilled in the parent cache ships as
        bytes — serialized once per pool into shared memory, or
        referenced as the existing spill file.  A key missing from the
        cache that two or more tasks share is generated here first, so
        the batch pays one generation instead of one per worker; a key
        only one task needs ships as a bare fingerprint and that worker
        regenerates (and caches) it locally.
        """
        cache = self.test_generator.dataset_cache
        keys = [self._dataset_key(task) for task in tasks]
        shared = Counter(key for key in keys if key is not None)
        handle_by_key: dict[tuple, DatasetHandle] = {}
        for task, key in zip(tasks, keys):
            if key is None or key in handle_by_key:
                continue
            if cache is None:
                handle_by_key[key] = pool.fingerprint_handle_for(key)
                continue
            source = cache.export_source(key)
            if source is None and shared[key] > 1:
                try:
                    # Generate silently: task traces must keep one root
                    # per task, and each worker's own select-data span
                    # already accounts for this data set (as a hit).
                    with NULL_TRACER.activate():
                        self.test_generator.select_data(
                            self._resolved_prescription(task).data,
                            task.volume_override,
                            task.data_partitions,
                        )
                except Exception:  # noqa: BLE001 - worker reports it
                    pass
                else:
                    source = cache.export_source(key)
            handle = None
            if source is not None:
                try:
                    handle = pool.handle_for(key, source)
                except Exception:  # noqa: BLE001 - unpicklable records
                    handle = None
            handle_by_key[key] = handle or pool.fingerprint_handle_for(key)
        return [
            handle_by_key.get(key) if key is not None else None
            for key in keys
        ]

    def _task_payload(
        self,
        task: RunTask,
        *,
        policy: RetryPolicy | None = None,
        on_error: str | None = None,
        task_index: int = 0,
        submitted_wall: float | None = None,
        trace: bool = False,
    ) -> dict[str, Any]:
        """A self-contained, picklable description of one task.

        The prescription ships by value when picklable; otherwise by
        name, to be resolved from the worker's built-in repository
        (iterative prescriptions hold stopping-condition callables that
        cannot cross a process boundary).  The metric suite ships by
        value too, so custom metrics survive the process boundary; an
        unpicklable suite falls back to the standard one in the worker.
        The retry policy ships by value when picklable (preserving a
        custom ``retryable`` filter); otherwise the worker rebuilds an
        equivalent policy from the scalar options.
        """
        prescription = task.prescription
        if isinstance(prescription, str):
            prescription = self.test_generator.repository.get(prescription)
        shipped: Prescription | str
        try:
            pickle.dumps(prescription)
            shipped = prescription
        except Exception:
            shipped = prescription.name
        suite: MetricSuite | None = self.suite
        try:
            pickle.dumps(suite)
        except Exception:
            suite = None
        configuration = (
            task.configuration
            if task.configuration is not None
            else self.configurations.get(task.engine_name)
        )
        policy = policy or self.options.retry_policy()
        shipped_policy: RetryPolicy | None = policy
        try:
            pickle.dumps(policy)
        except Exception:
            shipped_policy = None
        return {
            "prescription": shipped,
            "engine_name": task.engine_name,
            "volume_override": task.volume_override,
            "overrides": dict(task.overrides),
            "configuration": configuration,
            "data_partitions": task.data_partitions,
            "chunk_size": task.chunk_size,
            "suite": suite,
            "options": {
                "repeats": self.options.repeats,
                "warmup_runs": self.options.warmup_runs,
                "check_format": self.options.check_format,
                "on_error": (
                    on_error if on_error is not None else self.options.on_error
                ),
                "retries": policy.max_attempts - 1,
                "retry_backoff": policy.backoff_seconds,
                "retry_jitter": policy.jitter,
                "retry_seed": policy.seed,
                "task_timeout": self.options.task_timeout,
            },
            "retry_policy": shipped_policy,
            "task_index": task_index,
            "submitted_wall": submitted_wall,
            "trace": trace,
        }


def _subprocess_run_task(payload: dict[str, Any]) -> RunOutcome:
    """Worker-process entry point: rebuild a serial runner and run.

    Generation is deterministic, so the worker's fresh dataset is
    record-for-record identical to what the parent would have generated;
    metric means (other than wall-clock measurements) match the serial
    path exactly.

    The retry loop runs *here*, inside the worker, through the same
    attempt-loop code path as the serial and thread backends — so fault
    injection, backoff, and failure capture behave identically.  Under
    ``on_error="continue"`` the captured :class:`TaskFailure` returns
    through the pool like any result; under ``"abort"`` the exception
    propagates and the pool re-raises it in the parent.

    When the payload asks for tracing, the worker records into a fresh
    tracer and returns its serialized span trees inside the outcome
    payload; the parent grafts them in submission order.  Queue wait is
    computed from the payload's wall-clock submit stamp — wall clocks
    are the only clocks that cross the process boundary.
    """
    import repro  # noqa: F401 — fills the registries in the worker

    runner = TestRunner(
        options=RunnerOptions(executor="serial", **payload["options"]),
        suite=payload.get("suite"),
    )
    # Engine construction mirrors the parent: the payload carries the
    # resolved configuration (None means a bare registry engine).
    runner.configurations = {}
    task = RunTask(
        prescription=payload["prescription"],
        engine_name=payload["engine_name"],
        volume_override=payload["volume_override"],
        overrides=dict(payload["overrides"]),
        configuration=payload["configuration"],
        data_partitions=payload["data_partitions"],
        chunk_size=payload.get("chunk_size"),
    )
    policy = payload.get("retry_policy") or runner.options.retry_policy()
    on_error = runner.options.on_error
    if not payload.get("trace"):
        return runner._run_task_guarded(task, policy, on_error)
    submitted_wall = payload.get("submitted_wall")
    queue_wait = (
        max(0.0, time.time() - submitted_wall)
        if submitted_wall is not None
        else 0.0
    )
    outcome = runner._run_task_traced(
        task,
        payload.get("task_index", 0),
        policy,
        on_error,
        queue_wait=queue_wait,
    )
    annotate_task_trace(
        outcome.extra.get(TRACE_EXTRA_KEY),
        payload_bytes=payload.get("payload_bytes"),
    )
    return outcome
