"""The test runner (Execution step of Figure 1).

Runs prescribed tests with warmup and repeats, computes metric statistics
through the standard metric suite, and returns
:class:`~repro.core.results.RunResult` objects ready for analysis.

Engines are rebuilt per repeat so repeats stay independent — a DBMS that
cached tables from the previous repeat, or a KV store already containing
inserted keys, would otherwise contaminate the statistics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.core.errors import ExecutionError
from repro.core.metrics import MetricSuite
from repro.core.prescription import Prescription
from repro.core.results import RunResult
from repro.core.test_generator import PrescribedTest, TestGenerator
from repro.execution.config import (
    SystemConfiguration,
    default_configurations,
    prepare_input,
)
from repro.workloads.base import WorkloadResult


@dataclass
class RunnerOptions:
    """Execution policy for one runner."""

    repeats: int = 1
    warmup_runs: int = 0
    #: Validate format convertibility before running (Section 2.3).
    check_format: bool = True

    def __post_init__(self) -> None:
        if self.repeats <= 0:
            raise ExecutionError(f"repeats must be positive, got {self.repeats}")
        if self.warmup_runs < 0:
            raise ExecutionError(
                f"warmup_runs must be non-negative, got {self.warmup_runs}"
            )


class TestRunner:
    """Executes prescribed tests and aggregates their metrics."""

    __test__ = False  # "Test" prefix is domain vocabulary, not a pytest class

    def __init__(
        self,
        test_generator: TestGenerator | None = None,
        configurations: dict[str, SystemConfiguration] | None = None,
        options: RunnerOptions | None = None,
        suite: MetricSuite | None = None,
    ) -> None:
        self.test_generator = test_generator or TestGenerator()
        self.configurations = configurations or default_configurations()
        self.options = options or RunnerOptions()
        self.suite = suite or MetricSuite.standard()

    # ------------------------------------------------------------------

    def _build_engine(self, engine_name: str):
        configuration = self.configurations.get(engine_name)
        if configuration is not None:
            return configuration.build()
        return self.test_generator.engines.create(engine_name)

    def run_once(self, test: PrescribedTest, **overrides: Any) -> WorkloadResult:
        """One execution of an already-bound prescribed test."""
        if self.options.check_format:
            prepare_input(test.dataset, test.engine)
        return test.run(**overrides)

    def run(
        self,
        prescription: Prescription | str,
        engine_name: str,
        volume_override: int | None = None,
        **overrides: Any,
    ) -> RunResult:
        """Generate and run one prescribed test with repeats.

        The data set is generated once (same data every repeat); the
        engine is rebuilt per repeat for independence.
        """
        test = self.test_generator.generate(
            prescription, engine_name, volume_override
        )
        for _ in range(self.options.warmup_runs):
            fresh = self._rebind(test, engine_name)
            self.run_once(fresh, **overrides)
        workload_results = []
        for _ in range(self.options.repeats):
            fresh = self._rebind(test, engine_name)
            workload_results.append(self.run_once(fresh, **overrides))
        return RunResult.from_workload_results(
            test.name, workload_results, self.suite
        )

    def _rebind(self, test: PrescribedTest, engine_name: str) -> PrescribedTest:
        """The same prescription and data on a fresh engine instance."""
        return PrescribedTest(
            prescription=test.prescription,
            engine=self._build_engine(engine_name),
            workload=test.workload,
            dataset=test.dataset,
        )

    def run_on_engines(
        self,
        prescription: Prescription | str,
        engine_names: list[str],
        volume_override: int | None = None,
        **overrides: Any,
    ) -> list[RunResult]:
        """The same prescription across several engines (system view)."""
        return [
            self.run(prescription, engine_name, volume_override, **overrides)
            for engine_name in engine_names
        ]
