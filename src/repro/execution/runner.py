"""The test runner (Execution step of Figure 1).

Runs prescribed tests with warmup and repeats, computes metric statistics
through the standard metric suite, and returns
:class:`~repro.core.results.RunResult` objects ready for analysis.

Engines are rebuilt per repeat so repeats stay independent — a DBMS that
cached tables from the previous repeat, or a KV store already containing
inserted keys, would otherwise contaminate the statistics.

Independent runs — the engines of a cross-system comparison, the points
of a sweep — fan out over the pluggable executor the
:class:`~repro.execution.runner.RunnerOptions` select (``serial`` /
``thread`` / ``process``; see :mod:`repro.execution.parallel`).  Results
are merged in submission order, so every backend returns the same
results in the same order as the serial path.
"""

from __future__ import annotations

import pickle
import time
from dataclasses import dataclass, field
from typing import Any

from repro.core.errors import ExecutionError
from repro.core.metrics import MetricSuite
from repro.core.prescription import Prescription
from repro.core.results import RunResult
from repro.core.test_generator import PrescribedTest, TestGenerator
from repro.execution.config import (
    SystemConfiguration,
    default_configurations,
    prepare_input,
)
from repro.execution.parallel import (
    EXECUTOR_BACKENDS,
    ParallelExecutor,
    resolve_executor,
)
from repro.observability import (
    Span,
    Tracer,
    current_tracer,
    summarize_spans,
)
from repro.workloads.base import WorkloadResult

#: The ``RunResult.extra`` key a worker's serialized span trees travel
#: under; popped (and grafted into the parent tracer) by ``run_many``.
TRACE_EXTRA_KEY = "trace"
#: The ``RunResult.extra`` key the per-task span summary is kept under
#: (survives into JSON reports).
TRACE_SUMMARY_KEY = "trace_summary"


@dataclass
class RunnerOptions:
    """Execution policy for one runner."""

    repeats: int = 1
    warmup_runs: int = 0
    #: Validate format convertibility before running (Section 2.3).
    check_format: bool = True
    #: Fan-out backend for independent runs: "serial", "thread", "process".
    executor: str = "serial"
    #: Worker count for the pooled backends; None means one per CPU.
    max_workers: int | None = None

    def __post_init__(self) -> None:
        if self.repeats <= 0:
            raise ExecutionError(f"repeats must be positive, got {self.repeats}")
        if self.warmup_runs < 0:
            raise ExecutionError(
                f"warmup_runs must be non-negative, got {self.warmup_runs}"
            )
        if self.executor not in EXECUTOR_BACKENDS:
            raise ExecutionError(
                f"unknown executor backend {self.executor!r}; "
                f"available: {', '.join(EXECUTOR_BACKENDS)}"
            )
        if self.max_workers is not None and self.max_workers <= 0:
            raise ExecutionError(
                f"max_workers must be positive, got {self.max_workers}"
            )


@dataclass
class RunTask:
    """One independent run request, ready to be fanned out.

    A plain-data description (picklable as long as the prescription is)
    of everything :meth:`TestRunner.run` needs, so a batch of tasks can
    be dispatched to any executor backend and merged in submission
    order.
    """

    prescription: Prescription | str
    engine_name: str
    volume_override: int | None = None
    overrides: dict[str, Any] = field(default_factory=dict)
    #: Explicit engine configuration for this task only; None falls back
    #: to the runner's configuration table.  Passing it per-task keeps
    #: configuration sweeps free of shared-state mutation.
    configuration: SystemConfiguration | None = None
    #: Parallel data-generator partitions (velocity override).
    data_partitions: int | None = None


class TestRunner:
    """Executes prescribed tests and aggregates their metrics."""

    __test__ = False  # "Test" prefix is domain vocabulary, not a pytest class

    def __init__(
        self,
        test_generator: TestGenerator | None = None,
        configurations: dict[str, SystemConfiguration] | None = None,
        options: RunnerOptions | None = None,
        suite: MetricSuite | None = None,
    ) -> None:
        self.test_generator = test_generator or TestGenerator()
        self.configurations = configurations or default_configurations()
        self.options = options or RunnerOptions()
        self.suite = suite or MetricSuite.standard()
        self._executor: ParallelExecutor | None = None

    # ------------------------------------------------------------------

    @property
    def executor(self) -> ParallelExecutor:
        """The fan-out backend the options select (created lazily)."""
        if self._executor is None:
            self._executor = resolve_executor(
                self.options.executor, self.options.max_workers
            )
        return self._executor

    def close(self) -> None:
        """Release pooled executor workers, if any were created."""
        if self._executor is not None:
            self._executor.shutdown()
            self._executor = None

    def __enter__(self) -> "TestRunner":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------

    def _build_engine(
        self, engine_name: str, configuration: SystemConfiguration | None = None
    ):
        configuration = (
            configuration
            if configuration is not None
            else self.configurations.get(engine_name)
        )
        if configuration is not None:
            return configuration.build()
        return self.test_generator.engines.create(engine_name)

    def run_once(self, test: PrescribedTest, **overrides: Any) -> WorkloadResult:
        """One execution of an already-bound prescribed test."""
        if self.options.check_format:
            prepare_input(test.dataset, test.engine)
        return test.run(**overrides)

    def run(
        self,
        prescription: Prescription | str,
        engine_name: str,
        volume_override: int | None = None,
        *,
        configuration: SystemConfiguration | None = None,
        data_partitions: int | None = None,
        **overrides: Any,
    ) -> RunResult:
        """Generate and run one prescribed test with repeats.

        The data set is generated once (same data every repeat — and
        served from the dataset cache when an identical deterministic
        request already ran); the engine is rebuilt per repeat for
        independence.
        """
        tracer = current_tracer()
        prescription_name = (
            prescription if isinstance(prescription, str) else prescription.name
        )
        with tracer.span(
            "run", prescription=prescription_name, engine=engine_name
        ):
            with tracer.span("test-generation"):
                test = self.test_generator.generate(
                    prescription, engine_name, volume_override, data_partitions
                )
            for index in range(self.options.warmup_runs):
                with tracer.span("warmup", index=index):
                    fresh = self._rebind(test, engine_name, configuration)
                    self.run_once(fresh, **overrides)
            workload_results = []
            for index in range(self.options.repeats):
                with tracer.span("repeat", index=index):
                    fresh = self._rebind(test, engine_name, configuration)
                    workload_results.append(self.run_once(fresh, **overrides))
            return RunResult.from_workload_results(
                test.name, workload_results, self.suite
            )

    def _rebind(
        self,
        test: PrescribedTest,
        engine_name: str,
        configuration: SystemConfiguration | None = None,
    ) -> PrescribedTest:
        """The same prescription and data on a fresh engine instance."""
        return PrescribedTest(
            prescription=test.prescription,
            engine=self._build_engine(engine_name, configuration),
            workload=test.workload,
            dataset=test.dataset,
        )

    # ------------------------------------------------------------------
    # Fan-out
    # ------------------------------------------------------------------

    def _run_task(self, task: RunTask) -> RunResult:
        return self.run(
            task.prescription,
            task.engine_name,
            task.volume_override,
            configuration=task.configuration,
            data_partitions=task.data_partitions,
            **task.overrides,
        )

    def run_many(self, tasks: list[RunTask]) -> list[RunResult]:
        """Run independent tasks on the configured executor backend.

        Results come back in submission order, so every backend is a
        drop-in replacement for the serial loop.  The thread backend
        shares this runner (and its dataset cache); the process backend
        ships each task as a self-contained payload and rebuilds a
        serial runner in the worker.

        When tracing is active, every task — on every backend — records
        its span tree into a task-local tracer and the parent grafts
        the finished trees here in submission order, each under a
        ``task`` span carrying queue-wait vs. execute timings.
        """
        tasks = list(tasks)
        tracer = current_tracer()
        if len(tasks) <= 1 or self.options.executor == "serial":
            if not tracer.enabled:
                return [self._run_task(task) for task in tasks]
            submitted = time.perf_counter()
            results = [
                self._run_task_traced(task, index, submitted)
                for index, task in enumerate(tasks)
            ]
        elif self.options.executor == "process":
            payloads = [self._task_payload(task) for task in tasks]
            if tracer.enabled:
                submitted = time.perf_counter()
                for index, payload in enumerate(payloads):
                    payload["trace"] = True
                    payload["task_index"] = index
                    payload["submitted"] = submitted
            results = self.executor.map(_subprocess_run_task, payloads)
        else:
            if not tracer.enabled:
                return self.executor.map(self._run_task, tasks)
            submitted = time.perf_counter()
            results = self.executor.map(
                lambda pair: self._run_task_traced(pair[1], pair[0], submitted),
                list(enumerate(tasks)),
            )
        if tracer.enabled:
            self._graft_task_traces(tracer, results)
        return results

    def _run_task_traced(
        self, task: RunTask, index: int, submitted: float
    ) -> RunResult:
        """One task under a task-local tracer (any thread, same process).

        The local tracer keeps worker-thread spans out of the shared
        tracer's thread-local stacks; the finished tree travels back in
        the result payload exactly like a process worker's would, so
        the merge path is one code path for every backend.
        """
        local = Tracer()
        started = time.perf_counter()
        with local.activate():
            with local.span(
                "task", index=index, engine=task.engine_name
            ) as span:
                span.set(queue_wait_seconds=max(0.0, started - submitted))
                result = self._run_task(task)
        result.extra[TRACE_EXTRA_KEY] = [
            root.to_dict() for root in local.roots()
        ]
        return result

    @staticmethod
    def _graft_task_traces(tracer: Tracer, results: list[RunResult]) -> None:
        """Adopt per-task span trees into the parent tracer, in order.

        The raw trees are popped from the result payload (they have
        reached their destination); a compact per-name summary stays
        behind for JSON reports.
        """
        for result in results:
            payloads = result.extra.pop(TRACE_EXTRA_KEY, None)
            if not payloads:
                continue
            spans = [Span.from_dict(payload) for payload in payloads]
            tracer.graft(spans)
            result.extra[TRACE_SUMMARY_KEY] = summarize_spans(spans)

    def run_on_engines(
        self,
        prescription: Prescription | str,
        engine_names: list[str],
        volume_override: int | None = None,
        **overrides: Any,
    ) -> list[RunResult]:
        """The same prescription across several engines (system view).

        The deterministic data set is generated once and shared by every
        engine through the dataset cache; the hit/miss delta *of this
        call* (not process-lifetime totals) is attached to each result's
        ``extra["dataset_cache"]``.
        """
        tasks = [
            RunTask(prescription, engine_name, volume_override, dict(overrides))
            for engine_name in engine_names
        ]
        cache = self.test_generator.dataset_cache
        before = cache.stats() if cache is not None else None
        results = self.run_many(tasks)
        if cache is not None:
            delta = cache.stats().since(before)
            for result in results:
                result.extra["dataset_cache"] = delta.as_dict()
        return results

    # ------------------------------------------------------------------
    # Process-backend plumbing
    # ------------------------------------------------------------------

    def _task_payload(self, task: RunTask) -> dict[str, Any]:
        """A self-contained, picklable description of one task.

        The prescription ships by value when picklable; otherwise by
        name, to be resolved from the worker's built-in repository
        (iterative prescriptions hold stopping-condition callables that
        cannot cross a process boundary).  The metric suite ships by
        value too, so custom metrics survive the process boundary; an
        unpicklable suite falls back to the standard one in the worker.
        """
        prescription = task.prescription
        if isinstance(prescription, str):
            prescription = self.test_generator.repository.get(prescription)
        shipped: Prescription | str
        try:
            pickle.dumps(prescription)
            shipped = prescription
        except Exception:
            shipped = prescription.name
        suite: MetricSuite | None = self.suite
        try:
            pickle.dumps(suite)
        except Exception:
            suite = None
        configuration = (
            task.configuration
            if task.configuration is not None
            else self.configurations.get(task.engine_name)
        )
        return {
            "prescription": shipped,
            "engine_name": task.engine_name,
            "volume_override": task.volume_override,
            "overrides": dict(task.overrides),
            "configuration": configuration,
            "data_partitions": task.data_partitions,
            "suite": suite,
            "options": {
                "repeats": self.options.repeats,
                "warmup_runs": self.options.warmup_runs,
                "check_format": self.options.check_format,
            },
        }


def _subprocess_run_task(payload: dict[str, Any]) -> RunResult:
    """Worker-process entry point: rebuild a serial runner and run.

    Generation is deterministic, so the worker's fresh dataset is
    record-for-record identical to what the parent would have generated;
    metric means (other than wall-clock measurements) match the serial
    path exactly.

    When the payload asks for tracing, the worker records into a fresh
    tracer and returns its serialized span trees inside the result
    payload; the parent grafts them in submission order.
    """
    import repro  # noqa: F401 — fills the registries in the worker

    runner = TestRunner(
        options=RunnerOptions(executor="serial", **payload["options"]),
        suite=payload.get("suite"),
    )
    # Engine construction mirrors the parent: the payload carries the
    # resolved configuration (None means a bare registry engine).
    runner.configurations = {}

    def execute() -> RunResult:
        return runner.run(
            payload["prescription"],
            payload["engine_name"],
            payload["volume_override"],
            configuration=payload["configuration"],
            data_partitions=payload["data_partitions"],
            **payload["overrides"],
        )

    if not payload.get("trace"):
        return execute()
    local = Tracer()
    started = time.perf_counter()
    with local.activate():
        with local.span(
            "task",
            index=payload.get("task_index", 0),
            engine=payload["engine_name"],
        ) as span:
            span.set(
                queue_wait_seconds=max(
                    0.0, started - payload.get("submitted", started)
                )
            )
            result = execute()
    result.extra[TRACE_EXTRA_KEY] = [root.to_dict() for root in local.roots()]
    return result
