"""Result analyzer & reporter rendering (Execution Layer, Figure 2).

Renders analysis results as aligned ASCII tables (what the benchmarks
print), markdown tables (what EXPERIMENTS.md embeds), and JSON (for
machine consumption).
"""

from __future__ import annotations

import json
from typing import Any

from repro.core.results import ResultAnalyzer, RunResult


def format_value(value: Any) -> str:
    """Compact human-readable formatting for table cells."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 1:
            return f"{value:.3g}"
        if abs(value) >= 0.001:
            return f"{value:.4g}"
        return f"{value:.3e}"
    return str(value)


def ascii_table(rows: list[dict[str, Any]], columns: list[str] | None = None) -> str:
    """Render dict rows as an aligned ASCII table."""
    if not rows:
        return "(no rows)"
    if columns is None:
        columns = []
        for row in rows:
            for key in row:
                if key not in columns:
                    columns.append(key)
    rendered = [
        {column: format_value(row.get(column, "")) for column in columns}
        for row in rows
    ]
    widths = {
        column: max(len(column), *(len(row[column]) for row in rendered))
        for column in columns
    }
    header = " | ".join(column.ljust(widths[column]) for column in columns)
    separator = "-+-".join("-" * widths[column] for column in columns)
    lines = [header, separator]
    for row in rendered:
        lines.append(
            " | ".join(row[column].ljust(widths[column]) for column in columns)
        )
    return "\n".join(lines)


def markdown_table(
    rows: list[dict[str, Any]], columns: list[str] | None = None
) -> str:
    """Render dict rows as a GitHub-flavoured markdown table."""
    if not rows:
        return "(no rows)"
    if columns is None:
        columns = []
        for row in rows:
            for key in row:
                if key not in columns:
                    columns.append(key)
    lines = ["| " + " | ".join(columns) + " |"]
    lines.append("|" + "|".join("---" for _ in columns) + "|")
    for row in rows:
        lines.append(
            "| "
            + " | ".join(format_value(row.get(column, "")) for column in columns)
            + " |"
        )
    return "\n".join(lines)


def results_table(
    results: list[RunResult], metric_names: list[str], style: str = "ascii"
) -> str:
    """Render run results for the given metrics."""
    analyzer = ResultAnalyzer(results)
    rows = analyzer.summary_rows(metric_names)
    if style == "markdown":
        return markdown_table(rows)
    return ascii_table(rows)


def results_json(results: list[RunResult]) -> str:
    """Serialize results (all metric statistics) to JSON."""
    payload = []
    for result in results:
        entry = {
            "test": result.test_name,
            "workload": result.workload,
            "engine": result.engine,
            "repeats": result.repeats,
            "metrics": {
                name: {
                    "mean": stats.mean,
                    "min": stats.minimum,
                    "max": stats.maximum,
                    "stdev": stats.stdev,
                }
                for name, stats in result.metrics.items()
            },
        }
        if result.extra:
            entry["extra"] = result.extra
        payload.append(entry)
    return json.dumps(payload, indent=2, sort_keys=True, default=str)
