"""Result analyzer & reporter rendering (Execution Layer, Figure 2).

One facade, :func:`render_results`, renders analysis results in every
style the framework emits: aligned ASCII tables (what the benchmarks
print), markdown tables (what EXPERIMENTS.md embeds), and JSON (for
machine consumption).  The historical :func:`results_table` /
:func:`results_json` entry points remain as deprecated delegates.

Trace rendering lives here too: :func:`render_trace` draws the span
tree a traced run produced (see :mod:`repro.observability`) as an ASCII
flame/summary tree with durations, percentages, attributes, and
counters.
"""

from __future__ import annotations

import json
import warnings
from typing import Any

from repro.core.errors import ExecutionError
from repro.core.results import RunResult, TaskFailure
from repro.observability import Span

#: The styles :func:`render_results` accepts.
RESULT_STYLES = ("ascii", "markdown", "json", "history")

#: Unicode blocks the history sparklines are drawn with.
SPARK_BLOCKS = "▁▂▃▄▅▆▇█"


def format_value(value: Any) -> str:
    """Compact human-readable formatting for table cells."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 1:
            return f"{value:.3g}"
        if abs(value) >= 0.001:
            return f"{value:.4g}"
        return f"{value:.3e}"
    return str(value)


def _resolve_columns(
    rows: list[dict[str, Any]], columns: list[str] | None
) -> list[str]:
    """Explicit column order, or first-appearance order over all rows."""
    if columns is not None:
        return list(columns)
    resolved: list[str] = []
    for row in rows:
        for key in row:
            if key not in resolved:
                resolved.append(key)
    return resolved


def ascii_table(rows: list[dict[str, Any]], columns: list[str] | None = None) -> str:
    """Render dict rows as an aligned ASCII table."""
    if not rows:
        return "(no rows)"
    columns = _resolve_columns(rows, columns)
    rendered = [
        {column: format_value(row.get(column, "")) for column in columns}
        for row in rows
    ]
    widths = {
        column: max(len(column), *(len(row[column]) for row in rendered))
        for column in columns
    }
    header = " | ".join(column.ljust(widths[column]) for column in columns)
    separator = "-+-".join("-" * widths[column] for column in columns)
    lines = [header, separator]
    for row in rendered:
        lines.append(
            " | ".join(row[column].ljust(widths[column]) for column in columns)
        )
    return "\n".join(lines)


def markdown_table(
    rows: list[dict[str, Any]], columns: list[str] | None = None
) -> str:
    """Render dict rows as a GitHub-flavoured markdown table."""
    if not rows:
        return "(no rows)"
    columns = _resolve_columns(rows, columns)
    lines = ["| " + " | ".join(columns) + " |"]
    lines.append("|" + "|".join("---" for _ in columns) + "|")
    for row in rows:
        lines.append(
            "| "
            + " | ".join(format_value(row.get(column, "")) for column in columns)
            + " |"
        )
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# The unified reporting facade
# ---------------------------------------------------------------------------


def render_results(
    results: list[RunResult | TaskFailure],
    style: str = "ascii",
    metrics: list[str] | None = None,
    store: Any = None,
    baseline: str | None = None,
) -> str:
    """Render run results in one of the supported styles.

    ``metrics`` selects which metric means the table styles show; when
    omitted, every metric any result carries is shown (in first-
    appearance order).  The JSON style always serializes all metric
    statistics and ignores ``metrics``.

    The ``history`` style needs a ``store``
    (:class:`~repro.analysis.store.RunStore`): each metric row grows a
    sparkline of that configuration's recorded trajectory and — when
    ``baseline`` names a promoted baseline — a delta column against it.

    Outcome lists from a fault-tolerant run render in place: a captured
    :class:`TaskFailure` keeps its submission-order row with ``status``
    and ``error`` columns, and ``status``/``attempts`` columns appear
    whenever any outcome failed or was retried — batches that never saw
    a failure render exactly as before.
    """
    if style not in RESULT_STYLES:
        raise ExecutionError(
            f"unknown result style {style!r}; "
            f"available: {', '.join(RESULT_STYLES)}"
        )
    if style == "json":
        return _render_results_json(results)
    if metrics is None:
        metrics = []
        for result in results:
            if isinstance(result, RunResult):
                for name in result.metrics:
                    if name not in metrics:
                        metrics.append(name)
    if style == "history":
        return _render_history(results, metrics, store, baseline)
    rows = _outcome_rows(results, metrics)
    if style == "markdown":
        return markdown_table(rows)
    return ascii_table(rows)


def _outcome_rows(
    results: list[RunResult | TaskFailure], metrics: list[str]
) -> list[dict[str, Any]]:
    """Flat table rows, one per outcome, in submission order.

    Failure/retry columns appear only when the batch carries that
    metadata, keeping clean runs' tables identical to the historical
    output.
    """
    failures = [r for r in results if isinstance(r, TaskFailure)]
    retried = any(
        isinstance(r, RunResult) and r.extra.get("attempts", 1) > 1
        for r in results
    ) or any(failure.attempts > 1 for failure in failures)
    show_status = bool(failures) or retried
    rows: list[dict[str, Any]] = []
    for result in results:
        row: dict[str, Any] = {
            "test": result.test_name,
            "workload": result.workload,
            "engine": result.engine,
        }
        if show_status:
            row["status"] = result.status
        if isinstance(result, TaskFailure):
            if retried or result.attempts > 1:
                row["attempts"] = result.attempts
            row["error"] = result.error
        else:
            row["repeats"] = result.repeats
            if retried and "attempts" in result.extra:
                row["attempts"] = result.extra["attempts"]
            for name in metrics:
                if name in result.metrics:
                    row[name] = result.mean(name)
        rows.append(row)
    return rows


def _render_results_json(results: list[RunResult | TaskFailure]) -> str:
    payload = []
    for result in results:
        if isinstance(result, TaskFailure):
            payload.append(result.as_dict())
            continue
        entry = {
            "test": result.test_name,
            "workload": result.workload,
            "engine": result.engine,
            "repeats": result.repeats,
            "metrics": {
                name: {
                    "mean": stats.mean,
                    "min": stats.minimum,
                    "max": stats.maximum,
                    "stdev": stats.stdev,
                    "p50": stats.p50,
                    "p95": stats.p95,
                    "p99": stats.p99,
                }
                for name, stats in result.metrics.items()
            },
        }
        if result.extra:
            entry["extra"] = result.extra
        payload.append(entry)
    return json.dumps(payload, indent=2, sort_keys=True, default=str)


# ---------------------------------------------------------------------------
# History rendering (per-metric sparklines and baseline deltas)
# ---------------------------------------------------------------------------


def sparkline(values: list[float], width: int = 12) -> str:
    """Draw a value trajectory as unicode block characters.

    The last ``width`` values are scaled to the block range; a constant
    series renders flat mid-height, which reads as "no movement".
    """
    values = [float(v) for v in values][-width:]
    if not values:
        return ""
    low, high = min(values), max(values)
    if high == low:
        return SPARK_BLOCKS[3] * len(values)
    scale = (len(SPARK_BLOCKS) - 1) / (high - low)
    return "".join(
        SPARK_BLOCKS[int(round((value - low) * scale))] for value in values
    )


def _render_history(
    results: list[RunResult | TaskFailure],
    metrics: list[str],
    store: Any,
    baseline: str | None,
) -> str:
    """One row per (result, metric): stats, trajectory, baseline delta.

    Stored history is matched by (test name, engine) — the display-side
    approximation of the store's fingerprint series, good enough to
    chart "this test on this engine over time" without replumbing spec
    context into the renderer.
    """
    if store is None:
        raise ExecutionError(
            "the history style needs a run store "
            "(render_results(..., store=RunStore(...)))"
        )
    baseline_record = None
    if baseline is not None:
        from repro.analysis.baselines import BaselineManager

        baseline_record = BaselineManager(store).resolve(baseline)
    records = store.records()
    rows: list[dict[str, Any]] = []
    for result in results:
        if isinstance(result, TaskFailure):
            rows.append(
                {
                    "test": result.test_name,
                    "engine": result.engine,
                    "metric": "-",
                    "status": result.status,
                    "error": result.error,
                }
            )
            continue
        history = [
            record
            for record in records
            if record.test_name == result.test_name
            and record.engine == result.engine
            and record.ok
        ]
        for name in metrics:
            if name not in result.metrics:
                continue
            stats = result.metrics[name]
            trajectory = [
                record.mean(name)
                for record in history
                if name in record.metrics
            ]
            row: dict[str, Any] = {
                "test": result.test_name,
                "engine": result.engine,
                "metric": name,
                "mean": stats.mean,
                "p50": stats.p50,
                "p95": stats.p95,
                "history": sparkline(trajectory) or "(none)",
            }
            if baseline_record is not None:
                row["vs baseline"] = _baseline_delta(
                    stats.mean, baseline_record, name
                )
            rows.append(row)
    return ascii_table(rows)


def _baseline_delta(mean: float, baseline_record: Any, metric: str) -> str:
    if metric not in baseline_record.metrics:
        return "n/a"
    reference = baseline_record.mean(metric)
    if reference == 0:
        return "n/a"
    return f"{(mean - reference) / abs(reference):+.1%}"


def results_table(
    results: list[RunResult], metric_names: list[str], style: str = "ascii"
) -> str:
    """Deprecated alias for :func:`render_results` (metrics table)."""
    warnings.warn(
        "results_table() is deprecated; use "
        "repro.execution.report.render_results(results, style=..., "
        "metrics=...) or the repro.api facade",
        DeprecationWarning,
        stacklevel=2,
    )
    return render_results(results, style=style, metrics=metric_names)


def results_json(results: list[RunResult]) -> str:
    """Deprecated alias for :func:`render_results` (JSON)."""
    warnings.warn(
        "results_json() is deprecated; use "
        "repro.execution.report.render_results(results, style='json') "
        "or the repro.api facade",
        DeprecationWarning,
        stacklevel=2,
    )
    return render_results(results, style="json")


# ---------------------------------------------------------------------------
# Trace rendering
# ---------------------------------------------------------------------------


def _span_details(span: Span) -> str:
    parts = [f"{key}={format_value(value)}" for key, value in span.attrs.items()]
    parts.extend(
        f"{key}={format_value(value)}" for key, value in span.counters.items()
    )
    return f"  [{' '.join(parts)}]" if parts else ""


def render_trace(spans: list[Span], max_depth: int | None = None) -> str:
    """Draw span trees as an ASCII flame/summary tree.

    Each line shows the span name (indented by depth), its duration,
    its share of the enclosing root span, and its attributes/counters.
    """
    if not spans:
        return "(no spans)"
    lines: list[str] = []

    def walk(span: Span, depth: int, root_seconds: float) -> None:
        if max_depth is not None and depth > max_depth:
            return
        share = (
            f" {100 * span.duration_seconds / root_seconds:5.1f}%"
            if root_seconds > 0
            else ""
        )
        label = "  " * depth + span.name
        lines.append(
            f"{label:<40s} {span.duration_seconds * 1e3:10.3f} ms"
            f"{share}{_span_details(span)}"
        )
        for child in span.children:
            walk(child, depth + 1, root_seconds)

    for root in spans:
        walk(root, 0, root.duration_seconds)
    return "\n".join(lines)
