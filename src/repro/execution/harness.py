"""Sweep and comparison harnesses built on the runner.

These drive the repeated-measurement patterns the benchmark files need:
volume sweeps (scalability shapes), cross-engine comparisons (the
functional-view experiment), and configuration sweeps (planner and
cluster ablations).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.core.prescription import Prescription
from repro.core.results import ResultAnalyzer, RunResult
from repro.execution.config import SystemConfiguration
from repro.execution.runner import TestRunner


@dataclass
class SweepPoint:
    """One measured point of a parameter sweep."""

    parameter: str
    value: Any
    result: RunResult


@dataclass
class SweepReport:
    """All points of one sweep, with convenience accessors."""

    parameter: str
    points: list[SweepPoint] = field(default_factory=list)

    def series(self, metric: str) -> list[tuple[Any, float]]:
        """(parameter value, metric mean) pairs in sweep order."""
        return [
            (point.value, point.result.mean(metric))
            for point in self.points
            if metric in point.result.metrics
        ]

    def rows(self, metric_names: list[str]) -> list[dict[str, Any]]:
        rows = []
        for point in self.points:
            row: dict[str, Any] = {self.parameter: point.value}
            for name in metric_names:
                if name in point.result.metrics:
                    row[name] = point.result.mean(name)
            rows.append(row)
        return rows


class BenchmarkHarness:
    """High-level sweep/compare operations for benchmark files."""

    def __init__(self, runner: TestRunner | None = None) -> None:
        self.runner = runner or TestRunner()

    def volume_sweep(
        self,
        prescription: Prescription | str,
        engine_name: str,
        volumes: list[int],
        **overrides: Any,
    ) -> SweepReport:
        """Run one prescription at several data volumes."""
        report = SweepReport(parameter="volume")
        for volume in volumes:
            result = self.runner.run(
                prescription, engine_name, volume_override=volume, **overrides
            )
            report.points.append(SweepPoint("volume", volume, result))
        return report

    def param_sweep(
        self,
        prescription: Prescription | str,
        engine_name: str,
        parameter: str,
        values: list[Any],
        **fixed_overrides: Any,
    ) -> SweepReport:
        """Run one prescription sweeping a workload parameter."""
        report = SweepReport(parameter=parameter)
        for value in values:
            overrides = {**fixed_overrides, parameter: value}
            result = self.runner.run(prescription, engine_name, **overrides)
            report.points.append(SweepPoint(parameter, value, result))
        return report

    def compare_engines(
        self,
        prescription: Prescription | str,
        engine_names: list[str],
        volume_override: int | None = None,
        **overrides: Any,
    ) -> ResultAnalyzer:
        """The same abstract test on several systems (functional view)."""
        results = self.runner.run_on_engines(
            prescription, engine_names, volume_override, **overrides
        )
        return ResultAnalyzer(results)

    def configuration_sweep(
        self,
        prescription: Prescription | str,
        engine_name: str,
        configurations: dict[str, SystemConfiguration],
        **overrides: Any,
    ) -> SweepReport:
        """Run one prescription under several engine configurations."""
        report = SweepReport(parameter="configuration")
        original = dict(self.runner.configurations)
        try:
            for label, configuration in configurations.items():
                self.runner.configurations[engine_name] = configuration
                result = self.runner.run(prescription, engine_name, **overrides)
                result.extra["configuration"] = label
                report.points.append(SweepPoint("configuration", label, result))
        finally:
            self.runner.configurations.clear()
            self.runner.configurations.update(original)
        return report
