"""Sweep and comparison harnesses built on the runner.

These drive the repeated-measurement patterns the benchmark files need:
volume sweeps (scalability shapes), cross-engine comparisons (the
functional-view experiment), and configuration sweeps (planner and
cluster ablations).

Sweep points are independent runs, so every harness operation fans out
over the runner's configured executor backend (see
:mod:`repro.execution.parallel`) and merges results in submission order
— a sweep on the thread or process backend reports points in exactly
the order the serial loop would.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.core.prescription import Prescription
from repro.core.results import ResultAnalyzer, RunResult
from repro.execution.config import SystemConfiguration, layout_configuration
from repro.execution.runner import RunTask, TestRunner


@dataclass
class SweepPoint:
    """One measured point of a parameter sweep."""

    parameter: str
    value: Any
    result: RunResult


@dataclass
class SweepReport:
    """All points of one sweep, with convenience accessors."""

    parameter: str
    points: list[SweepPoint] = field(default_factory=list)

    def series(self, metric: str) -> list[tuple[Any, float]]:
        """(parameter value, metric mean) pairs in sweep order."""
        return [
            (point.value, point.result.mean(metric))
            for point in self.points
            if metric in point.result.metrics
        ]

    def rows(self, metric_names: list[str]) -> list[dict[str, Any]]:
        rows = []
        for point in self.points:
            row: dict[str, Any] = {self.parameter: point.value}
            for name in metric_names:
                if name in point.result.metrics:
                    row[name] = point.result.mean(name)
            rows.append(row)
        return rows


class BenchmarkHarness:
    """High-level sweep/compare operations for benchmark files."""

    def __init__(self, runner: TestRunner | None = None) -> None:
        self.runner = runner or TestRunner()

    def volume_sweep(
        self,
        prescription: Prescription | str,
        engine_name: str,
        volumes: list[int],
        *,
        layout: str = "row",
        **overrides: Any,
    ) -> SweepReport:
        """Run one prescription at several data volumes.

        ``layout="columnar"`` runs every point through the engine's
        columnar configuration (see
        :func:`~repro.execution.config.layout_configuration`).
        """
        configuration = layout_configuration(engine_name, layout)
        tasks = [
            RunTask(
                prescription,
                engine_name,
                volume,
                dict(overrides),
                configuration=configuration,
            )
            for volume in volumes
        ]
        results = self.runner.run_many(tasks)
        report = SweepReport(parameter="volume")
        for volume, result in zip(volumes, results):
            report.points.append(SweepPoint("volume", volume, result))
        return report

    def param_sweep(
        self,
        prescription: Prescription | str,
        engine_name: str,
        parameter: str,
        values: list[Any],
        *,
        layout: str = "row",
        **fixed_overrides: Any,
    ) -> SweepReport:
        """Run one prescription sweeping a workload parameter."""
        volume_override = fixed_overrides.pop("volume_override", None)
        configuration = layout_configuration(engine_name, layout)
        tasks = [
            RunTask(
                prescription,
                engine_name,
                volume_override,
                {**fixed_overrides, parameter: value},
                configuration=configuration,
            )
            for value in values
        ]
        results = self.runner.run_many(tasks)
        report = SweepReport(parameter=parameter)
        for value, result in zip(values, results):
            report.points.append(SweepPoint(parameter, value, result))
        return report

    def compare_engines(
        self,
        prescription: Prescription | str,
        engine_names: list[str],
        volume_override: int | None = None,
        **overrides: Any,
    ) -> ResultAnalyzer:
        """The same abstract test on several systems (functional view)."""
        results = self.runner.run_on_engines(
            prescription, engine_names, volume_override, **overrides
        )
        return ResultAnalyzer(results)

    def configuration_sweep(
        self,
        prescription: Prescription | str,
        engine_name: str,
        configurations: dict[str, SystemConfiguration],
        **overrides: Any,
    ) -> SweepReport:
        """Run one prescription under several engine configurations.

        Each configuration travels with its task instead of being
        written into the runner's shared configuration table, so a sweep
        that raises mid-way (or runs concurrently on a shared runner)
        can never leave ``runner.configurations`` half-restored.
        """
        volume_override = overrides.pop("volume_override", None)
        tasks = [
            RunTask(
                prescription,
                engine_name,
                volume_override,
                dict(overrides),
                configuration=configuration,
            )
            for configuration in configurations.values()
        ]
        results = self.runner.run_many(tasks)
        report = SweepReport(parameter="configuration")
        for label, result in zip(configurations, results):
            result.extra["configuration"] = label
            report.points.append(SweepPoint("configuration", label, result))
        return report
