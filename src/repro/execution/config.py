"""System configuration tools (Execution Layer, Figure 2).

"The system configuration tools enable a generated test running in a
specific software stack."  Concretely: named engine configurations
(cluster size, planner knobs, store partitioning, stream service rate)
that the runner uses to instantiate engines, plus input format
conversion so a data set matches what the engine consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.core.errors import ExecutionError
from repro.datagen.base import DataSet
from repro.datagen.formats import (
    ConvertedData,
    convert,
    convert_batches,
    is_streaming_format,
)
from repro.engines.base import Engine, EngineInfo, SimulatedClusterSpec


@dataclass
class SystemConfiguration:
    """A named way to instantiate one engine.

    ``fault`` attaches a seeded fault-injection schedule (see
    :mod:`repro.engines.faults`): the built engine is wrapped in a
    :class:`~repro.engines.faults.FaultyEngine` so executions fail or
    stall deterministically — the substrate the retry and degradation
    paths are tested against.  The whole configuration is picklable, so
    faulty engines cross the process-executor boundary intact.
    """

    engine_name: str
    options: dict[str, Any] = field(default_factory=dict)
    label: str = ""
    fault: Any = None  # repro.engines.faults.FaultSpec (import kept lazy)

    def build(self) -> Engine:
        """Instantiate the configured engine."""
        engine = self._build_bare()
        if self.fault is not None:
            from repro.engines.faults import FaultyEngine

            engine = FaultyEngine(engine, self.fault)
        return engine

    def _build_bare(self) -> Engine:
        if self.engine_name == "mapreduce":
            from repro.engines.mapreduce import MapReduceEngine

            options = dict(self.options)
            executor = options.pop("executor", None)
            max_workers = options.pop("max_workers", None)
            combine_batch_records = options.pop("combine_batch_records", None)
            cluster = SimulatedClusterSpec(**options) if options else None
            return MapReduceEngine(
                cluster=cluster,
                executor=executor,
                max_workers=max_workers,
                combine_batch_records=combine_batch_records,
            )
        if self.engine_name == "dbms":
            from repro.engines.dbms import DbmsEngine, PlannerConfig

            config = PlannerConfig(**self.options) if self.options else None
            return DbmsEngine(planner_config=config)
        if self.engine_name == "nosql":
            from repro.engines.nosql import NoSqlStore

            return NoSqlStore(**self.options)
        if self.engine_name == "streaming":
            from repro.engines.streaming import StreamingEngine

            return StreamingEngine(**self.options)
        if self.engine_name == "dfs":
            from repro.engines.dfs import DistributedFileSystem

            return DistributedFileSystem(**self.options)
        raise ExecutionError(
            f"no configuration recipe for engine {self.engine_name!r}"
        )


def layout_options(layout: str) -> dict[str, dict[str, Any]]:
    """Per-engine option overrides realizing an execution layout.

    The columnar layout means two different things on the two hot
    paths: batch-at-a-time vectorized operators on the DBMS, and
    per-partition combiner batching on MapReduce.  Engines absent from
    the mapping have no layout notion and run bare.  The row layout is
    every engine's default, so it needs no overrides at all.
    """
    if layout != "columnar":
        return {}
    from repro.engines.mapreduce import DEFAULT_COMBINE_BATCH_RECORDS

    return {
        "dbms": {"layout": "columnar"},
        "mapreduce": {
            "combine_batch_records": DEFAULT_COMBINE_BATCH_RECORDS
        },
    }


def layout_configuration(
    engine_name: str, layout: str
) -> SystemConfiguration | None:
    """The configuration realizing ``layout`` on one engine, or None.

    None means the engine should be built bare: either the layout is
    the default row layout, or the engine has no layout notion.
    """
    options = layout_options(layout).get(engine_name)
    if options is None:
        return None
    return SystemConfiguration(
        engine_name,
        options=dict(options),
        label=f"{engine_name} ({layout} layout)",
    )


def default_configurations() -> dict[str, SystemConfiguration]:
    """One sensible default configuration per built-in engine."""
    return {
        "mapreduce": SystemConfiguration(
            "mapreduce", {"num_nodes": 4, "slots_per_node": 2},
            label="4-node simulated Hadoop-like cluster",
        ),
        "dbms": SystemConfiguration("dbms", label="single-node relational DBMS"),
        "nosql": SystemConfiguration(
            "nosql", {"num_partitions": 8, "replication": 2},
            label="8-partition store, RF=2",
        ),
        "streaming": SystemConfiguration(
            "streaming", {"service_seconds_per_event": 50e-6},
            label="20k events/s stream processor",
        ),
        "dfs": SystemConfiguration(
            "dfs", {"num_nodes": 4, "replication": 2},
            label="4-node simulated DFS, RF=2",
        ),
    }


def prepare_input(dataset: Any, engine: Engine) -> ConvertedData:
    """Convert a data set into the engine's declared input format.

    This is the format-conversion step of Section 2.3 — the runner calls
    it before every execution so a test never sees a mismatched format.

    A streaming :class:`~repro.datagen.source.DatasetSource` headed for a
    streaming format is validated eagerly (format exists, data type
    matches) but converted lazily: the returned payload is an unconsumed
    record iterator, so the check never materializes the stream.  Only a
    non-streaming format (``adjacency-list``) forces materialization.
    """
    info: EngineInfo = engine.info
    if not isinstance(dataset, DataSet) and is_streaming_format(
        info.input_format
    ):
        chunks = convert_batches(dataset, info.input_format)
        return ConvertedData(
            format_name=info.input_format,
            payload=(record for chunk in chunks for record in chunk),
            source_name=dataset.name,
            num_records=dataset.num_records,
        )
    return convert(dataset, info.input_format)
