"""Retry and timeout primitives for the fault-tolerant execution layer.

The surveyed frameworks (BigOP, the state-of-the-art survey) stress that
comparing systems fairly under stress requires *controlled* failure
behavior: a misbehaving system must not silently distort the batch, and
every recovery decision must be reproducible.  This module supplies the
two deterministic building blocks the runner applies uniformly on the
serial, thread, and process executor backends:

* :class:`RetryPolicy` — bounded attempts with exponential backoff and
  *seeded* jitter, so two runs of the same batch (on any backend) retry
  at exactly the same simulated moments;
* :func:`call_with_timeout` — a cooperative per-task wall-clock bound.

Neither primitive knows anything about tasks or engines; the runner
(:mod:`repro.execution.runner`) owns the attempt loop and the failure
records.
"""

from __future__ import annotations

import random
import threading
from collections.abc import Callable
from dataclasses import dataclass
from typing import Any, TypeVar

from repro.core.errors import ExecutionError
from repro.observability import Tracer, current_tracer

R = TypeVar("R")

#: The failure policies :meth:`TestRunner.run_many` accepts.
ON_ERROR_POLICIES = ("abort", "continue")


class TaskTimeoutError(ExecutionError):
    """A task exceeded its per-task wall-clock budget and was abandoned."""


@dataclass(frozen=True)
class RetryPolicy:
    """Deterministic bounded-retry policy for one batch of tasks.

    ``max_attempts`` counts every try including the first; a policy with
    ``max_attempts=1`` never retries.  Backoff before attempt *n* (the
    n-th being 2-based) grows exponentially from ``backoff_seconds`` by
    ``backoff_factor`` and is clamped to ``max_backoff_seconds``.

    Jitter is *seeded*: the perturbation applied before a given attempt
    of a given task is a pure function of ``(seed, task key, attempt)``,
    so serial, thread, and process backends sleep the same schedule and
    a rerun of the batch is bit-identical in its retry behavior.

    ``retryable`` filters which exception types are worth another
    attempt; anything else fails the task immediately (but is still
    captured, not lost, under ``on_error="continue"``).
    """

    max_attempts: int = 1
    backoff_seconds: float = 0.0
    backoff_factor: float = 2.0
    max_backoff_seconds: float = 30.0
    #: Symmetric jitter fraction (0.1 → ±10% of the base delay).
    jitter: float = 0.1
    seed: int = 0
    retryable: tuple[type[BaseException], ...] = (Exception,)

    def __post_init__(self) -> None:
        if self.max_attempts <= 0:
            raise ExecutionError(
                f"max_attempts must be positive, got {self.max_attempts}"
            )
        if self.backoff_seconds < 0:
            raise ExecutionError(
                f"backoff_seconds must be non-negative, got "
                f"{self.backoff_seconds}"
            )
        if self.backoff_factor < 1.0:
            raise ExecutionError(
                f"backoff_factor must be at least 1, got {self.backoff_factor}"
            )
        if not 0.0 <= self.jitter < 1.0:
            raise ExecutionError(
                f"jitter must be in [0, 1), got {self.jitter}"
            )

    def should_retry(self, error: BaseException, attempt: int) -> bool:
        """Whether the ``attempt``-th try (1-based) deserves another."""
        if attempt >= self.max_attempts:
            return False
        return isinstance(error, self.retryable)

    def delay(self, failed_attempt: int, key: str = "") -> float:
        """Seconds to wait after the ``failed_attempt``-th try (1-based).

        Deterministic: the same ``(seed, key, failed_attempt)`` always
        produces the same delay, in any thread or process.
        """
        if self.backoff_seconds <= 0:
            return 0.0
        base = self.backoff_seconds * self.backoff_factor ** (failed_attempt - 1)
        base = min(base, self.max_backoff_seconds)
        if not self.jitter:
            return base
        # random.Random seeds strings through SHA-512 (seeding version 2),
        # so the jitter stream is identical across processes regardless
        # of PYTHONHASHSEED.
        rng = random.Random(f"{self.seed}|{key}|{failed_attempt}")
        return base * (1.0 + self.jitter * (2.0 * rng.random() - 1.0))


def call_with_timeout(
    fn: Callable[[], R], timeout: float | None
) -> R:
    """Run ``fn`` bounded by ``timeout`` seconds of wall-clock time.

    Without a timeout this is a plain call.  With one, ``fn`` runs in a
    dedicated daemon thread; on expiry the thread is *abandoned* (pure
    Python cannot safely kill it) and :class:`TaskTimeoutError` is
    raised — the simulator's honest stand-in for killing a hung task.

    Tracing survives the thread hop: spans ``fn`` records in the helper
    thread are grafted back under the caller's current span, so a timed
    task renders the same tree as an untimed one.
    """
    if timeout is None:
        return fn()
    if timeout <= 0:
        raise ExecutionError(f"timeout must be positive, got {timeout}")
    tracer = current_tracer()
    local = Tracer() if tracer.enabled else None
    holder: dict[str, Any] = {}

    def target() -> None:
        try:
            if local is not None:
                with local.activate():
                    holder["result"] = fn()
            else:
                holder["result"] = fn()
        except BaseException as error:  # noqa: BLE001 — re-raised below
            holder["error"] = error

    thread = threading.Thread(
        target=target, daemon=True, name="repro-task-timeout"
    )
    thread.start()
    thread.join(timeout)
    if local is not None:
        # Adopt whatever the helper finished recording — even a timed-out
        # task keeps the spans of the work it completed.
        tracer.graft(local.roots())
    if thread.is_alive():
        raise TaskTimeoutError(
            f"task exceeded its {timeout:.3f}s budget and was abandoned"
        )
    if "error" in holder:
        raise holder["error"]
    return holder["result"]
