"""The three-layer architecture (Figure 2).

* :class:`UserInterfaceLayer` — helps system owners specify requirements:
  browse prescriptions/domains/engines/metrics, build and validate specs.
* :class:`FunctionLayer` — data generators, the test generator, and the
  metric taxonomy.
* :class:`ExecutionLayer` — system configuration tools, format
  conversion, the runner, and the result analyzer/reporter.

:class:`BigDataBenchmark` wires the three layers into the single facade a
user needs: ``BigDataBenchmark().run(spec)``.
"""

from __future__ import annotations

from typing import Any

from repro.core import registry
from repro.core.metrics import MetricSuite
from repro.core.prescription import (
    Prescription,
    PrescriptionRepository,
    builtin_repository,
)
from repro.core.process import BenchmarkingProcess, ProcessReport
from repro.core.results import RunResult
from repro.core.spec import BenchmarkSpec
from repro.core.test_generator import TestGenerator
from repro.datagen.base import DataSet
from repro.datagen.formats import available_formats, convert
from repro.execution.config import SystemConfiguration, default_configurations
from repro.execution.report import render_results
from repro.execution.runner import TestRunner
from repro.observability import Tracer


class UserInterfaceLayer:
    """Interfaces for specifying benchmarking requirements."""

    def __init__(self, repository: PrescriptionRepository) -> None:
        self.repository = repository

    def available_prescriptions(self) -> list[str]:
        return self.repository.names()

    def available_domains(self) -> list[str]:
        return self.repository.domains()

    def available_engines(self) -> list[str]:
        return registry.engines.names()

    def available_generators(self) -> list[str]:
        return registry.generators.names()

    def available_workloads(self) -> list[str]:
        return registry.workloads.names()

    def build_spec(self, prescription: str, **options: Any) -> BenchmarkSpec:
        """Build and validate a spec in one call."""
        spec = BenchmarkSpec(prescription=prescription, **options)
        spec.validate(self.repository)
        return spec


class FunctionLayer:
    """Data generators, test generator, and metrics (Figure 2, middle)."""

    def __init__(self, repository: PrescriptionRepository) -> None:
        self.test_generator = TestGenerator(repository)
        self.metric_suite = MetricSuite.standard()

    def generate_data(
        self, generator_name: str, volume: int, fit_on: str | None = None
    ) -> DataSet:
        """Directly drive one registered data generator."""
        from repro.core.prescription import load_seed

        generator = registry.generators.create(generator_name)
        if fit_on is not None:
            generator.fit(load_seed(fit_on))
        return generator.generate(volume)

    def describe_metrics(self) -> list[str]:
        return [metric.describe() for metric in self.metric_suite.metrics]


class ExecutionLayer:
    """Configuration, format conversion, running, reporting."""

    def __init__(self, test_generator: TestGenerator) -> None:
        self.configurations: dict[str, SystemConfiguration] = (
            default_configurations()
        )
        self.runner = TestRunner(
            test_generator=test_generator, configurations=self.configurations
        )

    def convert_format(self, dataset: DataSet, format_name: str):
        return convert(dataset, format_name)

    def available_formats(self) -> list[str]:
        return available_formats()

    def report(self, results: list[RunResult], metric_names: list[str],
               style: str = "ascii") -> str:
        return render_results(results, style=style, metrics=metric_names)

    def report_json(self, results: list[RunResult]) -> str:
        return render_results(results, style="json")


class BigDataBenchmark:
    """The assembled three-layer benchmark (the paper's Figure 2)."""

    def __init__(self, repository: PrescriptionRepository | None = None) -> None:
        self.repository = repository or builtin_repository()
        self.user_interface = UserInterfaceLayer(self.repository)
        self.function_layer = FunctionLayer(self.repository)
        self.execution_layer = ExecutionLayer(self.function_layer.test_generator)
        self._process = BenchmarkingProcess(
            self.repository, self.function_layer.test_generator
        )

    def run(
        self,
        spec: BenchmarkSpec | str,
        tracer: Tracer | None = None,
        **options: Any,
    ) -> ProcessReport:
        """Run a spec (or prescription name) through the five-step process.

        Pass a :class:`~repro.observability.Tracer` to record the run's
        span tree (one span per Figure-1 step, with executor, engine,
        and cache detail nested beneath).
        """
        if isinstance(spec, str):
            spec = self.user_interface.build_spec(spec, **options)
        return self._process.execute(spec, tracer=tracer)

    def prescription(self, name: str) -> Prescription:
        return self.repository.get(name)
