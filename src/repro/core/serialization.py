"""Prescription (de)serialization.

Section 5.2 asks for "a repository of reusable prescriptions to simplify
the generation of prescribed tests".  Reuse across teams means files:
this module round-trips prescriptions (and whole repositories) through a
plain-JSON representation, so a prescription authored on one machine runs
anywhere the referenced generator and workload are registered.

Patterns serialize structurally: single/multi patterns by their operation
lists; iterative patterns by body + stopping condition (fixed count or
convergence tolerance/cap).
"""

from __future__ import annotations

import json
from typing import Any

from repro.core.errors import TestGenerationError
from repro.core.operations import operation
from repro.core.patterns import (
    ConvergenceCondition,
    FixedIterations,
    IterativeOperationPattern,
    MultiOperationPattern,
    SingleOperationPattern,
    WorkloadPattern,
)
from repro.core.prescription import (
    DataRequirement,
    Prescription,
    PrescriptionRepository,
)
from repro.datagen.base import DataType


def _data_type_by_label(label: str) -> DataType:
    for data_type in DataType:
        if data_type.label == label:
            return data_type
    raise TestGenerationError(
        f"unknown data type {label!r}; "
        f"known: {[dt.label for dt in DataType]}"
    )


def pattern_to_dict(pattern: WorkloadPattern) -> dict[str, Any]:
    """Structural encoding of any of the three workload patterns."""
    if isinstance(pattern, SingleOperationPattern):
        return {"kind": "single-operation",
                "operation": pattern.operation.name}
    if isinstance(pattern, MultiOperationPattern):
        return {"kind": "multi-operation",
                "operations": [op.name for op in pattern.operations]}
    if isinstance(pattern, IterativeOperationPattern):
        condition = pattern.stopping_condition
        if isinstance(condition, FixedIterations):
            stop: dict[str, Any] = {"kind": "fixed", "count": condition.count}
        elif isinstance(condition, ConvergenceCondition):
            stop = {
                "kind": "convergence",
                "tolerance": condition.tolerance,
                "max_iterations": condition.max_iterations,
            }
        else:
            raise TestGenerationError(
                f"cannot serialize stopping condition "
                f"{type(condition).__name__}"
            )
        return {
            "kind": "iterative-operation",
            "body": [op.name for op in pattern.body],
            "stop": stop,
        }
    raise TestGenerationError(
        f"cannot serialize pattern {type(pattern).__name__}"
    )


def pattern_from_dict(payload: dict[str, Any]) -> WorkloadPattern:
    """Inverse of :func:`pattern_to_dict`."""
    kind = payload.get("kind")
    if kind == "single-operation":
        return SingleOperationPattern(operation(payload["operation"]))
    if kind == "multi-operation":
        return MultiOperationPattern(
            [operation(name) for name in payload["operations"]]
        )
    if kind == "iterative-operation":
        stop = payload["stop"]
        if stop["kind"] == "fixed":
            condition: Any = FixedIterations(stop["count"])
        elif stop["kind"] == "convergence":
            condition = ConvergenceCondition(
                tolerance=stop["tolerance"],
                max_iterations=stop["max_iterations"],
            )
        else:
            raise TestGenerationError(
                f"unknown stopping condition kind {stop['kind']!r}"
            )
        return IterativeOperationPattern(
            [operation(name) for name in payload["body"]], condition
        )
    raise TestGenerationError(f"unknown pattern kind {kind!r}")


def prescription_to_dict(prescription: Prescription) -> dict[str, Any]:
    """A JSON-safe encoding of one prescription."""
    return {
        "name": prescription.name,
        "domain": prescription.domain,
        "data": {
            "generator": prescription.data.generator,
            "data_type": prescription.data.data_type.label,
            "volume": prescription.data.volume,
            "num_partitions": prescription.data.num_partitions,
            "fit_on": prescription.data.fit_on,
        },
        "operations": [op.name for op in prescription.operations],
        "pattern": pattern_to_dict(prescription.pattern),
        "workload": prescription.workload,
        "metrics": list(prescription.metric_names),
        "params": dict(prescription.params),
    }


def prescription_from_dict(payload: dict[str, Any]) -> Prescription:
    """Inverse of :func:`prescription_to_dict`."""
    try:
        data = payload["data"]
        return Prescription(
            name=payload["name"],
            domain=payload["domain"],
            data=DataRequirement(
                generator=data["generator"],
                data_type=_data_type_by_label(data["data_type"]),
                volume=data["volume"],
                num_partitions=data.get("num_partitions", 1),
                fit_on=data.get("fit_on"),
            ),
            operations=[operation(name) for name in payload["operations"]],
            pattern=pattern_from_dict(payload["pattern"]),
            workload=payload["workload"],
            metric_names=list(payload.get("metrics", [])),
            params=dict(payload.get("params", {})),
        )
    except KeyError as missing:
        raise TestGenerationError(
            f"prescription payload is missing {missing}"
        ) from None


def repository_to_json(repository: PrescriptionRepository) -> str:
    """Serialize every prescription in a repository."""
    return json.dumps(
        [
            prescription_to_dict(repository.get(name))
            for name in repository.names()
        ],
        indent=2,
        sort_keys=True,
    )


def repository_from_json(text: str) -> PrescriptionRepository:
    """Load a repository from its JSON form."""
    repository = PrescriptionRepository()
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as error:
        raise TestGenerationError(f"invalid repository JSON: {error}") from None
    if not isinstance(payload, list):
        raise TestGenerationError("repository JSON must be a list")
    for entry in payload:
        repository.add(prescription_from_dict(entry))
    return repository
