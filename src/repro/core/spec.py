"""Benchmark specifications (the User Interface Layer, Figure 2).

A :class:`BenchmarkSpec` is what a system owner writes: which
prescription (or domain), which engines, the preferred data volume and
velocity, which metrics, and how many repeats.  Validation happens
eagerly so misconfiguration fails at the Planning step, not mid-run.
"""

from __future__ import annotations

import os
from collections.abc import Callable
from dataclasses import dataclass, field, fields
from typing import Any

from repro.core import registry
from repro.core.errors import SpecError
from repro.core.prescription import PrescriptionRepository

#: The schema version :meth:`BenchmarkSpec.as_dict` stamps on every
#: serialized spec.  Version 1 is the historical, implicitly-versioned
#: schema (payloads with no ``spec_version`` field — e.g. specs embedded
#: in job logs or run-store sidecars written before versioning landed);
#: version 2 added the explicit field; version 3 added the ``tuning``
#: profile name (v2 payloads load as ``"normal"``).  Bump this when a
#: field is renamed or its meaning changes, and register a migration.
SPEC_VERSION = 3

#: Migration hooks: ``version -> fn(payload) -> payload`` upgrading a
#: serialized spec from ``version`` to ``version + 1``.
_SPEC_MIGRATIONS: dict[int, Callable[[dict[str, Any]], dict[str, Any]]] = {}


def register_spec_migration(
    version: int, migrate: Callable[[dict[str, Any]], dict[str, Any]]
) -> None:
    """Register the payload migration from ``version`` to ``version + 1``.

    :meth:`BenchmarkSpec.from_dict` chains registered migrations until
    the payload reaches :data:`SPEC_VERSION`, so stored jobs and
    recorded specs keep round-tripping across future schema changes.
    Registering a version twice raises (a silent overwrite would make
    stored-spec decoding depend on import order).
    """
    if version in _SPEC_MIGRATIONS:
        raise SpecError(
            f"a spec migration for version {version} is already registered"
        )
    _SPEC_MIGRATIONS[version] = migrate


def _migrate_v1(payload: dict[str, Any]) -> dict[str, Any]:
    """Version 1 → 2: the pre-versioning schema.

    Early serializations (CLI-era job sketches) spelled the engine list
    as a single ``"engine"`` string; normalize it, and accept a bare
    string under ``"engines"`` too.
    """
    payload = dict(payload)
    engine = payload.pop("engine", None)
    if engine is not None and "engines" not in payload:
        payload["engines"] = [engine] if isinstance(engine, str) else engine
    if isinstance(payload.get("engines"), str):
        payload["engines"] = [payload["engines"]]
    return payload


register_spec_migration(1, _migrate_v1)


def _migrate_v2(payload: dict[str, Any]) -> dict[str, Any]:
    """Version 2 → 3: the pre-tuning schema.

    Every spec serialized before tuning profiles existed ran bare
    engines — exactly what the ``normal`` profile means — so the
    migration just makes that explicit.
    """
    payload = dict(payload)
    payload.setdefault("tuning", "normal")
    return payload


register_spec_migration(2, _migrate_v2)


def _env_chunk_size() -> int | None:
    """Default chunk size from ``REPRO_CHUNK_SIZE`` (unset/empty = None).

    Mirrors the ``REPRO_EXECUTOR`` pattern: the environment sets a
    session-wide default, an explicit spec field still wins.  A non-int
    value is rejected here so the failure happens at spec construction,
    not mid-run.
    """
    raw = os.environ.get("REPRO_CHUNK_SIZE", "").strip()
    if not raw:
        return None
    try:
        return int(raw)
    except ValueError:
        raise SpecError(
            f"REPRO_CHUNK_SIZE must be an integer, got {raw!r}"
        ) from None


@dataclass
class BenchmarkSpec:
    """A user's benchmarking requirements."""

    #: Name of a prescription in the repository.
    prescription: str
    #: Engines to run on; empty means every engine the workload supports.
    engines: list[str] = field(default_factory=list)
    #: Override of the prescription's data volume (generator-native units).
    volume: int | None = None
    #: Parallel generator partitions (data velocity, mechanism 1).
    data_partitions: int = 1
    #: Record-batch size for the streaming data path.  When set, data
    #: flows from the generator to the workload as RecordBatch chunks of
    #: this many records (bounded memory); None keeps the historical
    #: materialize-then-run path.  ``REPRO_CHUNK_SIZE`` supplies the
    #: default, like ``REPRO_EXECUTOR`` does for ``executor``.
    chunk_size: int | None = field(default_factory=_env_chunk_size)
    #: Metric names to report; empty means the prescription's defaults.
    metric_names: list[str] = field(default_factory=list)
    repeats: int = 1
    #: Workload parameter overrides.
    params: dict = field(default_factory=dict)
    #: Fan-out backend for independent runs: "serial", "thread",
    #: "process" (the ``REPRO_EXECUTOR`` environment variable overrides
    #: the serial default; see ``repro.execution.parallel``).
    executor: str = field(
        default_factory=lambda: os.environ.get("REPRO_EXECUTOR", "serial")
    )
    #: Worker count for the pooled executor backends; None = one per CPU.
    max_workers: int | None = None
    #: Process backend only: keep a warm worker pool alive across the
    #: run's batches (workers initialize once, tasks ship as lightweight
    #: descriptors).  False restores the cold per-task-payload path.
    warm_pool: bool = True
    #: Failure policy: "abort" (fail-fast) or "continue" (capture
    #: per-task failures, keep completed results).
    on_error: str = "abort"
    #: Extra attempts per task after the first (0 = never retry).
    retries: int = 0
    #: Base backoff before the second attempt; grows exponentially with
    #: deterministic seeded jitter.
    retry_backoff: float = 0.0
    #: Wall-clock budget per task attempt, in seconds (None = unbounded).
    task_timeout: float | None = None
    #: Record this run's outcomes into the persistent run store (see
    #: :mod:`repro.analysis.store`).  Recording also turns on whenever
    #: ``store_dir`` (or ``REPRO_STORE_DIR``) names a store.
    record: bool = False
    #: Run-store directory; None defers to ``REPRO_STORE_DIR`` (whose
    #: presence alone enables recording), else ``.repro-runs``.
    store_dir: str | None = field(
        default_factory=lambda: os.environ.get("REPRO_STORE_DIR", "").strip()
        or None
    )
    #: Synthetic per-execution latency in seconds, injected through the
    #: seeded fault substrate (:mod:`repro.engines.faults`).  Simulates
    #: "the code got slower" without changing the spec fingerprint —
    #: the knob the regression-gate CI job uses to prove the gate trips.
    inject_latency: float | None = None
    #: Execution layout: "row" (the historical tuple-at-a-time path) or
    #: "columnar" (batch-at-a-time vectorized operators on the DBMS and
    #: per-partition combiner batching on MapReduce).  The default is
    #: version-safe: old serialized specs simply get "row".
    layout: str = "row"
    #: Tuning profile name applied to every resolved engine: "normal"
    #: (bare engines — the historical behavior and what v2 payloads
    #: migrate to), "optimized", or a per-knob one-off spelled
    #: "normal+<knob>" (see :mod:`repro.tuning.profiles`).  Non-normal
    #: profiles fork the run-store series via the spec fingerprint.
    tuning: str = "normal"

    @property
    def should_record(self) -> bool:
        """Whether this run's outcomes land in the run store."""
        return self.record or self.store_dir is not None

    # -- serialization (versioned) ----------------------------------------

    def as_dict(self) -> dict[str, Any]:
        """A JSON-friendly payload stamped with :data:`SPEC_VERSION`.

        Everything the spec carries, with containers copied so mutating
        the payload never aliases the live spec.  The inverse of
        :meth:`from_dict`, round-tripping exactly.
        """
        payload: dict[str, Any] = {"spec_version": SPEC_VERSION}
        for spec_field in fields(self):
            value = getattr(self, spec_field.name)
            if isinstance(value, (list, dict)):
                value = type(value)(value)
            payload[spec_field.name] = value
        return payload

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "BenchmarkSpec":
        """Rebuild a spec from a serialized payload of any known version.

        A payload without ``spec_version`` is the historical version-1
        schema; older versions are upgraded through the registered
        migration chain (see :func:`register_spec_migration`) before
        construction, so job logs and exported specs written by earlier
        releases keep loading.  Unknown keys that survive migration are
        rejected — a typo'd field silently ignored would mean a spec
        that runs the wrong benchmark.
        """
        payload = dict(payload)
        raw_version = payload.pop("spec_version", 1)
        try:
            version = int(raw_version)
        except (TypeError, ValueError):
            raise SpecError(
                f"spec_version must be an integer, got {raw_version!r}"
            ) from None
        if version > SPEC_VERSION:
            raise SpecError(
                f"spec_version {version} is newer than this release "
                f"understands (latest: {SPEC_VERSION})"
            )
        while version < SPEC_VERSION:
            migrate = _SPEC_MIGRATIONS.get(version)
            if migrate is None:
                raise SpecError(
                    f"no migration registered from spec_version {version}"
                )
            payload = dict(migrate(payload))
            version += 1
        known = {spec_field.name for spec_field in fields(cls)}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise SpecError(
                f"spec payload has unknown field(s) {unknown} "
                f"after migration to version {SPEC_VERSION}"
            )
        if "prescription" not in payload:
            raise SpecError("spec payload is missing 'prescription'")
        return cls(**payload)

    def validate(self, repository: PrescriptionRepository) -> None:
        """Raise :class:`SpecError` on any inconsistency."""
        if self.prescription not in repository:
            raise SpecError(
                f"unknown prescription {self.prescription!r}; "
                f"available: {repository.names()}"
            )
        if self.volume is not None and self.volume < 0:
            raise SpecError(f"volume must be non-negative, got {self.volume}")
        if self.data_partitions <= 0:
            raise SpecError(
                f"data_partitions must be positive, got {self.data_partitions}"
            )
        if self.chunk_size is not None and self.chunk_size <= 0:
            raise SpecError(
                f"chunk_size must be positive, got {self.chunk_size}"
            )
        if self.repeats <= 0:
            raise SpecError(f"repeats must be positive, got {self.repeats}")
        # Imported lazily: core.spec must not pull the execution package
        # in at import time.
        from repro.execution.parallel import EXECUTOR_BACKENDS
        from repro.execution.retry import ON_ERROR_POLICIES

        if self.executor not in EXECUTOR_BACKENDS:
            raise SpecError(
                f"unknown executor backend {self.executor!r}; "
                f"available: {', '.join(EXECUTOR_BACKENDS)}"
            )
        if self.max_workers is not None and self.max_workers <= 0:
            raise SpecError(
                f"max_workers must be positive, got {self.max_workers}"
            )
        if self.on_error not in ON_ERROR_POLICIES:
            raise SpecError(
                f"unknown on_error policy {self.on_error!r}; "
                f"available: {', '.join(ON_ERROR_POLICIES)}"
            )
        if self.retries < 0:
            raise SpecError(
                f"retries must be non-negative, got {self.retries}"
            )
        if self.retry_backoff < 0:
            raise SpecError(
                f"retry_backoff must be non-negative, got {self.retry_backoff}"
            )
        if self.task_timeout is not None and self.task_timeout <= 0:
            raise SpecError(
                f"task_timeout must be positive, got {self.task_timeout}"
            )
        if self.inject_latency is not None and self.inject_latency < 0:
            raise SpecError(
                f"inject_latency must be non-negative, got "
                f"{self.inject_latency}"
            )
        if self.layout not in ("row", "columnar"):
            raise SpecError(
                f"layout must be 'row' or 'columnar', got {self.layout!r}"
            )
        prescription = repository.get(self.prescription)
        workload_name = prescription.workload
        if workload_name not in registry.workloads:
            raise SpecError(
                f"prescription {self.prescription!r} references unregistered "
                f"workload {workload_name!r}"
            )
        workload = registry.workloads.create(workload_name)
        for engine_name in self.engines:
            if engine_name not in registry.engines:
                raise SpecError(
                    f"unknown engine {engine_name!r}; "
                    f"available: {registry.engines.names()}"
                )
            if not workload.supports(engine_name):
                raise SpecError(
                    f"workload {workload_name!r} does not support engine "
                    f"{engine_name!r}; supported: {workload.supported_engines()}"
                )
        if self.tuning != "normal":
            # TuningError subclasses SpecError, so an unknown or
            # unbuildable profile fails spec validation like any other
            # bad field.  Imported lazily: core.spec must not pull the
            # tuning package in at import time.
            from repro.tuning.profiles import get_profile

            for engine_name in self.resolved_engines(repository):
                get_profile(engine_name, self.tuning)

    def resolved_engines(self, repository: PrescriptionRepository) -> list[str]:
        """The engines to run on, defaulting to all supported ones."""
        if self.engines:
            return list(self.engines)
        prescription = repository.get(self.prescription)
        workload = registry.workloads.create(prescription.workload)
        return [
            engine_name
            for engine_name in workload.supported_engines()
            if engine_name in registry.engines
        ]
