"""Heterogeneous hardware platform evaluation (Section 5.2).

The paper proposes extending big data benchmarks to "state-of-the-practice
heterogeneous platforms" (Xeon+GPGPU, Xeon+MIC) through "a uniform
interface to enable [an] application running in different platforms",
with the evaluation expected to show:

1. whether any platform consistently wins **both** performance and energy
   efficiency across all big data applications, and
2. which platform suits each application class.

This module implements that evaluation over *simulated* platforms (the
DESIGN.md §2 substitution for accelerator hardware).  A platform is an
Amdahl model: a workload's *accelerable fraction* runs ``speedup``×
faster on the accelerator while the rest stays on the host; power is the
host's plus the accelerator's.  Accelerable fractions are declared per
workload (dense numeric kernels like k-means are highly accelerable;
irregular pointer-chasing like sort/grep barely).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.errors import MetricError
from repro.workloads.base import WorkloadResult


@dataclass(frozen=True)
class PlatformSpec:
    """One simulated hardware platform."""

    name: str
    #: Speedup of the accelerable fraction (1.0 = no accelerator).
    accelerator_speedup: float
    #: Host power draw in watts.
    host_watts: float
    #: Extra power the accelerator draws whenever the node is on.
    accelerator_watts: float

    @property
    def total_watts(self) -> float:
        return self.host_watts + self.accelerator_watts


#: The platforms Section 5.2 names, as simulated models.  The accelerator
#: numbers follow the era's published shapes: big speedups on dense
#: numeric kernels, large additional power draw.
STANDARD_PLATFORMS: tuple[PlatformSpec, ...] = (
    PlatformSpec("Xeon (CPU only)", accelerator_speedup=1.0,
                 host_watts=130.0, accelerator_watts=0.0),
    PlatformSpec("Xeon+GPGPU", accelerator_speedup=12.0,
                 host_watts=130.0, accelerator_watts=250.0),
    PlatformSpec("Xeon+MIC", accelerator_speedup=6.0,
                 host_watts=130.0, accelerator_watts=210.0),
)


#: workload name → fraction of its time in accelerable numeric kernels.
#: Dense linear-algebra-ish workloads accelerate well; shuffles, string
#: handling, and serving operations do not.
ACCELERABLE_FRACTIONS: dict[str, float] = {
    "kmeans": 0.90,
    "naive-bayes": 0.75,
    "pagerank": 0.70,
    "collaborative-filtering": 0.65,
    "connected-components": 0.40,
    "terasort": 0.30,
    "sort": 0.25,
    "wordcount": 0.25,
    "inverted-index": 0.25,
    "grep": 0.15,
    "relational-query": 0.20,
    "count-url-links": 0.20,
    "ycsb": 0.05,
    "hybrid": 0.05,
    "cfs": 0.02,
    "windowed-aggregation": 0.30,
    "rolling-update-rate": 0.25,
}


def accelerable_fraction(workload_name: str) -> float:
    """The declared accelerable fraction of a workload (default 0.2)."""
    return ACCELERABLE_FRACTIONS.get(workload_name, 0.2)


@dataclass
class PlatformProjection:
    """One workload's projected behaviour on one platform."""

    workload: str
    platform: str
    seconds: float
    energy_joules: float

    @property
    def performance_per_watt(self) -> float:
        if self.energy_joules <= 0:
            return float("inf")
        return 1.0 / self.energy_joules


def project(
    result: WorkloadResult,
    platform: PlatformSpec,
    fraction: float | None = None,
) -> PlatformProjection:
    """Project a measured workload run onto a platform (Amdahl model)."""
    baseline = result.simulated_seconds or result.duration_seconds
    if baseline <= 0:
        raise MetricError(
            f"workload {result.workload!r} has no measured time to project"
        )
    if fraction is None:
        fraction = accelerable_fraction(result.workload)
    if not 0.0 <= fraction <= 1.0:
        raise MetricError(f"fraction must be in [0, 1], got {fraction}")
    seconds = baseline * (
        (1.0 - fraction) + fraction / platform.accelerator_speedup
    )
    energy = platform.total_watts * seconds
    return PlatformProjection(
        workload=result.workload,
        platform=platform.name,
        seconds=seconds,
        energy_joules=energy,
    )


@dataclass
class PlatformEvaluation:
    """The Section 5.2 evaluation over workloads × platforms."""

    projections: list[PlatformProjection] = field(default_factory=list)

    def add(self, result: WorkloadResult,
            platforms: tuple[PlatformSpec, ...] = STANDARD_PLATFORMS) -> None:
        for platform in platforms:
            self.projections.append(project(result, platform))

    def workloads(self) -> list[str]:
        return sorted({p.workload for p in self.projections})

    def platforms(self) -> list[str]:
        return sorted({p.platform for p in self.projections})

    def _by_workload(self, workload: str) -> list[PlatformProjection]:
        return [p for p in self.projections if p.workload == workload]

    def best_performance(self, workload: str) -> PlatformProjection:
        candidates = self._by_workload(workload)
        if not candidates:
            raise MetricError(f"no projections for workload {workload!r}")
        return min(candidates, key=lambda p: p.seconds)

    def best_energy(self, workload: str) -> PlatformProjection:
        candidates = self._by_workload(workload)
        if not candidates:
            raise MetricError(f"no projections for workload {workload!r}")
        return min(candidates, key=lambda p: p.energy_joules)

    def consistent_winner(self) -> str | None:
        """Question (1): a platform winning BOTH metrics for ALL workloads.

        Returns the platform name, or None (the paper's expected answer).
        """
        winner: str | None = None
        for workload in self.workloads():
            best_perf = self.best_performance(workload).platform
            best_energy = self.best_energy(workload).platform
            if best_perf != best_energy:
                return None
            if winner is None:
                winner = best_perf
            elif winner != best_perf:
                return None
        return winner

    def per_class_recommendation(self) -> dict[str, dict[str, str]]:
        """Question (2): the right platform per application/workload."""
        return {
            workload: {
                "performance": self.best_performance(workload).platform,
                "energy": self.best_energy(workload).platform,
            }
            for workload in self.workloads()
        }

    def rows(self) -> list[dict[str, object]]:
        """Flat rows for reporting."""
        return [
            {
                "workload": p.workload,
                "platform": p.platform,
                "seconds": p.seconds,
                "energy (J)": p.energy_joules,
            }
            for p in self.projections
        ]
