"""Abstract operations (Section 3.3, functional view).

Operations are the system-independent processing actions a workload is
built from.  Following the paper, they are categorised by the number of
data sets they process: *element* operations touch individual records,
*single-set* operations transform one data set, and *double-set*
operations combine two.

The standard catalogue below covers every operation named in the paper's
Tables 1–2 discussion (select, put, get, delete, read, write, update,
scan, sort, grep, count, aggregate, join, …).  Concrete engines bind
these names to implementations through the workload layer — the same
abstract test can therefore run on a DBMS and a MapReduce system, which
is exactly the comparison the functional view exists to allow.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.core.errors import UnknownOperationError


class OperationCategory(enum.Enum):
    """The paper's three operation arities."""

    ELEMENT = "element"
    SINGLE_SET = "single-set"
    DOUBLE_SET = "double-set"


@dataclass(frozen=True)
class AbstractOperation:
    """A named, system-independent data-processing action."""

    name: str
    category: OperationCategory
    description: str = ""

    def __str__(self) -> str:
        return self.name


def _catalogue() -> dict[str, AbstractOperation]:
    element = OperationCategory.ELEMENT
    single = OperationCategory.SINGLE_SET
    double = OperationCategory.DOUBLE_SET
    operations = [
        # Element operations: act on one record/element at a time.
        AbstractOperation("get", element, "fetch one element by key"),
        AbstractOperation("put", element, "store one element by key"),
        AbstractOperation("read", element, "read one record"),
        AbstractOperation("write", element, "write one record"),
        AbstractOperation("update", element, "modify one existing record"),
        AbstractOperation("delete", element, "remove one record"),
        AbstractOperation("insert", element, "add one new record"),
        # Single-set operations: transform one data set.
        AbstractOperation("select", single, "filter a set by a predicate"),
        AbstractOperation("project", single, "keep a subset of attributes"),
        AbstractOperation("scan", single, "enumerate a range of a set"),
        AbstractOperation("sort", single, "order a set by key"),
        AbstractOperation("grep", single, "match records against a pattern"),
        AbstractOperation("count", single, "count records or groups"),
        AbstractOperation("aggregate", single, "group and summarise a set"),
        AbstractOperation("sample", single, "draw a random subset"),
        AbstractOperation("transform", single, "apply a function per record"),
        AbstractOperation("cluster", single, "group records by similarity"),
        AbstractOperation("classify", single, "assign labels from a model"),
        AbstractOperation("rank", single, "score records (e.g. PageRank)"),
        AbstractOperation("index", single, "build an index over a set"),
        AbstractOperation("window", single, "aggregate over time windows"),
        # Double-set operations: combine two data sets.
        AbstractOperation("join", double, "combine two sets on a key"),
        AbstractOperation("union", double, "merge two sets"),
        AbstractOperation("difference", double, "subtract one set from another"),
        AbstractOperation("cross", double, "pair records across two sets"),
        AbstractOperation("recommend", double, "match users against items"),
    ]
    return {operation.name: operation for operation in operations}


#: The framework's standard operation catalogue.
STANDARD_OPERATIONS: dict[str, AbstractOperation] = _catalogue()


def operation(name: str) -> AbstractOperation:
    """Look up a standard operation by name."""
    try:
        return STANDARD_OPERATIONS[name]
    except KeyError:
        raise UnknownOperationError(
            f"unknown abstract operation {name!r}; "
            f"known: {sorted(STANDARD_OPERATIONS)}"
        ) from None


def operations(*names: str) -> list[AbstractOperation]:
    """Look up several standard operations at once."""
    return [operation(name) for name in names]


def by_category(category: OperationCategory) -> list[AbstractOperation]:
    """All standard operations of one arity category."""
    return [
        op for op in STANDARD_OPERATIONS.values() if op.category is category
    ]
