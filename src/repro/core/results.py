"""Run results and the result analyzer (Execution layer, Figure 2).

A :class:`RunResult` aggregates the repeated executions of one prescribed
test into metric statistics; :class:`ResultAnalyzer` compares results
across engines or configurations — the paper's example use: "benchmarking
results can identify the performance bottlenecks in big data systems".

Fault tolerance adds a second outcome type: a :class:`TaskFailure` is
the captured record of a task that exhausted its retry budget under the
``on_error="continue"`` policy — the batch keeps its completed results
and reports *what* failed instead of discarding everything.
"""

from __future__ import annotations

import math
import statistics
import traceback
from dataclasses import dataclass, field
from typing import Any

from repro.core.errors import MetricError
from repro.core.metrics import MetricSuite


@dataclass
class MetricStats:
    """Across-repeat statistics of one metric."""

    name: str
    samples: list[float]

    @property
    def mean(self) -> float:
        return statistics.fmean(self.samples)

    @property
    def minimum(self) -> float:
        return min(self.samples)

    @property
    def maximum(self) -> float:
        return max(self.samples)

    @property
    def stdev(self) -> float:
        if len(self.samples) < 2:
            return 0.0
        return statistics.stdev(self.samples)

    def percentile(self, q: float) -> float:
        """The q-th percentile by linear interpolation between ranks.

        Small-sample behavior is deliberate: one sample *is* every
        percentile, and with n samples the estimate interpolates
        between the two closest order statistics rather than snapping
        to an extreme — so p99 of a 3-repeat run is near the max, not a
        fabricated tail.
        """
        if not 0 <= q <= 100:
            raise MetricError(f"percentile must be in [0, 100], got {q}")
        if not self.samples:
            raise MetricError(f"metric {self.name!r} has no samples")
        ordered = sorted(self.samples)
        if len(ordered) == 1:
            return ordered[0]
        rank = (len(ordered) - 1) * q / 100.0
        lower = math.floor(rank)
        upper = math.ceil(rank)
        if lower == upper:
            return ordered[lower]
        fraction = rank - lower
        return ordered[lower] * (1.0 - fraction) + ordered[upper] * fraction

    @property
    def p50(self) -> float:
        return self.percentile(50)

    @property
    def p95(self) -> float:
        return self.percentile(95)

    @property
    def p99(self) -> float:
        return self.percentile(99)

    def as_dict(self) -> dict[str, Any]:
        """Full serialization, samples included (round-trippable)."""
        return {
            "mean": self.mean,
            "min": self.minimum,
            "max": self.maximum,
            "stdev": self.stdev,
            "p50": self.p50,
            "p95": self.p95,
            "p99": self.p99,
            "samples": list(self.samples),
        }

    @classmethod
    def from_dict(cls, name: str, payload: dict[str, Any]) -> "MetricStats":
        samples = payload.get("samples")
        if not samples:
            # A summary-only payload (no raw samples): the mean is the
            # best single reconstruction available.
            samples = [payload["mean"]]
        return cls(name, [float(sample) for sample in samples])


@dataclass
class RunResult:
    """The aggregated outcome of one prescribed test across repeats."""

    test_name: str
    workload: str
    engine: str
    repeats: int
    metrics: dict[str, MetricStats] = field(default_factory=dict)
    extra: dict[str, Any] = field(default_factory=dict)

    #: Outcome status.  A result built by the runner is ``"ok"``, but
    #: the field is a real (serializable, round-trippable) field so a
    #: stored record deserialized through :meth:`from_dict` keeps
    #: whatever status it was recorded with — a failed-then-merged
    #: batch must not silently come back as ok.
    status: str = field(default="ok", repr=False)

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def metric(self, name: str) -> MetricStats:
        try:
            return self.metrics[name]
        except KeyError:
            raise MetricError(
                f"run {self.test_name!r} has no metric {name!r}; "
                f"available: {sorted(self.metrics)}"
            ) from None

    def mean(self, name: str) -> float:
        return self.metric(name).mean

    def as_dict(self) -> dict[str, Any]:
        """The JSON-friendly, round-trippable form the run store keeps.

        Metric payloads include the raw samples (not just summary
        statistics) so a stored run can later be compared with full
        statistical power; ``status`` is serialized explicitly so the
        round trip preserves it (see :meth:`from_dict`).
        """
        payload: dict[str, Any] = {
            "test": self.test_name,
            "workload": self.workload,
            "engine": self.engine,
            "repeats": self.repeats,
            "status": self.status,
            "metrics": {
                name: stats.as_dict() for name, stats in self.metrics.items()
            },
        }
        if self.extra:
            payload["extra"] = dict(self.extra)
        return payload

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "RunResult":
        return cls(
            test_name=payload["test"],
            workload=payload.get("workload", ""),
            engine=payload.get("engine", ""),
            repeats=int(payload.get("repeats", 1)),
            metrics={
                name: MetricStats.from_dict(name, stats)
                for name, stats in payload.get("metrics", {}).items()
            },
            extra=dict(payload.get("extra", {})),
            status=payload.get("status", "ok"),
        )

    @classmethod
    def from_workload_results(
        cls,
        test_name: str,
        workload_results: list,
        suite: MetricSuite | None = None,
    ) -> "RunResult":
        """Compute metrics for each repeat and collect the statistics."""
        if not workload_results:
            raise MetricError("cannot build a RunResult from zero runs")
        suite = suite or MetricSuite.standard()
        per_metric: dict[str, list[float]] = {}
        for workload_result in workload_results:
            values = suite.compute_all(workload_result.evidence())
            for name, value in values.items():
                per_metric.setdefault(name, []).append(value)
        first = workload_results[0]
        return cls(
            test_name=test_name,
            workload=first.workload,
            engine=first.engine,
            repeats=len(workload_results),
            metrics={
                name: MetricStats(name, samples)
                for name, samples in per_metric.items()
            },
            extra=dict(first.extra),
        )


@dataclass
class TaskFailure:
    """The captured record of one task that failed every attempt.

    Produced by the runner under ``on_error="continue"`` in place of a
    :class:`RunResult`, holding everything a post-mortem needs: the
    exception type and message, a compact traceback summary, and how
    many attempts the retry policy spent.  Merged in submission order
    alongside successful results, so the batch's shape is preserved.
    """

    test_name: str
    workload: str
    engine: str
    error_type: str
    error_message: str
    traceback_summary: str = ""
    attempts: int = 1
    extra: dict[str, Any] = field(default_factory=dict)

    #: Failed outcomes are always "failed" (see :class:`RunResult`).
    status: str = field(default="failed", init=False, repr=False)

    @property
    def ok(self) -> bool:
        return False

    @property
    def error(self) -> str:
        """One-line ``Type: message`` form for tables and logs."""
        if self.error_message:
            return f"{self.error_type}: {self.error_message}"
        return self.error_type

    def as_dict(self) -> dict[str, Any]:
        """The JSON-friendly form reports embed."""
        payload: dict[str, Any] = {
            "test": self.test_name,
            "workload": self.workload,
            "engine": self.engine,
            "status": self.status,
            "error_type": self.error_type,
            "error_message": self.error_message,
            "attempts": self.attempts,
        }
        if self.traceback_summary:
            payload["traceback"] = self.traceback_summary
        if self.extra:
            payload["extra"] = self.extra
        return payload

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "TaskFailure":
        """Rebuild a captured failure from its :meth:`as_dict` form."""
        return cls(
            test_name=payload["test"],
            workload=payload.get("workload", ""),
            engine=payload.get("engine", ""),
            error_type=payload.get("error_type", "Exception"),
            error_message=payload.get("error_message", ""),
            traceback_summary=payload.get("traceback", ""),
            attempts=int(payload.get("attempts", 1)),
            extra=dict(payload.get("extra", {})),
        )

    @classmethod
    def from_exception(
        cls,
        test_name: str,
        workload: str,
        engine: str,
        error: BaseException,
        attempts: int = 1,
        max_frames: int = 3,
    ) -> "TaskFailure":
        """Capture an exception (innermost ``max_frames`` frames only)."""
        frames = traceback.extract_tb(error.__traceback__)[-max_frames:]
        summary = "; ".join(
            f"{frame.filename.rsplit('/', 1)[-1]}:{frame.lineno} "
            f"in {frame.name}"
            for frame in frames
        )
        return cls(
            test_name=test_name,
            workload=workload,
            engine=engine,
            error_type=type(error).__name__,
            error_message=str(error),
            traceback_summary=summary,
            attempts=attempts,
        )


#: What fan-out entry points return per task: a result or a captured
#: failure (only under ``on_error="continue"``), in submission order.
RunOutcome = "RunResult | TaskFailure"


def outcome_from_dict(payload: dict[str, Any]) -> "RunResult | TaskFailure":
    """Rebuild either outcome type from its serialized form.

    Dispatches on the serialized ``status``: ``"failed"`` payloads come
    back as :class:`TaskFailure`, everything else as
    :class:`RunResult` — with its recorded status preserved, not reset
    to ok.
    """
    if payload.get("status") == "failed":
        return TaskFailure.from_dict(payload)
    return RunResult.from_dict(payload)


def split_outcomes(
    outcomes: list,
) -> tuple[list[RunResult], list[TaskFailure]]:
    """Partition merged outcomes into successes and captured failures."""
    results = [o for o in outcomes if isinstance(o, RunResult)]
    failures = [o for o in outcomes if isinstance(o, TaskFailure)]
    return results, failures


class ResultAnalyzer:
    """Cross-result comparison (who wins, by what factor).

    Accepts mixed outcome lists for convenience: captured failures carry
    no metrics, so analysis silently considers successful results only —
    the degraded-batch semantics the fault-tolerance layer promises.
    """

    def __init__(self, results: list[RunResult]) -> None:
        self.results = [
            result for result in results if isinstance(result, RunResult)
        ]

    def add(self, result: RunResult) -> None:
        self.results.append(result)

    def by_engine(self) -> dict[str, list[RunResult]]:
        grouped: dict[str, list[RunResult]] = {}
        for result in self.results:
            grouped.setdefault(result.engine, []).append(result)
        return grouped

    def ranking(self, metric: str, higher_is_better: bool = True) -> list[RunResult]:
        """Results ordered best-first by one metric's mean."""
        comparable = [r for r in self.results if metric in r.metrics]
        return sorted(
            comparable,
            key=lambda result: result.mean(metric),
            reverse=higher_is_better,
        )

    def speedup(
        self, metric: str, baseline_engine: str, higher_is_better: bool = True
    ) -> dict[str, float]:
        """Per-engine factor relative to a baseline engine's mean."""
        by_engine = self.by_engine()
        if baseline_engine not in by_engine:
            raise MetricError(
                f"no results for baseline engine {baseline_engine!r}; "
                f"engines: {sorted(by_engine)}"
            )
        baseline_values = [
            result.mean(metric)
            for result in by_engine[baseline_engine]
            if metric in result.metrics
        ]
        if not baseline_values:
            raise MetricError(
                f"baseline engine has no samples of metric {metric!r}"
            )
        baseline = statistics.fmean(baseline_values)
        factors: dict[str, float] = {}
        for engine, results in by_engine.items():
            values = [r.mean(metric) for r in results if metric in r.metrics]
            if not values:
                continue
            mean_value = statistics.fmean(values)
            if higher_is_better:
                factors[engine] = mean_value / baseline if baseline else float("inf")
            else:
                factors[engine] = baseline / mean_value if mean_value else float("inf")
        return factors

    def summary_rows(self, metric_names: list[str]) -> list[dict[str, Any]]:
        """Flat rows (one per result) for reporting."""
        rows = []
        for result in self.results:
            row: dict[str, Any] = {
                "test": result.test_name,
                "workload": result.workload,
                "engine": result.engine,
                "repeats": result.repeats,
            }
            for name in metric_names:
                if name in result.metrics:
                    row[name] = result.mean(name)
            rows.append(row)
        return rows
