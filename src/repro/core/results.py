"""Run results and the result analyzer (Execution layer, Figure 2).

A :class:`RunResult` aggregates the repeated executions of one prescribed
test into metric statistics; :class:`ResultAnalyzer` compares results
across engines or configurations — the paper's example use: "benchmarking
results can identify the performance bottlenecks in big data systems".

Fault tolerance adds a second outcome type: a :class:`TaskFailure` is
the captured record of a task that exhausted its retry budget under the
``on_error="continue"`` policy — the batch keeps its completed results
and reports *what* failed instead of discarding everything.
"""

from __future__ import annotations

import statistics
import traceback
from dataclasses import dataclass, field
from typing import Any

from repro.core.errors import MetricError
from repro.core.metrics import MetricSuite


@dataclass
class MetricStats:
    """Across-repeat statistics of one metric."""

    name: str
    samples: list[float]

    @property
    def mean(self) -> float:
        return statistics.fmean(self.samples)

    @property
    def minimum(self) -> float:
        return min(self.samples)

    @property
    def maximum(self) -> float:
        return max(self.samples)

    @property
    def stdev(self) -> float:
        if len(self.samples) < 2:
            return 0.0
        return statistics.stdev(self.samples)


@dataclass
class RunResult:
    """The aggregated outcome of one prescribed test across repeats."""

    test_name: str
    workload: str
    engine: str
    repeats: int
    metrics: dict[str, MetricStats] = field(default_factory=dict)
    extra: dict[str, Any] = field(default_factory=dict)

    #: Successful outcomes are always "ok" (see :class:`TaskFailure`).
    status: str = field(default="ok", init=False, repr=False)

    @property
    def ok(self) -> bool:
        return True

    def metric(self, name: str) -> MetricStats:
        try:
            return self.metrics[name]
        except KeyError:
            raise MetricError(
                f"run {self.test_name!r} has no metric {name!r}; "
                f"available: {sorted(self.metrics)}"
            ) from None

    def mean(self, name: str) -> float:
        return self.metric(name).mean

    @classmethod
    def from_workload_results(
        cls,
        test_name: str,
        workload_results: list,
        suite: MetricSuite | None = None,
    ) -> "RunResult":
        """Compute metrics for each repeat and collect the statistics."""
        if not workload_results:
            raise MetricError("cannot build a RunResult from zero runs")
        suite = suite or MetricSuite.standard()
        per_metric: dict[str, list[float]] = {}
        for workload_result in workload_results:
            values = suite.compute_all(workload_result.evidence())
            for name, value in values.items():
                per_metric.setdefault(name, []).append(value)
        first = workload_results[0]
        return cls(
            test_name=test_name,
            workload=first.workload,
            engine=first.engine,
            repeats=len(workload_results),
            metrics={
                name: MetricStats(name, samples)
                for name, samples in per_metric.items()
            },
            extra=dict(first.extra),
        )


@dataclass
class TaskFailure:
    """The captured record of one task that failed every attempt.

    Produced by the runner under ``on_error="continue"`` in place of a
    :class:`RunResult`, holding everything a post-mortem needs: the
    exception type and message, a compact traceback summary, and how
    many attempts the retry policy spent.  Merged in submission order
    alongside successful results, so the batch's shape is preserved.
    """

    test_name: str
    workload: str
    engine: str
    error_type: str
    error_message: str
    traceback_summary: str = ""
    attempts: int = 1
    extra: dict[str, Any] = field(default_factory=dict)

    #: Failed outcomes are always "failed" (see :class:`RunResult`).
    status: str = field(default="failed", init=False, repr=False)

    @property
    def ok(self) -> bool:
        return False

    @property
    def error(self) -> str:
        """One-line ``Type: message`` form for tables and logs."""
        if self.error_message:
            return f"{self.error_type}: {self.error_message}"
        return self.error_type

    def as_dict(self) -> dict[str, Any]:
        """The JSON-friendly form reports embed."""
        payload: dict[str, Any] = {
            "test": self.test_name,
            "workload": self.workload,
            "engine": self.engine,
            "status": self.status,
            "error_type": self.error_type,
            "error_message": self.error_message,
            "attempts": self.attempts,
        }
        if self.traceback_summary:
            payload["traceback"] = self.traceback_summary
        if self.extra:
            payload["extra"] = self.extra
        return payload

    @classmethod
    def from_exception(
        cls,
        test_name: str,
        workload: str,
        engine: str,
        error: BaseException,
        attempts: int = 1,
        max_frames: int = 3,
    ) -> "TaskFailure":
        """Capture an exception (innermost ``max_frames`` frames only)."""
        frames = traceback.extract_tb(error.__traceback__)[-max_frames:]
        summary = "; ".join(
            f"{frame.filename.rsplit('/', 1)[-1]}:{frame.lineno} "
            f"in {frame.name}"
            for frame in frames
        )
        return cls(
            test_name=test_name,
            workload=workload,
            engine=engine,
            error_type=type(error).__name__,
            error_message=str(error),
            traceback_summary=summary,
            attempts=attempts,
        )


#: What fan-out entry points return per task: a result or a captured
#: failure (only under ``on_error="continue"``), in submission order.
RunOutcome = "RunResult | TaskFailure"


def split_outcomes(
    outcomes: list,
) -> tuple[list[RunResult], list[TaskFailure]]:
    """Partition merged outcomes into successes and captured failures."""
    results = [o for o in outcomes if isinstance(o, RunResult)]
    failures = [o for o in outcomes if isinstance(o, TaskFailure)]
    return results, failures


class ResultAnalyzer:
    """Cross-result comparison (who wins, by what factor).

    Accepts mixed outcome lists for convenience: captured failures carry
    no metrics, so analysis silently considers successful results only —
    the degraded-batch semantics the fault-tolerance layer promises.
    """

    def __init__(self, results: list[RunResult]) -> None:
        self.results = [
            result for result in results if isinstance(result, RunResult)
        ]

    def add(self, result: RunResult) -> None:
        self.results.append(result)

    def by_engine(self) -> dict[str, list[RunResult]]:
        grouped: dict[str, list[RunResult]] = {}
        for result in self.results:
            grouped.setdefault(result.engine, []).append(result)
        return grouped

    def ranking(self, metric: str, higher_is_better: bool = True) -> list[RunResult]:
        """Results ordered best-first by one metric's mean."""
        comparable = [r for r in self.results if metric in r.metrics]
        return sorted(
            comparable,
            key=lambda result: result.mean(metric),
            reverse=higher_is_better,
        )

    def speedup(
        self, metric: str, baseline_engine: str, higher_is_better: bool = True
    ) -> dict[str, float]:
        """Per-engine factor relative to a baseline engine's mean."""
        by_engine = self.by_engine()
        if baseline_engine not in by_engine:
            raise MetricError(
                f"no results for baseline engine {baseline_engine!r}; "
                f"engines: {sorted(by_engine)}"
            )
        baseline_values = [
            result.mean(metric)
            for result in by_engine[baseline_engine]
            if metric in result.metrics
        ]
        if not baseline_values:
            raise MetricError(
                f"baseline engine has no samples of metric {metric!r}"
            )
        baseline = statistics.fmean(baseline_values)
        factors: dict[str, float] = {}
        for engine, results in by_engine.items():
            values = [r.mean(metric) for r in results if metric in r.metrics]
            if not values:
                continue
            mean_value = statistics.fmean(values)
            if higher_is_better:
                factors[engine] = mean_value / baseline if baseline else float("inf")
            else:
                factors[engine] = baseline / mean_value if mean_value else float("inf")
        return factors

    def summary_rows(self, metric_names: list[str]) -> list[dict[str, Any]]:
        """Flat rows (one per result) for reporting."""
        rows = []
        for result in self.results:
            row: dict[str, Any] = {
                "test": result.test_name,
                "workload": result.workload,
                "engine": result.engine,
                "repeats": result.repeats,
            }
            for name in metric_names:
                if name in result.metrics:
                    row[name] = result.mean(name)
            rows.append(row)
        return rows
