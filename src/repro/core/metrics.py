"""The metric taxonomy of Section 3.1.

The Function Layer divides metrics into **user-perceivable** metrics
(duration, request latency, throughput — comparing workloads of the same
category) and **architecture** metrics (MIPS/MFLOPS analogues — comparing
workloads across categories).  In this simulator the architecture metrics
are derived from the engines' uniform cost counters: abstract operations
per second stands in for MIPS, data rate for memory bandwidth.

The paper also requires metrics to "take energy consumption [and] cost
efficiency into consideration"; :class:`EnergyModel` and :class:`CostModel`
provide both, parameterised on the simulated cluster.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
import enum

from repro._util import percentile
from repro.core.errors import MetricError
from repro.engines.base import CostCounters


class MetricKind(enum.Enum):
    """The paper's two metric families."""

    USER_PERCEIVABLE = "user-perceivable"
    ARCHITECTURE = "architecture"


@dataclass
class RunEvidence:
    """Everything a finished run exposes for metric computation."""

    duration_seconds: float
    records_in: int = 0
    records_out: int = 0
    cost: CostCounters = field(default_factory=CostCounters)
    #: Per-request latencies (online-service workloads).
    latencies: list[float] = field(default_factory=list)
    #: Makespan on the simulated cluster, when the engine models one.
    simulated_seconds: float | None = None

    @property
    def effective_seconds(self) -> float:
        """Simulated time when available, else measured wall time."""
        if self.simulated_seconds is not None and self.simulated_seconds > 0:
            return self.simulated_seconds
        return self.duration_seconds


class Metric(ABC):
    """One named metric computed from run evidence."""

    name: str = "metric"
    kind: MetricKind = MetricKind.USER_PERCEIVABLE
    unit: str = ""

    @abstractmethod
    def compute(self, evidence: RunEvidence) -> float:
        """The metric value for one run."""

    def describe(self) -> str:
        return f"{self.name} ({self.kind.value}, {self.unit})"


# ---------------------------------------------------------------------------
# User-perceivable metrics
# ---------------------------------------------------------------------------


class DurationMetric(Metric):
    """Wall-clock duration of the test (the paper's first example)."""

    name = "duration"
    kind = MetricKind.USER_PERCEIVABLE
    unit = "s"

    def compute(self, evidence: RunEvidence) -> float:
        return evidence.duration_seconds


class ThroughputMetric(Metric):
    """Records processed per second."""

    name = "throughput"
    kind = MetricKind.USER_PERCEIVABLE
    unit = "records/s"

    def compute(self, evidence: RunEvidence) -> float:
        seconds = evidence.effective_seconds
        if seconds <= 0:
            raise MetricError("cannot compute throughput for a zero-length run")
        return evidence.records_in / seconds


class MeanLatencyMetric(Metric):
    """Mean request latency (online services)."""

    name = "mean_latency"
    kind = MetricKind.USER_PERCEIVABLE
    unit = "s"

    def compute(self, evidence: RunEvidence) -> float:
        if not evidence.latencies:
            raise MetricError("run recorded no request latencies")
        return sum(evidence.latencies) / len(evidence.latencies)


class LatencyPercentileMetric(Metric):
    """A latency percentile, e.g. p99 (online services)."""

    kind = MetricKind.USER_PERCEIVABLE
    unit = "s"

    def __init__(self, fraction: float) -> None:
        if not 0.0 < fraction <= 1.0:
            raise MetricError(f"fraction must be in (0, 1], got {fraction}")
        self.fraction = fraction
        self.name = f"latency_p{int(round(fraction * 100))}"

    def compute(self, evidence: RunEvidence) -> float:
        if not evidence.latencies:
            raise MetricError("run recorded no request latencies")
        return percentile(sorted(evidence.latencies), self.fraction)


# ---------------------------------------------------------------------------
# Architecture metrics
# ---------------------------------------------------------------------------


class OpsPerSecondMetric(Metric):
    """Abstract operations retired per second (the simulator's MIPS)."""

    name = "ops_per_second"
    kind = MetricKind.ARCHITECTURE
    unit = "ops/s"

    def compute(self, evidence: RunEvidence) -> float:
        seconds = evidence.effective_seconds
        if seconds <= 0:
            raise MetricError("cannot compute ops/s for a zero-length run")
        return evidence.cost.compute_ops / seconds


class DataRateMetric(Metric):
    """Bytes moved (read + written) per second."""

    name = "data_rate"
    kind = MetricKind.ARCHITECTURE
    unit = "bytes/s"

    def compute(self, evidence: RunEvidence) -> float:
        seconds = evidence.effective_seconds
        if seconds <= 0:
            raise MetricError("cannot compute data rate for a zero-length run")
        return (evidence.cost.bytes_read + evidence.cost.bytes_written) / seconds


class NetworkRateMetric(Metric):
    """Bytes crossing the simulated network per second."""

    name = "network_rate"
    kind = MetricKind.ARCHITECTURE
    unit = "bytes/s"

    def compute(self, evidence: RunEvidence) -> float:
        seconds = evidence.effective_seconds
        if seconds <= 0:
            raise MetricError("cannot compute network rate for a zero-length run")
        return evidence.cost.network_bytes / seconds


# ---------------------------------------------------------------------------
# Energy and cost models
# ---------------------------------------------------------------------------


@dataclass
class EnergyModel:
    """Simple linear power model over the simulated cluster.

    energy = nodes × (idle power × duration) + energy-per-op × ops.
    """

    num_nodes: int = 4
    idle_watts_per_node: float = 80.0
    joules_per_million_ops: float = 30.0

    def energy_joules(self, evidence: RunEvidence) -> float:
        seconds = evidence.effective_seconds
        idle = self.num_nodes * self.idle_watts_per_node * seconds
        active = self.joules_per_million_ops * evidence.cost.compute_ops / 1e6
        return idle + active

    def as_metric(self) -> "EnergyMetric":
        return EnergyMetric(self)


class EnergyMetric(Metric):
    """Total simulated energy of the run."""

    name = "energy"
    kind = MetricKind.ARCHITECTURE
    unit = "J"

    def __init__(self, model: EnergyModel | None = None) -> None:
        self.model = model or EnergyModel()

    def compute(self, evidence: RunEvidence) -> float:
        return self.model.energy_joules(evidence)


@dataclass
class CostModel:
    """Monetary cost of the run on the simulated cluster."""

    num_nodes: int = 4
    dollars_per_node_hour: float = 0.50

    def cost_dollars(self, evidence: RunEvidence) -> float:
        hours = evidence.effective_seconds / 3600.0
        return self.num_nodes * hours * self.dollars_per_node_hour

    def as_metric(self) -> "CostMetric":
        return CostMetric(self)


class CostMetric(Metric):
    """Total simulated dollar cost of the run."""

    name = "cost"
    kind = MetricKind.ARCHITECTURE
    unit = "$"

    def __init__(self, model: CostModel | None = None) -> None:
        self.model = model or CostModel()

    def compute(self, evidence: RunEvidence) -> float:
        return self.model.cost_dollars(evidence)


# ---------------------------------------------------------------------------
# Suites
# ---------------------------------------------------------------------------


class MetricSuite:
    """Computes a set of metrics, skipping those without evidence.

    Skipping matters: latency percentiles are meaningless for an offline
    sort, and the suite should not fail the whole run over them.
    """

    def __init__(self, metrics: list[Metric]) -> None:
        self.metrics = list(metrics)

    def compute_all(self, evidence: RunEvidence) -> dict[str, float]:
        values: dict[str, float] = {}
        for metric in self.metrics:
            try:
                values[metric.name] = metric.compute(evidence)
            except MetricError:
                continue
        return values

    @classmethod
    def standard(cls) -> "MetricSuite":
        """The default suite: both metric families plus energy and cost."""
        return cls(
            [
                DurationMetric(),
                ThroughputMetric(),
                MeanLatencyMetric(),
                LatencyPercentileMetric(0.95),
                LatencyPercentileMetric(0.99),
                OpsPerSecondMetric(),
                DataRateMetric(),
                NetworkRateMetric(),
                EnergyMetric(),
                CostMetric(),
            ]
        )
