"""Prescriptions and the prescription repository (Section 3.3, Section 5.2).

A prescription "includes the information needed to produce a benchmarking
test, including data sets, a set of operations and workload patterns, a
method to generate workload, and the evaluation metrics."  Section 5.2
additionally calls for "a repository of reusable prescriptions to simplify
the generation of prescribed tests" — :class:`PrescriptionRepository`
below, pre-populated per application domain by
:func:`builtin_repository`.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field
from typing import Any

from repro.core.errors import TestGenerationError
from repro.core.operations import AbstractOperation, operations
from repro.core.patterns import (
    ConvergenceCondition,
    FixedIterations,
    IterativeOperationPattern,
    MultiOperationPattern,
    SingleOperationPattern,
    WorkloadPattern,
)
from repro.datagen.base import DataSet, DataType


@dataclass(frozen=True)
class DataRequirement:
    """What data a prescription needs (Figure 4, step 1).

    ``generator`` names a registered data generator; ``fit_on`` names a
    seed ("real") data set for veracity-aware generators; ``volume`` is
    in the generator's native unit (documents, rows, vertices, events).
    """

    generator: str
    data_type: DataType
    volume: int
    num_partitions: int = 1
    fit_on: str | None = None

    def __post_init__(self) -> None:
        if self.volume < 0:
            raise TestGenerationError(
                f"volume must be non-negative, got {self.volume}"
            )
        if self.num_partitions <= 0:
            raise TestGenerationError(
                f"num_partitions must be positive, got {self.num_partitions}"
            )


@dataclass
class Prescription:
    """A complete recipe for one benchmarking test."""

    name: str
    domain: str
    data: DataRequirement
    operations: list[AbstractOperation]
    pattern: WorkloadPattern
    workload: str  # name of the registered workload implementing the test
    metric_names: list[str] = field(default_factory=list)
    params: dict[str, Any] = field(default_factory=dict)

    def describe(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "domain": self.domain,
            "generator": self.data.generator,
            "volume": self.data.volume,
            "operations": [op.name for op in self.operations],
            "pattern": self.pattern.pattern_name,
            "workload": self.workload,
            "metrics": list(self.metric_names),
        }


class PrescriptionRepository:
    """A reusable library of prescriptions, browsable by domain."""

    def __init__(self) -> None:
        self._prescriptions: dict[str, Prescription] = {}

    def add(self, prescription: Prescription) -> None:
        if prescription.name in self._prescriptions:
            raise TestGenerationError(
                f"prescription {prescription.name!r} already exists"
            )
        self._prescriptions[prescription.name] = prescription

    def get(self, name: str) -> Prescription:
        try:
            return self._prescriptions[name]
        except KeyError:
            raise TestGenerationError(
                f"unknown prescription {name!r}; available: {self.names()}"
            ) from None

    def names(self) -> list[str]:
        return sorted(self._prescriptions)

    def by_domain(self, domain: str) -> list[Prescription]:
        return [
            prescription
            for prescription in self._prescriptions.values()
            if prescription.domain == domain
        ]

    def domains(self) -> list[str]:
        return sorted({p.domain for p in self._prescriptions.values()})

    def __len__(self) -> int:
        return len(self._prescriptions)

    def __contains__(self, name: str) -> bool:
        return name in self._prescriptions


# ---------------------------------------------------------------------------
# Seed ("real") data sources for veracity-aware generation.
# ---------------------------------------------------------------------------


def _load_orders() -> DataSet:
    from repro.datagen.corpus import load_retail_tables

    return load_retail_tables()["orders"]


def _seed_sources() -> dict[str, Callable[[], DataSet]]:
    from repro.datagen.corpus import load_social_graph, load_text_corpus

    return {
        "text-corpus": load_text_corpus,
        "social-graph": load_social_graph,
        "retail-orders": _load_orders,
    }


#: name → loader of embedded seed data sets (DESIGN.md §2 substitutions).
SEED_SOURCES: dict[str, Callable[[], DataSet]] = _seed_sources()


def load_seed(name: str) -> DataSet:
    """Load one embedded seed data set by name."""
    loader = SEED_SOURCES.get(name)
    if loader is None:
        raise TestGenerationError(
            f"unknown seed data set {name!r}; available: {sorted(SEED_SOURCES)}"
        )
    return loader()


# ---------------------------------------------------------------------------
# Built-in prescriptions per application domain.
# ---------------------------------------------------------------------------

_USER_METRICS = ["duration", "throughput"]
_ONLINE_METRICS = ["throughput", "mean_latency", "latency_p99"]
_ALL_METRICS = _USER_METRICS + ["ops_per_second", "energy", "cost"]


def builtin_repository() -> PrescriptionRepository:
    """The framework's reusable prescription library (Section 5.2)."""
    repository = PrescriptionRepository()

    text = DataRequirement("random-text", DataType.TEXT, volume=200)
    lda_text = DataRequirement(
        "lda-text", DataType.TEXT, volume=200, fit_on="text-corpus"
    )
    graph = DataRequirement(
        "rmat-graph", DataType.GRAPH, volume=256, fit_on="social-graph"
    )
    table = DataRequirement(
        "fitted-table", DataType.TABLE, volume=500, fit_on="retail-orders"
    )
    kv = DataRequirement("kv-records", DataType.KEY_VALUE, volume=500)
    stream = DataRequirement("poisson-stream", DataType.STREAM, volume=2000)
    features = DataRequirement("mixture-table", DataType.TABLE, volume=400)

    repository.add(
        Prescription(
            name="micro-sort",
            domain="micro benchmarks",
            data=text,
            operations=operations("sort"),
            pattern=SingleOperationPattern(operations("sort")[0]),
            workload="sort",
            metric_names=_ALL_METRICS,
        )
    )
    repository.add(
        Prescription(
            name="micro-wordcount",
            domain="micro benchmarks",
            data=text,
            operations=operations("transform", "aggregate"),
            pattern=MultiOperationPattern(operations("transform", "aggregate")),
            workload="wordcount",
            metric_names=_ALL_METRICS,
        )
    )
    repository.add(
        Prescription(
            name="micro-grep",
            domain="micro benchmarks",
            data=lda_text,
            operations=operations("grep"),
            pattern=SingleOperationPattern(operations("grep")[0]),
            workload="grep",
            metric_names=_ALL_METRICS,
            params={"pattern_text": "data"},
        )
    )
    repository.add(
        Prescription(
            name="micro-cfs",
            domain="micro benchmarks",
            data=text,
            operations=operations("write", "read", "update", "delete"),
            pattern=MultiOperationPattern(
                operations("write", "read", "update", "delete")
            ),
            workload="cfs",
            metric_names=_ONLINE_METRICS + ["duration"],
        )
    )
    repository.add(
        Prescription(
            name="search-pagerank",
            domain="search engine",
            data=graph,
            operations=operations("rank"),
            pattern=IterativeOperationPattern(
                operations("rank"),
                ConvergenceCondition(tolerance=1e-4, max_iterations=30),
            ),
            workload="pagerank",
            metric_names=_ALL_METRICS,
        )
    )
    repository.add(
        Prescription(
            name="search-index",
            domain="search engine",
            data=lda_text,
            operations=operations("index"),
            pattern=SingleOperationPattern(operations("index")[0]),
            workload="inverted-index",
            metric_names=_ALL_METRICS,
        )
    )
    repository.add(
        Prescription(
            name="social-kmeans",
            domain="social network",
            data=features,
            operations=operations("cluster"),
            pattern=IterativeOperationPattern(
                operations("cluster"), FixedIterations(10)
            ),
            workload="kmeans",
            metric_names=_ALL_METRICS,
            params={"num_clusters": 4},
        )
    )
    repository.add(
        Prescription(
            name="social-connected-components",
            domain="social network",
            data=graph,
            operations=operations("cluster"),
            pattern=IterativeOperationPattern(
                operations("cluster"),
                ConvergenceCondition(tolerance=0.0, max_iterations=50),
            ),
            workload="connected-components",
            metric_names=_ALL_METRICS,
        )
    )
    repository.add(
        Prescription(
            name="ecommerce-recommend",
            domain="e-commerce",
            data=table,
            operations=operations("recommend"),
            pattern=SingleOperationPattern(operations("recommend")[0]),
            workload="collaborative-filtering",
            metric_names=_ALL_METRICS,
        )
    )
    repository.add(
        Prescription(
            name="ecommerce-classify",
            domain="e-commerce",
            data=lda_text,
            operations=operations("classify"),
            pattern=MultiOperationPattern(operations("transform", "classify")),
            workload="naive-bayes",
            metric_names=_ALL_METRICS,
        )
    )
    repository.add(
        Prescription(
            name="database-aggregate-join",
            domain="basic database operations",
            data=table,
            operations=operations("select", "join", "aggregate"),
            pattern=MultiOperationPattern(
                operations("select", "join", "aggregate")
            ),
            workload="relational-query",
            metric_names=_ALL_METRICS,
        )
    )
    repository.add(
        Prescription(
            name="oltp-read-write",
            domain="cloud OLTP",
            data=kv,
            operations=operations("read", "write", "scan", "update"),
            pattern=MultiOperationPattern(
                operations("read", "write", "scan", "update")
            ),
            workload="ycsb",
            metric_names=_ONLINE_METRICS,
            params={"workload_mix": "A", "operation_count": 1000},
        )
    )
    repository.add(
        Prescription(
            name="multimedia-image-classification",
            domain="multimedia",
            data=DataRequirement("texture-images", DataType.IMAGE, volume=120),
            operations=operations("transform", "classify"),
            pattern=MultiOperationPattern(operations("transform", "classify")),
            workload="image-classification",
            metric_names=_ALL_METRICS,
        )
    )
    repository.add(
        Prescription(
            name="learning-mlp",
            domain="large-scale learning",
            data=features,
            operations=operations("transform", "classify"),
            pattern=IterativeOperationPattern(
                operations("transform", "classify"),
                ConvergenceCondition(tolerance=1e-3, max_iterations=60),
            ),
            workload="mlp-classification",
            metric_names=_ALL_METRICS,
        )
    )
    repository.add(
        Prescription(
            name="realtime-windowed-aggregation",
            domain="streaming",
            data=stream,
            operations=operations("window", "aggregate"),
            pattern=MultiOperationPattern(operations("window", "aggregate")),
            workload="windowed-aggregation",
            metric_names=_ONLINE_METRICS + ["duration"],
            params={"window_seconds": 0.1},
        )
    )
    return repository
