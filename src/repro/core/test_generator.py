"""The test generator (Figure 4).

Implements the five-step test-generation process:

1. select a data set (through the generator registry, fitting
   veracity-aware generators on their seed data),
2. select abstract operations,
3. select a workload pattern,
4. assemble a prescription,
5. bind the prescription to a specific system via the system
   configuration tools, producing a :class:`PrescribedTest`.

Steps 1–4 are also available separately so callers can build custom
prescriptions; :meth:`TestGenerator.generate` performs step 5 for a
prescription from the repository.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.core import registry
from repro.core.errors import TestGenerationError
from repro.core.operations import AbstractOperation
from repro.core.patterns import WorkloadPattern
from repro.core.prescription import (
    DataRequirement,
    Prescription,
    PrescriptionRepository,
    builtin_repository,
    load_seed,
)
from repro.datagen.base import DataGenerator, DataSet
from repro.datagen.cache import DatasetCache
from repro.datagen.source import DatasetSource, GeneratorSource
from repro.engines.base import Engine
from repro.observability import trace_span


@dataclass
class PrescribedTest:
    """A prescription bound to a concrete engine and generated data.

    The final artifact of Figure 4: runnable on exactly one system, while
    the prescription it came from remains system-independent.
    """

    prescription: Prescription
    engine: Engine
    workload: Any  # repro.workloads.base.Workload (kept loose to avoid cycle)
    #: Materialized records, or a lazily streaming source when the test
    #: was generated with a chunk size (the workload dispatcher handles
    #: both shapes identically).
    dataset: DataSet | DatasetSource

    @property
    def name(self) -> str:
        return f"{self.prescription.name}@{self.engine.name}"

    def run(self, **overrides: Any):
        """Execute the prescribed test; returns a WorkloadResult."""
        params = {**self.prescription.params, **overrides}
        return self.workload.run(self.engine, self.dataset, **params)


class TestGenerator:
    """Generates prescribed tests from prescriptions (Figure 4)."""

    __test__ = False  # "Test" prefix is domain vocabulary, not a pytest class

    def __init__(
        self,
        repository: PrescriptionRepository | None = None,
        generator_registry: registry.Registry | None = None,
        workload_registry: registry.Registry | None = None,
        engine_registry: registry.Registry | None = None,
        dataset_cache: DatasetCache | None = None,
        cache_datasets: bool = True,
    ) -> None:
        self.repository = repository or builtin_repository()
        self.generators = generator_registry or registry.generators
        self.workloads = workload_registry or registry.workloads
        self.engines = engine_registry or registry.engines
        #: Deterministic generation means identical (generator, seed,
        #: volume, partitions, fit source) requests produce identical
        #: records, so they share one cached data set across engines,
        #: repeats, and sweep points.  Pass ``cache_datasets=False`` to
        #: regenerate on every request instead.
        if dataset_cache is None and cache_datasets:
            dataset_cache = DatasetCache()
        self.dataset_cache = dataset_cache

    # ------------------------------------------------------------------
    # Step 1: data selection
    # ------------------------------------------------------------------

    def select_data(
        self,
        requirement: DataRequirement,
        volume_override: int | None = None,
        partitions_override: int | None = None,
        chunk_size: int | None = None,
    ) -> DataSet | DatasetSource:
        """Instantiate, fit, and run the generator a prescription names.

        Identical requests are served from :attr:`dataset_cache` (when
        enabled); generation is deterministic, so the cached data set is
        record-for-record what a fresh generation would produce.

        With ``chunk_size`` set, the returned value is a lazily streaming
        :class:`~repro.datagen.source.GeneratorSource` instead of a
        materialized data set — nothing is generated until a consumer
        pulls batches, and the cache is bypassed (there is no record
        list to hold).  Determinism makes both shapes interchangeable.
        """
        generator: DataGenerator = self.generators.create(requirement.generator)
        if generator.data_type is not requirement.data_type:
            raise TestGenerationError(
                f"generator {requirement.generator!r} produces "
                f"{generator.data_type.label}, but the prescription needs "
                f"{requirement.data_type.label}"
            )
        volume = volume_override if volume_override is not None else requirement.volume
        num_partitions = (
            partitions_override
            if partitions_override is not None
            else requirement.num_partitions
        )
        with trace_span(
            "select-data",
            generator=requirement.generator,
            volume=volume,
            partitions=num_partitions,
        ):
            if chunk_size is not None:
                self._fit(generator, requirement)
                return GeneratorSource(
                    generator,
                    volume,
                    chunk_size=chunk_size,
                    num_partitions=num_partitions,
                )
            if self.dataset_cache is None:
                return self._generate_data(
                    generator, requirement, volume, num_partitions
                )
            key = DatasetCache.make_key(
                requirement.generator,
                generator.seed,
                volume,
                num_partitions,
                requirement.fit_on,
            )
            return self.dataset_cache.get_or_generate(
                key,
                lambda: self._generate_data(
                    generator, requirement, volume, num_partitions
                ),
            )

    def _fit(self, generator: DataGenerator, requirement: DataRequirement) -> None:
        """Fit a veracity-aware generator on its prescribed seed data."""
        if requirement.fit_on is not None:
            with trace_span("fit", source=requirement.fit_on):
                generator.fit(load_seed(requirement.fit_on))

    def _generate_data(
        self,
        generator: DataGenerator,
        requirement: DataRequirement,
        volume: int,
        num_partitions: int,
    ) -> DataSet:
        """The uncached generation path (fit, then generate)."""
        self._fit(generator, requirement)
        with trace_span(
            "generate", volume=volume, partitions=num_partitions
        ) as span:
            if num_partitions > 1:
                dataset = generator.generate_parallel(volume, num_partitions)
            else:
                dataset = generator.generate(volume)
            if span:
                span.set(records=dataset.num_records)
            return dataset

    # ------------------------------------------------------------------
    # Steps 2-4: prescription assembly
    # ------------------------------------------------------------------

    def make_prescription(
        self,
        name: str,
        domain: str,
        data: DataRequirement,
        operations: list[AbstractOperation],
        pattern: WorkloadPattern,
        workload: str,
        metric_names: list[str] | None = None,
        params: dict[str, Any] | None = None,
    ) -> Prescription:
        """Assemble (and register) a new prescription."""
        if workload not in self.workloads:
            raise TestGenerationError(
                f"prescription references unknown workload {workload!r}; "
                f"registered: {self.workloads.names()}"
            )
        prescription = Prescription(
            name=name,
            domain=domain,
            data=data,
            operations=operations,
            pattern=pattern,
            workload=workload,
            metric_names=metric_names or [],
            params=params or {},
        )
        self.repository.add(prescription)
        return prescription

    # ------------------------------------------------------------------
    # Step 5: bind to a system
    # ------------------------------------------------------------------

    def generate(
        self,
        prescription: Prescription | str,
        engine_name: str,
        volume_override: int | None = None,
        partitions_override: int | None = None,
        chunk_size: int | None = None,
        configuration: Any = None,
    ) -> PrescribedTest:
        """Produce a prescribed test for one engine (Figure 4, step 5).

        ``configuration`` is an optional
        :class:`~repro.execution.config.SystemConfiguration`; when
        given the engine is built from it instead of the bare registry
        default.
        """
        if isinstance(prescription, str):
            prescription = self.repository.get(prescription)
        workload = self.workloads.create(prescription.workload)
        if not workload.supports(engine_name):
            raise TestGenerationError(
                f"workload {prescription.workload!r} does not run on engine "
                f"{engine_name!r}; supported: {workload.supported_engines()}"
            )
        engine: Engine = (
            configuration.build()
            if configuration is not None
            else self.engines.create(engine_name)
        )
        dataset = self.select_data(
            prescription.data, volume_override, partitions_override, chunk_size
        )
        return PrescribedTest(
            prescription=prescription,
            engine=engine,
            workload=workload,
            dataset=dataset,
        )

    def generate_for_all_engines(
        self, prescription: Prescription | str, volume_override: int | None = None
    ) -> list[PrescribedTest]:
        """Bind one prescription to every engine its workload supports.

        This is the cross-system comparison the functional view enables:
        the same abstract test on every capable system.
        """
        if isinstance(prescription, str):
            prescription = self.repository.get(prescription)
        workload = self.workloads.create(prescription.workload)
        tests = []
        for engine_name in workload.supported_engines():
            if engine_name in self.engines:
                tests.append(
                    self.generate(prescription, engine_name, volume_override)
                )
        if not tests:
            raise TestGenerationError(
                f"no registered engine supports workload "
                f"{prescription.workload!r}"
            )
        return tests
