"""The five-step benchmarking process (Figure 1).

Planning → Data Generation → Test Generation → Execution → Analysis &
Evaluation.  Each step produces a :class:`StepReport` so the whole run is
auditable; :class:`BenchmarkingProcess.execute` drives a
:class:`~repro.core.spec.BenchmarkSpec` through all five.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any

from repro.core.prescription import PrescriptionRepository, builtin_repository
from repro.core.results import (
    ResultAnalyzer,
    RunResult,
    TaskFailure,
    split_outcomes,
)
from repro.core.spec import BenchmarkSpec
from repro.core.test_generator import PrescribedTest, TestGenerator
from repro.datagen.base import DataSet
from repro.observability import Tracer, current_tracer


@dataclass
class StepReport:
    """Evidence from one process step."""

    step: str
    elapsed_seconds: float
    detail: dict[str, Any] = field(default_factory=dict)


@dataclass
class ProcessReport:
    """The complete audit trail of one benchmarking run.

    Under ``spec.on_error="continue"`` a misbehaving engine no longer
    aborts the run: its captured :class:`TaskFailure` lands in
    ``failures`` (and in the execution step's ``detail["failures"]``)
    while every completed result stays in ``results``.
    """

    spec: BenchmarkSpec
    steps: list[StepReport] = field(default_factory=list)
    results: list[RunResult] = field(default_factory=list)
    failures: list[TaskFailure] = field(default_factory=list)
    #: Run-store record ids, in outcome order (empty unless the spec
    #: asked for recording — see ``BenchmarkSpec.should_record``).
    record_ids: list[str] = field(default_factory=list)

    @property
    def analyzer(self) -> ResultAnalyzer:
        return ResultAnalyzer(self.results)

    def step(self, name: str) -> StepReport:
        for step in self.steps:
            if step.step == name:
                return step
        raise KeyError(f"no step named {name!r}")


class BenchmarkingProcess:
    """Drives a benchmark spec through the five steps of Figure 1."""

    STEP_NAMES = (
        "planning",
        "data-generation",
        "test-generation",
        "execution",
        "analysis-evaluation",
    )

    def __init__(
        self,
        repository: PrescriptionRepository | None = None,
        test_generator: TestGenerator | None = None,
    ) -> None:
        self.repository = repository or builtin_repository()
        self.test_generator = test_generator or TestGenerator(self.repository)

    def execute(
        self, spec: BenchmarkSpec, tracer: Tracer | None = None
    ) -> ProcessReport:
        """Run all five steps and return the audit trail.

        When a ``tracer`` is given (or one is already active on this
        thread), the whole run records under a ``benchmark-run`` root
        span with one child span per Figure-1 step; the executor
        backends and engines nest their own spans beneath those.
        """
        tracer = tracer if tracer is not None else current_tracer()
        with tracer.activate():
            with tracer.span("benchmark-run", prescription=spec.prescription):
                return self._execute_steps(spec, tracer)

    def _execute_steps(self, spec: BenchmarkSpec, tracer: Tracer) -> ProcessReport:
        report = ProcessReport(spec=spec)

        # Step 1: Planning — validate the spec, resolve engines and metrics.
        started = time.perf_counter()
        with tracer.span("planning"):
            spec.validate(self.repository)
            prescription = self.repository.get(spec.prescription)
            engine_names = spec.resolved_engines(self.repository)
            metric_names = spec.metric_names or prescription.metric_names
        report.steps.append(
            StepReport(
                "planning",
                time.perf_counter() - started,
                {
                    "prescription": prescription.describe(),
                    "engines": engine_names,
                    "metrics": metric_names,
                },
            )
        )

        # Step 2: Data Generation — one data set shared by every engine.
        started = time.perf_counter()
        with tracer.span("data-generation"):
            requirement = prescription.data
            if spec.data_partitions > 1:
                from dataclasses import replace

                requirement = replace(
                    requirement, num_partitions=spec.data_partitions
                )
            dataset = self.test_generator.select_data(
                requirement, spec.volume, chunk_size=spec.chunk_size
            )
        generation_detail: dict[str, Any] = {
            "generator": requirement.generator,
            "records": dataset.num_records,
            "partitions": spec.data_partitions,
        }
        if isinstance(dataset, DataSet):
            generation_detail["bytes"] = dataset.estimated_bytes()
        else:
            # A streaming source: nothing has been generated yet, and
            # sizing it would consume a full pass — record the shape
            # instead of the bytes.
            generation_detail["streamed"] = True
            generation_detail["chunk_size"] = spec.chunk_size
        report.steps.append(
            StepReport(
                "data-generation",
                time.perf_counter() - started,
                generation_detail,
            )
        )

        # Step 3: Test Generation — bind the prescription per engine.
        started = time.perf_counter()
        with tracer.span("test-generation"):
            tests: list[PrescribedTest] = []
            workload = self.test_generator.workloads.create(
                prescription.workload
            )
            for engine_name in engine_names:
                tests.append(
                    PrescribedTest(
                        prescription=prescription,
                        engine=self.test_generator.engines.create(engine_name),
                        workload=workload,
                        dataset=dataset,
                    )
                )
        report.steps.append(
            StepReport(
                "test-generation",
                time.perf_counter() - started,
                {"tests": [test.name for test in tests]},
            )
        )

        # Step 4: Execution — repeats on fresh engines, fanned out over
        # the spec's executor backend through the test runner.  The
        # runner regenerates each test, but the data set is served from
        # the dataset cache warmed by step 2, so generation happens once
        # for the whole run.
        started = time.perf_counter()
        from repro.execution.runner import RunnerOptions, RunTask, TestRunner

        runner = TestRunner(
            test_generator=self.test_generator,
            options=RunnerOptions(
                repeats=spec.repeats,
                check_format=False,
                executor=spec.executor,
                max_workers=spec.max_workers,
                warm_pool=spec.warm_pool,
                on_error=spec.on_error,
                retries=spec.retries,
                retry_backoff=spec.retry_backoff,
                task_timeout=spec.task_timeout,
            ),
        )
        # Bare registry engines, exactly as the historical per-step loop
        # built them (assigned after construction: an empty dict would
        # otherwise be replaced by the default configuration table).
        # A requested synthetic slowdown rides the fault substrate: each
        # engine is wrapped so every execution stalls by the configured
        # latency — deterministic, and invisible to the spec fingerprint
        # (it models a code-level slowdown, not a different benchmark).
        # The columnar layout rides the same per-engine configuration
        # path: batch-at-a-time operators on the DBMS, per-partition
        # combiner batching on MapReduce; engines with no layout notion
        # run bare.  A non-normal tuning profile layers its knobs over
        # the layout options (profile wins on conflict) through the
        # same mechanism — see :mod:`repro.tuning.profiles`.
        from repro.tuning.profiles import get_profile

        runner.configurations = {}
        profiles = {
            engine_name: get_profile(engine_name, spec.tuning)
            for engine_name in engine_names
        }
        slowdown = None
        if spec.inject_latency:
            from repro.engines.faults import FaultSpec

            slowdown = FaultSpec(
                latency_rate=1.0, latency_seconds=spec.inject_latency
            )
        run_tasks = [
            RunTask(
                prescription,
                engine_name,
                spec.volume,
                dict(spec.params),
                configuration=profiles[engine_name].configuration(
                    spec.layout, fault=slowdown
                ),
                data_partitions=(
                    spec.data_partitions if spec.data_partitions > 1 else None
                ),
                chunk_size=spec.chunk_size,
            )
            for engine_name in engine_names
        ]
        cache = self.test_generator.dataset_cache
        cache_before = cache.stats() if cache is not None else None
        with tracer.span("execution", executor=spec.executor):
            try:
                outcomes = runner.run_many(run_tasks)
            finally:
                runner.close()
        results, failures = split_outcomes(outcomes)
        report.results.extend(results)
        report.failures.extend(failures)
        execution_detail: dict[str, Any] = {
            "runs": spec.repeats * len(tests),
            "executor": spec.executor,
            "layout": spec.layout,
        }
        if failures:
            # The captured per-task failure records (submission order):
            # what failed, why, and how many attempts the retry policy
            # spent — the audit trail of a degraded-but-complete run.
            execution_detail["failures"] = [
                failure.as_dict() for failure in failures
            ]
        if cache is not None:
            # This run's delta, not process-lifetime totals: earlier
            # runs through the same framework must not inflate it.
            execution_detail["dataset_cache"] = (
                cache.stats().since(cache_before).as_dict()
            )
        report.steps.append(
            StepReport(
                "execution",
                time.perf_counter() - started,
                execution_detail,
            )
        )

        # Step 5: Analysis & Evaluation — rank engines on the lead metric.
        started = time.perf_counter()
        with tracer.span("analysis-evaluation"):
            analysis: dict[str, Any] = {}
            if metric_names and report.results:
                lead = metric_names[0]
                lower_is_better = lead in (
                    "duration", "mean_latency", "latency_p99",
                    "latency_p95", "energy", "cost",
                )
                ranking = report.analyzer.ranking(
                    lead, higher_is_better=not lower_is_better
                )
                analysis["lead_metric"] = lead
                analysis["ranking"] = [
                    (result.engine, result.mean(lead))
                    for result in ranking
                    if lead in result.metrics
                ]
            if spec.should_record:
                analysis["recorded"] = self._record_outcomes(spec, report)
        report.steps.append(
            StepReport(
                "analysis-evaluation", time.perf_counter() - started, analysis
            )
        )
        return report

    def _record_outcomes(
        self, spec: BenchmarkSpec, report: ProcessReport
    ) -> dict[str, Any]:
        """Persist every outcome into the configured run store.

        One record per outcome (results and captured failures alike),
        each under the spec fingerprint of its engine so repeat runs of
        the same configuration accumulate into one comparable series.
        """
        from repro.analysis.store import (
            RunStore,
            environment_fingerprint,
            resolve_store_dir,
            spec_fingerprint,
        )

        from repro.tuning.profiles import get_profile

        store = RunStore(resolve_store_dir(spec.store_dir))
        environment = environment_fingerprint()
        for outcome in report.results + report.failures:
            fingerprint = spec_fingerprint(
                spec.prescription,
                outcome.engine,
                workload=outcome.workload,
                volume=spec.volume,
                repeats=spec.repeats,
                params=spec.params,
                chunk_size=spec.chunk_size,
                executor=spec.executor,
                data_partitions=spec.data_partitions,
                layout=spec.layout,
                tuning=get_profile(outcome.engine, spec.tuning).fingerprint(),
            )
            record = store.record_outcome(
                outcome, fingerprint, environment=environment
            )
            report.record_ids.append(record.record_id)
        return {"store": str(store.path), "record_ids": list(report.record_ids)}
