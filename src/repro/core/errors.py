"""Exception hierarchy for the repro benchmarking framework.

Every error raised by the framework derives from :class:`ReproError`, so
callers embedding the framework can catch a single base class.  Sub-classes
map one-to-one onto the stages of the benchmarking process described in the
paper (Figure 1): specification (planning), data generation, test
generation, and execution.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the repro framework."""


class SpecError(ReproError):
    """A benchmark specification is invalid or incomplete (Planning step)."""


class TuningError(SpecError):
    """A tuning profile is unknown or invalid for its engine
    (see :mod:`repro.tuning.profiles`)."""


class GenerationError(ReproError):
    """A data generator failed or was misconfigured (Data Generation step)."""


class ModelNotFittedError(GenerationError):
    """A veracity-preserving generator was asked to generate before ``fit``."""


class TestGenerationError(ReproError):
    """The test generator could not produce a prescribed test (Figure 4)."""


class UnknownOperationError(TestGenerationError):
    """A prescription references an operation that no engine implements."""


class ExecutionError(ReproError):
    """A prescribed test failed while running on an engine (Execution step)."""


class EngineError(ExecutionError):
    """An execution engine (substrate) raised an internal error."""


class FormatConversionError(ExecutionError):
    """A data set could not be converted to the format a test requires."""


class RegistryError(ReproError):
    """A component name was not found in (or clashed within) a registry."""


class MetricError(ReproError):
    """A metric could not be computed from the collected samples."""


class AnalysisError(ReproError):
    """The result-analysis subsystem could not complete a request
    (missing record, unknown baseline, empty series, corrupt store)."""


class ServiceError(ReproError):
    """The benchmark service could not satisfy a request (unknown job,
    invalid state transition, failed job result, shutdown race)."""


class LoadGenError(ReproError):
    """The load-generation subsystem was misconfigured or could not
    drive its target (unknown arrival kind, invalid plan, bad SLO)."""


class RequestShed(LoadGenError):
    """One load-generation request was shed instead of served.

    Raised by a :class:`~repro.loadgen.targets.LoadTarget` whose backing
    system refused the request at the door (the runner also sheds on its
    own bounded queue); the runner counts these toward the shed
    fraction rather than treating them as errors."""
