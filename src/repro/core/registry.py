"""Component registries.

The framework wires data generators, workloads, engines, and metrics by
name, so the user-interface layer can offer choices and prescriptions can
reference components declaratively (Figure 2).  A :class:`Registry` is a
typed name → factory map; module-level instances hold the framework-wide
catalogues.
"""

from __future__ import annotations

from collections.abc import Callable, Iterator
from typing import Generic, TypeVar

from repro.core.errors import RegistryError

T = TypeVar("T")


class Registry(Generic[T]):
    """A name → factory registry with helpful error messages."""

    def __init__(self, kind: str) -> None:
        self.kind = kind
        self._factories: dict[str, Callable[[], T]] = {}

    def register(self, name: str, factory: Callable[[], T]) -> None:
        """Register a factory; duplicate names are an error."""
        if name in self._factories:
            raise RegistryError(
                f"{self.kind} {name!r} is already registered"
            )
        self._factories[name] = factory

    def register_instance(self, name: str, instance: T) -> None:
        """Register an already-built instance (returned on every create)."""
        self.register(name, lambda: instance)

    def create(self, name: str) -> T:
        """Instantiate the named component."""
        factory = self._factories.get(name)
        if factory is None:
            raise RegistryError(
                f"unknown {self.kind} {name!r}; available: {self.names()}"
            )
        return factory()

    def names(self) -> list[str]:
        return sorted(self._factories)

    def __contains__(self, name: str) -> bool:
        return name in self._factories

    def __iter__(self) -> Iterator[str]:
        return iter(self.names())

    def __len__(self) -> int:
        return len(self._factories)

    def clear(self) -> None:
        """Remove every registration (used by tests)."""
        self._factories.clear()


# ---------------------------------------------------------------------------
# Framework-wide registries.  Factories live with the components; importing
# repro.workloads / repro.engines populates them (see repro/__init__.py).
# ---------------------------------------------------------------------------

#: name → DataGenerator factory
generators: Registry = Registry("data generator")
#: name → Workload factory
workloads: Registry = Registry("workload")
#: name → Engine factory
engines: Registry = Registry("engine")
#: name → Metric factory
metrics: Registry = Registry("metric")
