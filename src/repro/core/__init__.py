"""The paper's primary contribution: the benchmark framework core.

Sub-modules implement the five-step benchmarking process (Figure 1), the
three-layer architecture (Figure 2), abstract operations and workload
patterns (Section 3.3), prescriptions and the test generator (Figure 4),
and the metric taxonomy (Section 3.1).
"""
