"""Workload patterns (Section 3.3).

Patterns combine abstract operations into complex processing tasks.  The
paper defines exactly three:

* **single-operation** — one operation;
* **multi-operation** — a finite, known-in-advance sequence;
* **iterative-operation** — a body repeated under a stopping condition,
  so "the exact number of operations can [only] be known at run time".

:meth:`WorkloadPattern.unroll` drives execution: it yields operation
lists step by step, consulting the stopping condition between iterations
for the iterative pattern.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Callable, Iterator, Sequence
from dataclasses import dataclass
from typing import Any

from repro.core.errors import TestGenerationError
from repro.core.operations import AbstractOperation


class StoppingCondition(ABC):
    """Decides, at run time, whether an iterative pattern should stop."""

    @abstractmethod
    def should_stop(self, iteration: int, state: Any) -> bool:
        """``iteration`` counts completed body executions (from 1)."""

    def describe(self) -> str:
        return type(self).__name__


@dataclass
class FixedIterations(StoppingCondition):
    """Stop after exactly ``count`` iterations."""

    count: int

    def __post_init__(self) -> None:
        if self.count <= 0:
            raise TestGenerationError(
                f"iteration count must be positive, got {self.count}"
            )

    def should_stop(self, iteration: int, state: Any) -> bool:
        return iteration >= self.count

    def describe(self) -> str:
        return f"after {self.count} iterations"


@dataclass
class ConvergenceCondition(StoppingCondition):
    """Stop when successive states change less than ``tolerance``.

    ``distance`` maps (previous_state, state) to a float; the default
    works for numeric states.
    """

    tolerance: float
    max_iterations: int = 100
    distance: Callable[[Any, Any], float] = lambda a, b: abs(b - a)

    def __post_init__(self) -> None:
        if self.tolerance < 0:
            raise TestGenerationError(
                f"tolerance must be non-negative, got {self.tolerance}"
            )
        if self.max_iterations <= 0:
            raise TestGenerationError(
                f"max_iterations must be positive, got {self.max_iterations}"
            )
        self._previous: Any = None

    def should_stop(self, iteration: int, state: Any) -> bool:
        if iteration >= self.max_iterations:
            return True
        if self._previous is None:
            self._previous = state
            return False
        delta = self.distance(self._previous, state)
        self._previous = state
        return delta <= self.tolerance

    def describe(self) -> str:
        return f"on convergence (tol={self.tolerance}, cap={self.max_iterations})"


class WorkloadPattern(ABC):
    """Base class of the three workload patterns."""

    @property
    @abstractmethod
    def pattern_name(self) -> str:
        """The paper's name for this pattern."""

    @abstractmethod
    def unroll(
        self, state_after_step: Callable[[int], Any] | None = None
    ) -> Iterator[list[AbstractOperation]]:
        """Yield operation batches in execution order.

        For iterative patterns, ``state_after_step(iteration)`` supplies
        the runtime state the stopping condition inspects.
        """

    @abstractmethod
    def static_operation_count(self) -> int | None:
        """Operations known before running, or None for iterative patterns."""


class SingleOperationPattern(WorkloadPattern):
    """Exactly one abstract operation."""

    def __init__(self, operation: AbstractOperation) -> None:
        self.operation = operation

    @property
    def pattern_name(self) -> str:
        return "single-operation"

    def unroll(
        self, state_after_step: Callable[[int], Any] | None = None
    ) -> Iterator[list[AbstractOperation]]:
        yield [self.operation]

    def static_operation_count(self) -> int | None:
        return 1

    def __repr__(self) -> str:
        return f"SingleOperationPattern({self.operation.name})"


class MultiOperationPattern(WorkloadPattern):
    """A finite, ordered sequence of operations (a workflow).

    The paper's example: "an abstract pattern of a SQL query can contain
    select and put operations, in which the select operation executes
    first."
    """

    def __init__(self, operations: Sequence[AbstractOperation]) -> None:
        if not operations:
            raise TestGenerationError(
                "a multi-operation pattern needs at least one operation"
            )
        self.operations = list(operations)

    @property
    def pattern_name(self) -> str:
        return "multi-operation"

    def unroll(
        self, state_after_step: Callable[[int], Any] | None = None
    ) -> Iterator[list[AbstractOperation]]:
        yield list(self.operations)

    def static_operation_count(self) -> int | None:
        return len(self.operations)

    def __repr__(self) -> str:
        names = ", ".join(op.name for op in self.operations)
        return f"MultiOperationPattern([{names}])"


class IterativeOperationPattern(WorkloadPattern):
    """A body of operations repeated until a stopping condition holds."""

    def __init__(
        self,
        body: Sequence[AbstractOperation],
        stopping_condition: StoppingCondition,
    ) -> None:
        if not body:
            raise TestGenerationError(
                "an iterative pattern needs a non-empty body"
            )
        self.body = list(body)
        self.stopping_condition = stopping_condition

    @property
    def pattern_name(self) -> str:
        return "iterative-operation"

    def unroll(
        self, state_after_step: Callable[[int], Any] | None = None
    ) -> Iterator[list[AbstractOperation]]:
        iteration = 0
        while True:
            yield list(self.body)
            iteration += 1
            state = state_after_step(iteration) if state_after_step else None
            if self.stopping_condition.should_stop(iteration, state):
                return

    def static_operation_count(self) -> int | None:
        return None  # only known at run time, per the paper

    def __repr__(self) -> str:
        names = ", ".join(op.name for op in self.body)
        return (
            f"IterativeOperationPattern([{names}], "
            f"stop {self.stopping_condition.describe()})"
        )
