"""Default component registration.

Importing :mod:`repro` calls :func:`register_default_components`, which
fills the framework registries with every built-in data generator,
workload, and engine — the catalogue the user-interface layer and the
prescription repository draw from.
"""

from __future__ import annotations

from repro.core import registry

_registered = False


def register_default_components(force: bool = False) -> None:
    """Idempotently register the built-in generators, workloads, engines."""
    global _registered
    if _registered and not force:
        return

    from repro.datagen.graph import (
        ErdosRenyiGenerator,
        PreferentialAttachmentGenerator,
        RmatGraphGenerator,
    )
    from repro.datagen.kv import KeyValueGenerator
    from repro.datagen.media import SyntheticImageGenerator
    from repro.datagen.mixture import GaussianMixtureGenerator
    from repro.datagen.resume import ResumeGenerator
    from repro.datagen.stream import PoissonArrivals, StreamGenerator
    from repro.datagen.table import FittedTableGenerator
    from repro.datagen.text import (
        LdaTextGenerator,
        RandomTextGenerator,
        UnigramTextGenerator,
    )
    from repro.engines.dbms import DbmsEngine
    from repro.engines.dfs import DistributedFileSystem
    from repro.engines.mapreduce import MapReduceEngine
    from repro.engines.nosql import NoSqlStore
    from repro.engines.streaming import StreamingEngine
    from repro.workloads import ALL_WORKLOADS

    if force:
        registry.generators.clear()
        registry.workloads.clear()
        registry.engines.clear()

    generator_factories = {
        "random-text": RandomTextGenerator,
        "unigram-text": UnigramTextGenerator,
        # A small iteration count keeps interactive runs snappy; raise it
        # through a custom prescription for higher-fidelity veracity.
        "lda-text": lambda: LdaTextGenerator(iterations=15),
        "fitted-table": FittedTableGenerator,
        "rmat-graph": RmatGraphGenerator,
        "pa-graph": PreferentialAttachmentGenerator,
        "er-graph": ErdosRenyiGenerator,
        "poisson-stream": lambda: StreamGenerator(
            arrivals=PoissonArrivals(rate=1000.0), update_fraction=0.2
        ),
        "kv-records": KeyValueGenerator,
        "mixture-table": GaussianMixtureGenerator,
        "texture-images": SyntheticImageGenerator,
        "resumes": ResumeGenerator,
    }
    for name, factory in generator_factories.items():
        if name not in registry.generators:
            registry.generators.register(name, factory)

    for workload_class in ALL_WORKLOADS:
        if workload_class.name not in registry.workloads:
            registry.workloads.register(workload_class.name, workload_class)

    engine_factories = {
        "mapreduce": MapReduceEngine,
        "dfs": DistributedFileSystem,
        "dbms": DbmsEngine,
        "nosql": NoSqlStore,
        "streaming": StreamingEngine,
    }
    for name, factory in engine_factories.items():
        if name not in registry.engines:
            registry.engines.register(name, factory)

    _registered = True
