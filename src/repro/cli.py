"""Command-line interface to the benchmarking framework.

Usability is one of the paper's explicit requirements (Section 2.3:
"ease of deploying, configuring, and use … convenient user interfaces"),
so the framework ships a CLI::

    repro-bench list                      # prescriptions, engines, generators
    repro-bench run micro-wordcount --volume 300 --repeats 3
    repro-bench run oltp-read-write --engine nosql --param operation_count=500
    repro-bench generate lda-text --volume 50 --fit-on text-corpus --format text-lines
    repro-bench tables                    # regenerate Table 1 and Table 2
    repro-bench miniature HiBench --scale 0.5

Every command is also callable in-process via :func:`main` (what the
tests do).
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence

from repro.core.errors import ReproError


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description="A 4V-aware big data benchmarking framework "
        "(reproduction of Han & Lu, 'On Big Data Benchmarking', 2014).",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("list", help="list prescriptions, engines, "
                                     "generators, workloads, and formats")

    run_parser = commands.add_parser(
        "run", help="run a prescription through the five-step process"
    )
    run_parser.add_argument("prescription", help="prescription name")
    run_parser.add_argument("--engine", action="append", default=[],
                            help="engine(s) to run on (default: all "
                                 "supported)")
    run_parser.add_argument("--volume", type=int, default=None,
                            help="data volume override")
    run_parser.add_argument("--repeats", type=int, default=1)
    run_parser.add_argument("--partitions", type=int, default=1,
                            help="parallel data-generator partitions")
    run_parser.add_argument("--chunk-size", type=int, default=None,
                            help="stream the data set as record batches "
                                 "of this size (bounded memory); default "
                                 "is the REPRO_CHUNK_SIZE environment "
                                 "variable, else fully materialized")
    run_parser.add_argument("--executor", default="serial",
                            choices=["serial", "thread", "process"],
                            help="fan-out backend for independent runs")
    run_parser.add_argument("--workers", type=int, default=None,
                            help="worker count for the pooled executor "
                                 "backends (default: one per CPU)")
    run_parser.add_argument("--on-error", default="abort",
                            choices=["abort", "continue"],
                            help="failure policy: abort the run on the "
                                 "first task error, or capture per-task "
                                 "failures and keep going")
    run_parser.add_argument("--retries", type=int, default=0,
                            help="extra attempts per task after the first")
    run_parser.add_argument("--retry-backoff", type=float, default=0.0,
                            help="base backoff (seconds) before the second "
                                 "attempt; grows exponentially with seeded "
                                 "jitter")
    run_parser.add_argument("--task-timeout", type=float, default=None,
                            help="wall-clock budget per task attempt, in "
                                 "seconds")
    run_parser.add_argument("--param", action="append", default=[],
                            metavar="KEY=VALUE",
                            help="workload parameter override")
    run_parser.add_argument("--json", action="store_true",
                            help="emit results as JSON")
    run_parser.add_argument("--trace", action="store_true",
                            help="record spans and print the ASCII span "
                                 "tree after the run")
    run_parser.add_argument("--trace-out", default=None, metavar="PATH",
                            help="write the recorded span trees as JSONL "
                                 "(implies tracing)")
    run_parser.add_argument("--repository", default=None,
                            help="load prescriptions from a JSON file "
                                 "instead of the built-in repository")

    export_parser = commands.add_parser(
        "export-prescriptions",
        help="write the prescription repository to a JSON file (§5.2 "
             "reusable prescriptions)",
    )
    export_parser.add_argument("path", help="output file path")

    generate_parser = commands.add_parser(
        "generate", help="run one data generator and print a sample"
    )
    generate_parser.add_argument("generator", help="registered generator name")
    generate_parser.add_argument("--volume", type=int, default=100)
    generate_parser.add_argument("--fit-on", default=None,
                                 help="seed data set for veracity-aware "
                                      "generators")
    generate_parser.add_argument("--format", dest="format_name",
                                 default=None,
                                 help="convert output to this format")
    generate_parser.add_argument("--sample", type=int, default=5,
                                 help="records to print")
    generate_parser.add_argument("--seed", type=int, default=0)

    commands.add_parser(
        "tables", help="regenerate the paper's Table 1 and Table 2"
    )

    miniature_parser = commands.add_parser(
        "miniature", help="run a surveyed suite's miniature"
    )
    miniature_parser.add_argument("suite", help="suite name (see `tables`)")
    miniature_parser.add_argument("--scale", type=float, default=1.0)

    return parser


def _parse_params(entries: list[str]) -> dict[str, object]:
    params: dict[str, object] = {}
    for entry in entries:
        if "=" not in entry:
            raise SystemExit(f"--param expects KEY=VALUE, got {entry!r}")
        key, _, raw = entry.partition("=")
        value: object = raw
        for caster in (int, float):
            try:
                value = caster(raw)
                break
            except ValueError:
                continue
        params[key] = value
    return params


def _command_list(out) -> int:
    from repro import BigDataBenchmark
    from repro.datagen.formats import available_formats

    framework = BigDataBenchmark()
    ui = framework.user_interface
    print("prescriptions:", file=out)
    for name in ui.available_prescriptions():
        prescription = framework.prescription(name)
        print(f"  {name:36s} [{prescription.domain}] "
              f"workload={prescription.workload}", file=out)
    print("engines:       " + ", ".join(ui.available_engines()), file=out)
    print("generators:    " + ", ".join(ui.available_generators()), file=out)
    print("workloads:     " + ", ".join(ui.available_workloads()), file=out)
    print("formats:       " + ", ".join(available_formats()), file=out)
    return 0


def _command_run(args, out) -> int:
    from repro import BenchmarkSpec, BigDataBenchmark
    from repro.execution.report import render_results, render_trace
    from repro.observability import NULL_TRACER, Tracer

    repository = None
    if getattr(args, "repository", None):
        from pathlib import Path

        from repro.core.serialization import repository_from_json

        repository = repository_from_json(
            Path(args.repository).read_text()
        )
    framework = BigDataBenchmark(repository=repository)
    # --chunk-size overrides the REPRO_CHUNK_SIZE default; when the flag
    # is absent the spec's default_factory reads the environment.
    spec_overrides = {}
    if args.chunk_size is not None:
        spec_overrides["chunk_size"] = args.chunk_size
    spec = BenchmarkSpec(
        prescription=args.prescription,
        engines=list(args.engine),
        volume=args.volume,
        repeats=args.repeats,
        data_partitions=args.partitions,
        params=_parse_params(args.param),
        executor=args.executor,
        max_workers=args.workers,
        on_error=args.on_error,
        retries=args.retries,
        retry_backoff=args.retry_backoff,
        task_timeout=args.task_timeout,
        **spec_overrides,
    )
    tracing = args.trace or args.trace_out is not None
    tracer = Tracer() if tracing else NULL_TRACER
    report = framework.run(spec, tracer=tracer)
    if args.trace_out is not None:
        from pathlib import Path

        Path(args.trace_out).write_text(tracer.to_jsonl() + "\n")
    outcomes = report.results + report.failures
    if args.json:
        print(render_results(outcomes, style="json"), file=out)
        return 0
    print("five-step process:", file=out)
    for step in report.steps:
        print(f"  {step.step:22s} {step.elapsed_seconds * 1e3:10.2f} ms",
              file=out)
    cache_stats = report.step("execution").detail.get("dataset_cache")
    if cache_stats:
        print(f"dataset cache: {cache_stats['hits']} hits, "
              f"{cache_stats['misses']} misses", file=out)
    metric_names = (
        framework.prescription(args.prescription).metric_names
        or ["duration", "throughput"]
    )
    print(render_results(outcomes, metrics=metric_names), file=out)
    if report.failures:
        print(f"failures: {len(report.failures)} task(s) failed "
              f"(on-error=continue kept the run going)", file=out)
    if args.trace:
        print("\nspan tree:", file=out)
        print(render_trace(tracer.roots()), file=out)
    return 0


def _command_generate(args, out) -> int:
    from repro.core import registry
    from repro.core.prescription import load_seed
    from repro.datagen.formats import convert

    generator = registry.generators.create(args.generator)
    generator.seed = args.seed
    if args.fit_on:
        generator.fit(load_seed(args.fit_on))
    dataset = generator.generate(args.volume)
    print(f"generated {dataset.num_records} records "
          f"({dataset.data_type.label}, ~{dataset.estimated_bytes()} bytes)",
          file=out)
    if args.format_name:
        converted = convert(dataset, args.format_name)
        payload = converted.payload
        sample = payload[: args.sample] if hasattr(payload, "__getitem__") \
            else list(payload)[: args.sample]
        for line in sample:
            print(f"  {line}", file=out)
    else:
        for record in dataset.head(args.sample):
            print(f"  {record!r}", file=out)
    return 0


def _command_tables(out) -> int:
    from repro.execution.report import ascii_table
    from repro.suites import (
        generate_table1,
        generate_table2,
        table1_matches_paper,
        table2_matches_paper,
    )

    print("Table 1 — data generation techniques:", file=out)
    print(
        ascii_table(
            [
                {"Benchmark": row.benchmark, "Volume": row.volume,
                 "Velocity": row.velocity, "Variety": row.variety,
                 "Veracity": row.veracity}
                for row in generate_table1()
            ]
        ),
        file=out,
    )
    ok1, _ = table1_matches_paper()
    print(f"matches the paper: {'yes' if ok1 else 'NO'}", file=out)

    print("\nTable 2 — benchmarking techniques:", file=out)
    print(
        ascii_table(
            [
                {"Benchmark": row.benchmark, "Type": row.workload_type,
                 "Examples": row.examples[:50], "Stacks": row.software_stacks}
                for row in generate_table2()
            ]
        ),
        file=out,
    )
    ok2, _ = table2_matches_paper()
    print(f"matches the paper: {'yes' if ok2 else 'NO'}", file=out)
    return 0 if ok1 and ok2 else 1


def _command_miniature(args, out) -> int:
    from repro.execution.report import ascii_table
    from repro.suites import run_miniature

    report = run_miniature(args.suite, scale=args.scale)
    print(f"{report.suite}: {report.notes}", file=out)
    print(
        ascii_table(
            [
                {"workload": name, "duration_s": seconds}
                for name, seconds in sorted(report.summary().items())
            ]
        ),
        file=out,
    )
    return 0


def _command_export(args, out) -> int:
    from pathlib import Path

    from repro.core.prescription import builtin_repository
    from repro.core.serialization import repository_to_json

    repository = builtin_repository()
    Path(args.path).write_text(repository_to_json(repository))
    print(f"wrote {len(repository)} prescriptions to {args.path}", file=out)
    return 0


def main(argv: Sequence[str] | None = None, out=None) -> int:
    """CLI entry point; returns the process exit code."""
    out = out or sys.stdout
    args = _build_parser().parse_args(argv)
    try:
        if args.command == "list":
            return _command_list(out)
        if args.command == "run":
            return _command_run(args, out)
        if args.command == "generate":
            return _command_generate(args, out)
        if args.command == "tables":
            return _command_tables(out)
        if args.command == "miniature":
            return _command_miniature(args, out)
        if args.command == "export-prescriptions":
            return _command_export(args, out)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
