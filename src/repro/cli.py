"""Command-line interface to the benchmarking framework.

Usability is one of the paper's explicit requirements (Section 2.3:
"ease of deploying, configuring, and use … convenient user interfaces"),
so the framework ships a CLI::

    repro-bench list                      # prescriptions, engines, generators
    repro-bench run micro-wordcount --volume 300 --repeats 3
    repro-bench run oltp-read-write --engine nosql --param operation_count=500
    repro-bench generate lda-text --volume 50 --fit-on text-corpus --format text-lines
    repro-bench tables                    # regenerate Table 1 and Table 2
    repro-bench miniature HiBench --scale 0.5
    repro-bench run micro-sort --repeats 5 --record   # persist to the run store
    repro-bench runs list                 # inspect recorded runs
    repro-bench baseline promote latest main
    repro-bench compare r0001 r0002       # statistical comparison
    repro-bench gate --baseline main      # exit 1 on regression (CI)
    repro-bench submit micro-wordcount --record       # one job via the service
    repro-bench serve --spec-file batch.json          # a batch of jobs
    repro-bench jobs list                 # audit the service job log

The store/executor flags (``--store-dir``, ``--record``, ``--executor``,
``--workers``) are shared parent parsers, so they spell the same on
``run``, ``compare``, ``gate``, and the job verbs; the historical
spellings (``--store``, ``--backend``, ``--max-workers``) remain hidden
aliases.  Every command is also callable in-process via :func:`main`
(what the tests do).
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence

from repro.core.errors import ReproError


_EXECUTOR_CHOICES = ["serial", "thread", "process"]


def _store_parent() -> argparse.ArgumentParser:
    """Shared ``--store-dir`` flag (hidden legacy alias: ``--store``)."""
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument("--store-dir", default=None, metavar="DIR",
                        help="run-store directory (default: "
                             "REPRO_STORE_DIR, else .repro-runs)")
    # Hidden alias: SUPPRESS keeps it from clobbering the default above
    # when absent, and out of --help when present.
    parent.add_argument("--store", dest="store_dir",
                        default=argparse.SUPPRESS, metavar="DIR",
                        help=argparse.SUPPRESS)
    return parent


def _common_parent(
    store_parent: argparse.ArgumentParser,
) -> argparse.ArgumentParser:
    """Store + execution flags shared by run/compare/gate/submit/serve.

    Hidden legacy aliases: ``--backend`` (for ``--executor``) and
    ``--max-workers`` (for ``--workers``).
    """
    parent = argparse.ArgumentParser(
        add_help=False, parents=[store_parent]
    )
    parent.add_argument("--record", action="store_true",
                        help="record outcomes into the persistent run "
                             "store")
    parent.add_argument("--executor", default="serial",
                        choices=_EXECUTOR_CHOICES,
                        help="fan-out backend for independent runs")
    parent.add_argument("--backend", dest="executor",
                        default=argparse.SUPPRESS,
                        choices=_EXECUTOR_CHOICES,
                        help=argparse.SUPPRESS)
    parent.add_argument("--workers", type=int, default=None,
                        help="worker count for the pooled executor "
                             "backends (default: one per CPU)")
    parent.add_argument("--max-workers", dest="workers", type=int,
                        default=argparse.SUPPRESS,
                        help=argparse.SUPPRESS)
    parent.add_argument("--layout", default="row",
                        choices=["row", "columnar"],
                        help="execution layout: row-at-a-time iterators "
                             "(the correctness oracle) or batch-at-a-time "
                             "columnar operators")
    return parent


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description="A 4V-aware big data benchmarking framework "
        "(reproduction of Han & Lu, 'On Big Data Benchmarking', 2014).",
    )
    store = _store_parent()
    common = _common_parent(store)
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("list", help="list prescriptions, engines, "
                                     "generators, workloads, and formats")

    run_parser = commands.add_parser(
        "run", parents=[common],
        help="run a prescription through the five-step process",
    )
    run_parser.add_argument("prescription", help="prescription name")
    run_parser.add_argument("--engine", action="append", default=[],
                            help="engine(s) to run on (default: all "
                                 "supported)")
    run_parser.add_argument("--volume", type=int, default=None,
                            help="data volume override")
    run_parser.add_argument("--repeats", type=int, default=1)
    run_parser.add_argument("--partitions", type=int, default=1,
                            help="parallel data-generator partitions")
    run_parser.add_argument("--chunk-size", type=int, default=None,
                            help="stream the data set as record batches "
                                 "of this size (bounded memory); default "
                                 "is the REPRO_CHUNK_SIZE environment "
                                 "variable, else fully materialized")
    run_parser.add_argument("--no-warm-pool", action="store_true",
                            help="process backend: ship each task as a "
                                 "self-contained payload to a fresh worker "
                                 "runner instead of streaming descriptors "
                                 "to a warm pool")
    run_parser.add_argument("--on-error", default="abort",
                            choices=["abort", "continue"],
                            help="failure policy: abort the run on the "
                                 "first task error, or capture per-task "
                                 "failures and keep going")
    run_parser.add_argument("--retries", type=int, default=0,
                            help="extra attempts per task after the first")
    run_parser.add_argument("--retry-backoff", type=float, default=0.0,
                            help="base backoff (seconds) before the second "
                                 "attempt; grows exponentially with seeded "
                                 "jitter")
    run_parser.add_argument("--task-timeout", type=float, default=None,
                            help="wall-clock budget per task attempt, in "
                                 "seconds")
    run_parser.add_argument("--param", action="append", default=[],
                            metavar="KEY=VALUE",
                            help="workload parameter override")
    run_parser.add_argument("--json", action="store_true",
                            help="emit results as JSON")
    run_parser.add_argument("--trace", action="store_true",
                            help="record spans and print the ASCII span "
                                 "tree after the run")
    run_parser.add_argument("--trace-out", default=None, metavar="PATH",
                            help="write the recorded span trees as JSONL "
                                 "(implies tracing)")
    run_parser.add_argument("--repository", default=None,
                            help="load prescriptions from a JSON file "
                                 "instead of the built-in repository")
    run_parser.add_argument("--history", action="store_true",
                            help="render the history style (per-metric "
                                 "sparklines from the run store) instead "
                                 "of the plain table; implies --record")
    run_parser.add_argument("--baseline", default=None, metavar="NAME",
                            help="with --history: show per-metric deltas "
                                 "against this promoted baseline")
    run_parser.add_argument("--inject-latency", type=float, default=None,
                            metavar="SECONDS",
                            help="synthetic per-execution slowdown through "
                                 "the fault substrate (regression-gate "
                                 "demos and CI)")
    run_parser.add_argument("--tuning", default="normal", metavar="PROFILE",
                            help="tuning profile applied to every engine: "
                                 "normal, optimized, or normal+<knob> "
                                 "(see repro.tuning.profiles)")

    runs_parser = commands.add_parser(
        "runs", help="inspect the persistent run store"
    )
    runs_commands = runs_parser.add_subparsers(
        dest="runs_command", required=True
    )
    runs_list = runs_commands.add_parser(
        "list", parents=[store], help="list recorded runs"
    )
    runs_list.add_argument("--series", default=None, metavar="KEY",
                           help="only runs of this series (fingerprint "
                                "hash prefix)")
    runs_list.add_argument("--latest", action="store_true",
                           help="print only the newest record id "
                                "(script-friendly)")
    runs_show = runs_commands.add_parser(
        "show", parents=[store], help="show one recorded run in full"
    )
    runs_show.add_argument("record", help="record id, unique prefix, "
                                          "series key, or 'latest'")

    compare_parser = commands.add_parser(
        "compare", parents=[common],
        help="statistically compare two recorded runs",
    )
    compare_parser.add_argument("baseline", help="baseline record reference")
    compare_parser.add_argument("candidate", help="candidate record reference")
    compare_parser.add_argument("--metric", action="append", default=[],
                                help="metric(s) to compare (default: all "
                                     "shared)")
    compare_parser.add_argument("--tolerance", type=float, default=None,
                                help="relative effect-size threshold "
                                     "(default 0.05)")
    compare_parser.add_argument("--json", action="store_true",
                                help="emit the comparison as JSON")

    gate_parser = commands.add_parser(
        "gate", parents=[common],
        help="check a candidate run against a baseline "
             "(exit 0 = pass, 1 = regression)",
    )
    gate_parser.add_argument("candidate", nargs="?", default=None,
                             help="candidate record reference (default: "
                                  "newest run in the baseline's series)")
    gate_parser.add_argument("--baseline", required=True, metavar="NAME",
                             help="promoted baseline name to gate against")
    gate_parser.add_argument("--metric", action="append", default=[],
                             help="metric(s) to gate on (default: all "
                                  "shared)")
    gate_parser.add_argument("--tolerance", type=float, default=None,
                             help="relative effect-size threshold "
                                  "(default 0.05)")
    gate_parser.add_argument("--fail-on-inconclusive", action="store_true",
                             help="treat inconclusive verdicts as failures")
    gate_parser.add_argument("--json", action="store_true",
                             help="emit the gate report as JSON")

    baseline_parser = commands.add_parser(
        "baseline", help="manage named baselines in the run store"
    )
    baseline_commands = baseline_parser.add_subparsers(
        dest="baseline_command", required=True
    )
    baseline_promote = baseline_commands.add_parser(
        "promote", parents=[store],
        help="promote a recorded run to a named baseline",
    )
    baseline_promote.add_argument("record", help="record reference "
                                                 "(id/prefix/'latest')")
    baseline_promote.add_argument("name", help="baseline name")
    baseline_commands.add_parser(
        "list", parents=[store], help="list promoted baselines"
    )
    baseline_remove = baseline_commands.add_parser(
        "remove", parents=[store],
        help="remove a named baseline (the record stays)",
    )
    baseline_remove.add_argument("name", help="baseline name")

    submit_parser = commands.add_parser(
        "submit", parents=[common],
        help="submit one benchmark job to the service and wait for it",
    )
    submit_parser.add_argument("prescription", help="prescription name")
    submit_parser.add_argument("--engine", action="append", default=[],
                               help="engine(s) to run on (default: all "
                                    "supported)")
    submit_parser.add_argument("--volume", type=int, default=None,
                               help="data volume override")
    submit_parser.add_argument("--repeats", type=int, default=1)
    submit_parser.add_argument("--param", action="append", default=[],
                               metavar="KEY=VALUE",
                               help="workload parameter override")
    submit_parser.add_argument("--priority", type=int, default=0,
                               help="queue priority (higher drains first)")
    submit_parser.add_argument("--client", default="cli",
                               dest="client_name", metavar="NAME",
                               help="client identity for admission quotas")
    submit_parser.add_argument("--schedulers", type=int, default=2,
                               help="scheduler threads for the "
                                    "in-process service")
    submit_parser.add_argument("--json", action="store_true",
                               help="emit results as JSON")
    submit_parser.add_argument("--tuning", default="normal",
                               metavar="PROFILE",
                               help="tuning profile applied to every "
                                    "engine: normal, optimized, or "
                                    "normal+<knob>")

    ablate_parser = commands.add_parser(
        "ablate", parents=[common],
        help="run a workload × engine × tuning-profile ablation matrix "
             "with statistical verdicts",
    )
    ablate_parser.add_argument("--workloads", required=True,
                               metavar="NAMES",
                               help="comma-separated prescription names, "
                                    "aliases (relational, micro, oltp, "
                                    "realtime), or unambiguous prefixes")
    ablate_parser.add_argument("--engines", default=None, metavar="NAMES",
                               help="comma-separated engines (default: "
                                    "dbms,mapreduce)")
    ablate_parser.add_argument("--repeats", type=int, default=5,
                               help="repeats per cell (>= 5 gives the "
                                    "Mann-Whitney test enough power at "
                                    "alpha=0.05)")
    ablate_parser.add_argument("--volume", type=int, default=None,
                               help="data volume override")
    ablate_parser.add_argument("--seed", type=int, default=0,
                               help="generation + bootstrap seed (same "
                                    "seed, same verdicts)")
    ablate_parser.add_argument("--param", action="append", default=[],
                               metavar="KEY=VALUE",
                               help="workload parameter override")
    ablate_parser.add_argument("--chunk-size", type=int, default=None,
                               help="stream data sets as record batches "
                                    "of this size")
    ablate_parser.add_argument("--no-warm-pool", action="store_true",
                               help="process backend: cold per-task "
                                    "payloads instead of a warm pool")
    ablate_parser.add_argument("--no-one-offs", action="store_true",
                               help="skip the per-knob one-off profiles "
                                    "(normal vs optimized only)")
    ablate_parser.add_argument("--metric", action="append", default=[],
                               help="metric(s) to judge; the first is the "
                                    "lead metric (default: the "
                                    "prescription's lead metric)")
    ablate_parser.add_argument("--tolerance", type=float, default=None,
                               help="relative effect-size threshold for "
                                    "verdicts (default: 0.05)")
    ablate_parser.add_argument("--alpha", type=float, default=None,
                               help="significance level (default: 0.05)")
    ablate_parser.add_argument("--style", default="ascii",
                               choices=["ascii", "markdown", "json"],
                               help="report rendering style")
    ablate_parser.add_argument("--service", action="store_true",
                               help="submit each cell as a queued job to "
                                    "the in-process benchmark service "
                                    "instead of a local runner")
    ablate_parser.add_argument("--schedulers", type=int, default=2,
                               help="scheduler threads with --service")

    load_parser = commands.add_parser(
        "load", parents=[common],
        help="drive a workload, the service, or a synthetic model at a "
             "controlled rate and judge the run against an SLO "
             "(exit 0 = SLO met)",
    )
    load_parser.add_argument("prescription", nargs="?", default=None,
                             help="prescribed workload to drive (omit "
                                  "for the synthetic service-time "
                                  "model)")
    load_parser.add_argument("--arrival", default="poisson",
                             choices=["constant", "poisson", "bursty",
                                      "diurnal"],
                             help="open-loop arrival process shape")
    load_parser.add_argument("--rate", type=float, default=100.0,
                             help="target offered rate, requests/s")
    load_parser.add_argument("--duration", type=float, default=10.0,
                             help="run length in (virtual or wall) "
                                  "seconds")
    load_parser.add_argument("--sessions", type=int, default=0,
                             help="closed-loop session count (>0 "
                                  "replaces the arrival schedule)")
    load_parser.add_argument("--think-time", type=float, default=0.0,
                             help="mean think time between closed-loop "
                                  "requests, seconds")
    load_parser.add_argument("--seed", type=int, default=0,
                             help="seed for arrivals, service times, "
                                  "and think times")
    load_parser.add_argument("--clock", default="virtual",
                             choices=["virtual", "real"],
                             help="virtual = deterministic simulation; "
                                  "real = paced wall-clock dispatch")
    load_parser.add_argument("--concurrency", type=int, default=4,
                             help="simulated servers / worker threads")
    load_parser.add_argument("--queue-capacity", type=int, default=64,
                             help="waiting requests beyond which "
                                  "arrivals are shed")
    load_parser.add_argument("--engine", default=None,
                             help="engine for a prescribed workload "
                                  "(default: first supported)")
    load_parser.add_argument("--volume", type=int, default=None,
                             help="data volume override for a "
                                  "prescribed workload")
    load_parser.add_argument("--param", action="append", default=[],
                             metavar="KEY=VALUE",
                             help="workload parameter override")
    load_parser.add_argument("--service", action="store_true",
                             help="drive the benchmark service (one "
                                  "request = one job submit+wait)")
    load_parser.add_argument("--schedulers", type=int, default=2,
                             help="scheduler threads for the in-process "
                                  "service (with --service)")
    load_parser.add_argument("--mean-service", type=float, default=0.005,
                             help="synthetic target mean service time, "
                                  "seconds")
    load_parser.add_argument("--service-distribution", default="lognormal",
                             choices=["constant", "exponential",
                                      "lognormal"],
                             help="synthetic service-time distribution")
    load_parser.add_argument("--burst-factor", type=float, default=None,
                             help="bursty arrivals: burst-to-nominal "
                                  "rate ratio")
    load_parser.add_argument("--period", type=float, default=None,
                             help="diurnal arrivals: cycle length, "
                                  "seconds")
    load_parser.add_argument("--amplitude", type=float, default=None,
                             help="diurnal arrivals: modulation depth "
                                  "in [0, 1)")
    load_parser.add_argument("--slo-min-rate", type=float, default=0.95,
                             help="completion rate must reach this "
                                  "fraction of the offered rate")
    load_parser.add_argument("--slo-p50", type=float, default=None,
                             metavar="SECONDS",
                             help="p50 latency budget")
    load_parser.add_argument("--slo-p95", type=float, default=None,
                             metavar="SECONDS",
                             help="p95 latency budget")
    load_parser.add_argument("--slo-p99", type=float, default=None,
                             metavar="SECONDS",
                             help="p99 latency budget")
    load_parser.add_argument("--slo-max-shed", type=float, default=0.05,
                             help="tolerated shed fraction")
    load_parser.add_argument("--slo-max-errors", type=float, default=0.0,
                             help="tolerated error fraction")
    load_parser.add_argument("--json", action="store_true",
                             help="emit the report as JSON")

    serve_parser = commands.add_parser(
        "serve", parents=[common],
        help="run a batch of job specs through the service "
             "(exit 0 = all done)",
    )
    serve_parser.add_argument("--spec-file", required=True, metavar="PATH",
                              help="JSON file holding one versioned "
                                   "BenchmarkSpec payload or a list of "
                                   "them")
    serve_parser.add_argument("--schedulers", type=int, default=2,
                              help="scheduler threads draining the queue")
    serve_parser.add_argument("--client", default="cli",
                              dest="client_name", metavar="NAME",
                              help="client identity for admission quotas")
    serve_parser.add_argument("--quiet", action="store_true",
                              help="suppress the live job-event lines")

    jobs_parser = commands.add_parser(
        "jobs", help="inspect the service job log"
    )
    jobs_commands = jobs_parser.add_subparsers(
        dest="jobs_command", required=True
    )
    jobs_list = jobs_commands.add_parser(
        "list", parents=[store], help="list logged jobs"
    )
    jobs_list.add_argument("--state", default=None,
                           help="only jobs in this lifecycle state")
    jobs_show = jobs_commands.add_parser(
        "show", parents=[store], help="show one job's full lifecycle"
    )
    jobs_show.add_argument("job", help="job id or unique prefix")
    jobs_cancel = jobs_commands.add_parser(
        "cancel", parents=[store],
        help="mark a non-terminal logged job cancelled (an orphan from "
             "a dead service process; a live orchestrator is not "
             "notified)",
    )
    jobs_cancel.add_argument("job", help="job id or unique prefix")

    export_parser = commands.add_parser(
        "export-prescriptions",
        help="write the prescription repository to a JSON file (§5.2 "
             "reusable prescriptions)",
    )
    export_parser.add_argument("path", help="output file path")

    generate_parser = commands.add_parser(
        "generate", help="run one data generator and print a sample"
    )
    generate_parser.add_argument("generator", help="registered generator name")
    generate_parser.add_argument("--volume", type=int, default=100)
    generate_parser.add_argument("--fit-on", default=None,
                                 help="seed data set for veracity-aware "
                                      "generators")
    generate_parser.add_argument("--format", dest="format_name",
                                 default=None,
                                 help="convert output to this format")
    generate_parser.add_argument("--sample", type=int, default=5,
                                 help="records to print")
    generate_parser.add_argument("--seed", type=int, default=0)

    commands.add_parser(
        "tables", help="regenerate the paper's Table 1 and Table 2"
    )

    miniature_parser = commands.add_parser(
        "miniature", help="run a surveyed suite's miniature"
    )
    miniature_parser.add_argument("suite", help="suite name (see `tables`)")
    miniature_parser.add_argument("--scale", type=float, default=1.0)

    return parser


def _parse_params(entries: list[str]) -> dict[str, object]:
    params: dict[str, object] = {}
    for entry in entries:
        if "=" not in entry:
            raise SystemExit(f"--param expects KEY=VALUE, got {entry!r}")
        key, _, raw = entry.partition("=")
        value: object = raw
        for caster in (int, float):
            try:
                value = caster(raw)
                break
            except ValueError:
                continue
        params[key] = value
    return params


def _command_list(out) -> int:
    from repro import BigDataBenchmark
    from repro.datagen.formats import available_formats

    framework = BigDataBenchmark()
    ui = framework.user_interface
    print("prescriptions:", file=out)
    for name in ui.available_prescriptions():
        prescription = framework.prescription(name)
        print(f"  {name:36s} [{prescription.domain}] "
              f"workload={prescription.workload}", file=out)
    print("engines:       " + ", ".join(ui.available_engines()), file=out)
    print("generators:    " + ", ".join(ui.available_generators()), file=out)
    print("workloads:     " + ", ".join(ui.available_workloads()), file=out)
    print("formats:       " + ", ".join(available_formats()), file=out)
    return 0


def _command_run(args, out) -> int:
    from repro import api
    from repro.core.prescription import builtin_repository
    from repro.core.spec import BenchmarkSpec
    from repro.execution.report import render_results, render_trace
    from repro.observability import NULL_TRACER, Tracer

    repository = None
    if getattr(args, "repository", None):
        from pathlib import Path

        from repro.core.serialization import repository_from_json

        repository = repository_from_json(
            Path(args.repository).read_text()
        )
    # --chunk-size overrides the REPRO_CHUNK_SIZE default; when the flag
    # is absent the spec's default_factory reads the environment.
    spec_overrides = {}
    if args.chunk_size is not None:
        spec_overrides["chunk_size"] = args.chunk_size
    # --store-dir overrides the REPRO_STORE_DIR default; --history needs
    # the run recorded to have anything to chart.
    if args.store_dir is not None:
        spec_overrides["store_dir"] = args.store_dir
    spec = BenchmarkSpec(
        prescription=args.prescription,
        engines=list(args.engine),
        volume=args.volume,
        repeats=args.repeats,
        data_partitions=args.partitions,
        params=_parse_params(args.param),
        executor=args.executor,
        max_workers=args.workers,
        warm_pool=not args.no_warm_pool,
        on_error=args.on_error,
        retries=args.retries,
        retry_backoff=args.retry_backoff,
        task_timeout=args.task_timeout,
        record=args.record or args.history,
        inject_latency=args.inject_latency,
        layout=args.layout,
        tuning=args.tuning,
        **spec_overrides,
    )
    tracing = args.trace or args.trace_out is not None
    tracer = Tracer() if tracing else NULL_TRACER
    report = api.run(spec, repository=repository, tracer=tracer)
    if args.trace_out is not None:
        from pathlib import Path

        Path(args.trace_out).write_text(tracer.to_jsonl() + "\n")
    outcomes = report.results + report.failures
    if args.json:
        print(render_results(outcomes, style="json"), file=out)
        return 0
    print("five-step process:", file=out)
    for step in report.steps:
        print(f"  {step.step:22s} {step.elapsed_seconds * 1e3:10.2f} ms",
              file=out)
    cache_stats = report.step("execution").detail.get("dataset_cache")
    if cache_stats:
        print(f"dataset cache: {cache_stats['hits']} hits, "
              f"{cache_stats['misses']} misses", file=out)
    metric_names = (
        (repository or builtin_repository()).get(args.prescription)
        .metric_names
        or ["duration", "throughput"]
    )
    if args.history:
        from repro.analysis.store import RunStore, resolve_store_dir

        store = RunStore(resolve_store_dir(spec.store_dir))
        print(
            render_results(
                outcomes,
                style="history",
                metrics=metric_names,
                store=store,
                baseline=args.baseline,
            ),
            file=out,
        )
    else:
        print(render_results(outcomes, metrics=metric_names), file=out)
    if report.record_ids:
        from repro.analysis.store import resolve_store_dir

        print(
            f"recorded {len(report.record_ids)} run(s) to "
            f"{resolve_store_dir(spec.store_dir)}: "
            + ", ".join(report.record_ids),
            file=out,
        )
    if report.failures:
        print(f"failures: {len(report.failures)} task(s) failed "
              f"(on-error=continue kept the run going)", file=out)
    if args.trace:
        print("\nspan tree:", file=out)
        print(render_trace(tracer.roots()), file=out)
    return 0


def _command_generate(args, out) -> int:
    from repro.core import registry
    from repro.core.prescription import load_seed
    from repro.datagen.formats import convert

    generator = registry.generators.create(args.generator)
    generator.seed = args.seed
    if args.fit_on:
        generator.fit(load_seed(args.fit_on))
    dataset = generator.generate(args.volume)
    print(f"generated {dataset.num_records} records "
          f"({dataset.data_type.label}, ~{dataset.estimated_bytes()} bytes)",
          file=out)
    if args.format_name:
        converted = convert(dataset, args.format_name)
        payload = converted.payload
        sample = payload[: args.sample] if hasattr(payload, "__getitem__") \
            else list(payload)[: args.sample]
        for line in sample:
            print(f"  {line}", file=out)
    else:
        for record in dataset.head(args.sample):
            print(f"  {record!r}", file=out)
    return 0


def _command_tables(out) -> int:
    from repro.execution.report import ascii_table
    from repro.suites import (
        generate_table1,
        generate_table2,
        table1_matches_paper,
        table2_matches_paper,
    )

    print("Table 1 — data generation techniques:", file=out)
    print(
        ascii_table(
            [
                {"Benchmark": row.benchmark, "Volume": row.volume,
                 "Velocity": row.velocity, "Variety": row.variety,
                 "Veracity": row.veracity}
                for row in generate_table1()
            ]
        ),
        file=out,
    )
    ok1, _ = table1_matches_paper()
    print(f"matches the paper: {'yes' if ok1 else 'NO'}", file=out)

    print("\nTable 2 — benchmarking techniques:", file=out)
    print(
        ascii_table(
            [
                {"Benchmark": row.benchmark, "Type": row.workload_type,
                 "Examples": row.examples[:50], "Stacks": row.software_stacks}
                for row in generate_table2()
            ]
        ),
        file=out,
    )
    ok2, _ = table2_matches_paper()
    print(f"matches the paper: {'yes' if ok2 else 'NO'}", file=out)
    return 0 if ok1 and ok2 else 1


def _command_miniature(args, out) -> int:
    from repro.execution.report import ascii_table
    from repro.suites import run_miniature

    report = run_miniature(args.suite, scale=args.scale)
    print(f"{report.suite}: {report.notes}", file=out)
    print(
        ascii_table(
            [
                {"workload": name, "duration_s": seconds}
                for name, seconds in sorted(report.summary().items())
            ]
        ),
        file=out,
    )
    return 0


def _open_store(args):
    from repro.analysis.store import RunStore, resolve_store_dir

    return RunStore(resolve_store_dir(getattr(args, "store_dir", None)))


def _command_runs(args, out) -> int:
    from repro.execution.report import ascii_table, format_value

    store = _open_store(args)
    if args.runs_command == "show":
        record = store.get(args.record)
        print(f"record:      {record.record_id}", file=out)
        print(f"series:      {record.series}", file=out)
        print(f"created:     {record.created_at}", file=out)
        print(f"status:      {record.status}", file=out)
        for section in ("fingerprint", "environment"):
            payload = getattr(record, section)
            pairs = ", ".join(
                f"{key}={format_value(value)}"
                for key, value in payload.items()
                if value not in (None, {}, [])
            )
            print(f"{section + ':':12s} {pairs}", file=out)
        if record.ok:
            from repro.core.results import MetricStats

            print(
                ascii_table(
                    [
                        {
                            "metric": name,
                            "mean": stats.mean,
                            "p50": stats.p50,
                            "p95": stats.p95,
                            "p99": stats.p99,
                            "stdev": stats.stdev,
                            "n": len(stats.samples),
                        }
                        for name, stats in (
                            (name, MetricStats(name, samples))
                            for name, samples in record.metrics.items()
                        )
                    ]
                ),
                file=out,
            )
        else:
            error = record.result.get("error_type", "")
            message = record.result.get("error_message", "")
            print(f"error:       {error}: {message}", file=out)
        return 0
    records = store.records()
    if args.series:
        records = [r for r in records if r.series.startswith(args.series)]
    if args.latest:
        if not records:
            print("error: run store has no records", file=sys.stderr)
            return 2
        print(records[-1].record_id, file=out)
        return 0
    if not records:
        print(f"(no recorded runs under {store.path})", file=out)
        return 0
    print(
        ascii_table(
            [
                {
                    "id": record.record_id,
                    "created": record.created_at,
                    "test": record.test_name,
                    "engine": record.engine,
                    "status": record.status,
                    "series": record.series,
                    "git": record.environment.get("git_sha") or "-",
                }
                for record in records
            ]
        ),
        file=out,
    )
    return 0


def _render_comparison(comparison, out) -> None:
    from repro.execution.report import ascii_table

    rows = []
    for metric in comparison.metrics.values():
        ci = (
            f"[{metric.ci_low:+.3f}, {metric.ci_high:+.3f}]"
            if metric.ci_low is not None
            else "n/a (n<2)"
        )
        rows.append(
            {
                "metric": metric.metric,
                "better": metric.direction,
                "baseline": metric.baseline_mean,
                "candidate": metric.candidate_mean,
                "Δ": f"{metric.relative_delta:+.1%}",
                "95% CI": ci,
                "p": metric.p_value if metric.p_value is not None else "n/a",
                "verdict": metric.verdict,
            }
        )
    print(ascii_table(rows), file=out)
    print(
        f"overall: {comparison.overall} "
        f"({comparison.baseline} → {comparison.candidate})",
        file=out,
    )


def _command_compare(args, out) -> int:
    import json as json_module

    from repro.analysis.compare import DEFAULT_TOLERANCE, compare_records

    store = _open_store(args)
    comparison = compare_records(
        store.get(args.baseline),
        store.get(args.candidate),
        metrics=args.metric or None,
        tolerance=(
            args.tolerance if args.tolerance is not None else DEFAULT_TOLERANCE
        ),
    )
    if args.json:
        print(json_module.dumps(comparison.as_dict(), indent=2), file=out)
        return 0
    _render_comparison(comparison, out)
    return 0


def _command_gate(args, out) -> int:
    import json as json_module

    from repro.analysis.compare import DEFAULT_TOLERANCE
    from repro.analysis.gate import check_regressions

    store = _open_store(args)
    report = check_regressions(
        store,
        args.baseline,
        args.candidate,
        metrics=args.metric or None,
        tolerance=(
            args.tolerance if args.tolerance is not None else DEFAULT_TOLERANCE
        ),
        fail_on_inconclusive=args.fail_on_inconclusive,
    )
    if args.json:
        print(json_module.dumps(report.as_dict(), indent=2), file=out)
        return report.exit_code
    if report.comparison is not None:
        _render_comparison(report.comparison, out)
    verdict = "PASS" if report.passed else "FAIL"
    print(
        f"gate: {verdict} — baseline {report.baseline_name} "
        f"({report.baseline_id}) vs candidate {report.candidate_id}",
        file=out,
    )
    for reason in report.reasons:
        print(f"  - {reason}", file=out)
    return report.exit_code


def _command_baseline(args, out) -> int:
    from repro.analysis.baselines import BaselineManager
    from repro.execution.report import ascii_table

    manager = BaselineManager(_open_store(args))
    if args.baseline_command == "promote":
        baseline = manager.promote(args.record, args.name)
        print(
            f"promoted {baseline.record_id} to baseline "
            f"{baseline.name!r} (series {baseline.series})",
            file=out,
        )
        return 0
    if args.baseline_command == "remove":
        manager.remove(args.name)
        print(f"removed baseline {args.name!r}", file=out)
        return 0
    baselines = manager.all()
    if not baselines:
        print("(no baselines promoted)", file=out)
        return 0
    print(
        ascii_table(
            [
                {
                    "name": baseline.name,
                    "record": baseline.record_id,
                    "series": baseline.series,
                    "promoted": baseline.promoted_at,
                }
                for baseline in baselines.values()
            ]
        ),
        file=out,
    )
    return 0


def _command_export(args, out) -> int:
    from pathlib import Path

    from repro.core.prescription import builtin_repository
    from repro.core.serialization import repository_to_json

    repository = builtin_repository()
    Path(args.path).write_text(repository_to_json(repository))
    print(f"wrote {len(repository)} prescriptions to {args.path}", file=out)
    return 0


def _submit_spec(args):
    """A BenchmarkSpec from the shared run/submit flag set."""
    from repro.core.spec import BenchmarkSpec

    return BenchmarkSpec(
        prescription=args.prescription,
        engines=list(args.engine),
        volume=args.volume,
        repeats=args.repeats,
        params=_parse_params(args.param),
        executor=args.executor,
        max_workers=args.workers,
        record=args.record,
        store_dir=args.store_dir,
        layout=args.layout,
        tuning=getattr(args, "tuning", "normal"),
    )


def _print_job_summary(jobs, out) -> None:
    from repro.execution.report import ascii_table

    print(
        ascii_table(
            [
                {
                    "job": job.job_id,
                    "state": job.state,
                    "client": job.client,
                    "prescription": job.spec.prescription,
                    "wait_s": (
                        f"{job.queue_wait_seconds():.3f}"
                        if job.queue_wait_seconds() is not None
                        else "-"
                    ),
                    "records": ",".join(job.record_ids) or "-",
                    "failures": job.failure_count,
                }
                for job in jobs
            ]
        ),
        file=out,
    )


def _command_submit(args, out) -> int:
    from repro.api import ServiceClient
    from repro.execution.report import render_results

    spec = _submit_spec(args)
    with ServiceClient(
        schedulers=args.schedulers, store_dir=args.store_dir
    ) as service:
        handle = service.submit(
            spec, client=args.client_name, priority=args.priority
        )
        # Status chatter must not corrupt machine output: stdout is
        # reserved for the JSON document under --json.
        print(f"submitted {handle.job_id}",
              file=sys.stderr if args.json else out)
        job = handle.wait()
    if job.state != "done":
        print(
            f"job {job.job_id} {job.state}"
            + (
                f": {job.error_type}: {job.error_message}"
                if job.error_type
                else ""
            ),
            file=out,
        )
        return 1
    if args.json:
        print(render_results(job.outcomes, style="json"), file=out)
    else:
        print(render_results(job.outcomes), file=out)
        _print_job_summary([job], out)
    return 0


def _command_ablate(args, out) -> int:
    from repro import api

    kwargs = {}
    if args.tolerance is not None:
        kwargs["tolerance"] = args.tolerance
    if args.alpha is not None:
        kwargs["alpha"] = args.alpha
    report = api.ablate(
        args.workloads,
        args.engines,
        repeats=args.repeats,
        volume=args.volume,
        seed=args.seed,
        params=_parse_params(args.param),
        layout=args.layout,
        executor=args.executor,
        max_workers=args.workers,
        warm_pool=not args.no_warm_pool,
        chunk_size=args.chunk_size,
        include_one_offs=not args.no_one_offs,
        metrics=list(args.metric) or None,
        store_dir=args.store_dir,
        service=args.service,
        schedulers=args.schedulers,
        **kwargs,
    )
    from repro.tuning import render_ablation

    print(render_ablation(report, style=args.style,
                          metrics=list(args.metric) or None), file=out)
    return 0


def _command_load(args, out) -> int:
    import json as json_module

    from repro.api import SLOPolicy, load

    arrival_options = {}
    for option in ("burst_factor", "period", "amplitude"):
        value = getattr(args, option)
        if value is not None:
            arrival_options[option] = value
    slo = SLOPolicy(
        min_rate_fraction=args.slo_min_rate,
        p50_budget=args.slo_p50,
        p95_budget=args.slo_p95,
        p99_budget=args.slo_p99,
        max_shed_fraction=args.slo_max_shed,
        max_error_fraction=args.slo_max_errors,
    )
    report = load(
        args.prescription,
        arrival=args.arrival,
        rate=args.rate,
        duration=args.duration,
        sessions=args.sessions,
        think_time=args.think_time,
        seed=args.seed,
        clock=args.clock,
        concurrency=args.concurrency,
        queue_capacity=args.queue_capacity,
        engine=args.engine,
        volume=args.volume,
        params=_parse_params(args.param),
        layout=args.layout,
        service=args.service,
        schedulers=args.schedulers,
        mean_service=args.mean_service,
        service_distribution=args.service_distribution,
        slo=slo,
        record=args.record,
        store_dir=args.store_dir,
        **arrival_options,
    )
    verdict = report.verdict
    if args.json:
        print(json_module.dumps(report.summary(), indent=2, sort_keys=True),
              file=out)
        return 0 if verdict.passed else 1
    shape = (
        f"{report.plan.sessions} sessions (closed loop)"
        if report.plan.mode == "closed"
        else f"{report.plan.arrival} @ {report.plan.rate:g} req/s"
    )
    print(
        f"load: {shape} for {report.plan.duration:g}s against "
        f"{report.target_name} [{report.clock} clock, "
        f"concurrency {report.concurrency}, seed {report.plan.seed}]",
        file=out,
    )
    print(
        f"  offered {report.offered} ({report.offered_rate:.4g}/s)  "
        f"completed {report.completed} ({report.achieved_rate:.4g}/s)  "
        f"shed {report.shed} ({report.shed_fraction:.1%})  "
        f"errors {report.errors} ({report.error_fraction:.1%})",
        file=out,
    )
    if report.latencies:
        stats = report.latency_stats()
        print(
            f"  latency p50 {stats.p50 * 1e3:.3g}ms  "
            f"p95 {stats.p95 * 1e3:.3g}ms  "
            f"p99 {stats.p99 * 1e3:.3g}ms  "
            f"max {stats.maximum * 1e3:.3g}ms  "
            f"queue depth max {report.queue_depth_max}",
            file=out,
        )
    else:
        print("  no completed requests (no latency samples)", file=out)
    print(f"SLO: {'PASS' if verdict.passed else 'FAIL'}", file=out)
    for check in verdict.checks:
        print(f"  {check.describe()}", file=out)
    if report.record_id is not None:
        print(f"recorded {report.record_id}", file=out)
    return 0 if verdict.passed else 1


def _command_serve(args, out) -> int:
    import dataclasses
    import json as json_module
    from pathlib import Path

    from repro.api import BenchmarkSpec, ServiceClient

    payloads = json_module.loads(Path(args.spec_file).read_text())
    if isinstance(payloads, dict):
        payloads = [payloads]
    specs = [BenchmarkSpec.from_dict(payload) for payload in payloads]
    # The shared flags act as batch-wide overrides on top of whatever
    # each payload says (the executor default can't be distinguished
    # from an explicit "serial", so only a non-default value overrides).
    overrides = {}
    if args.record:
        overrides["record"] = True
    if args.workers is not None:
        overrides["max_workers"] = args.workers
    if args.executor != "serial":
        overrides["executor"] = args.executor
    if overrides:
        specs = [
            dataclasses.replace(spec, **overrides) for spec in specs
        ]

    def _echo(event) -> None:
        if not args.quiet:
            print(f"  [{event.at:.3f}] {event.job_id} -> {event.state}",
                  file=out)

    with ServiceClient(
        schedulers=args.schedulers, store_dir=args.store_dir
    ) as service:
        service.subscribe(_echo)
        handles = [
            service.submit(spec, client=args.client_name)
            for spec in specs
        ]
        print(f"submitted {len(handles)} job(s) "
              f"({args.schedulers} scheduler(s))", file=out)
        jobs = [handle.wait() for handle in handles]
    _print_job_summary(jobs, out)
    done = sum(1 for job in jobs if job.state == "done")
    print(f"{done}/{len(jobs)} job(s) done", file=out)
    return 0 if done == len(jobs) else 1


def _job_log(args):
    from pathlib import Path

    from repro.analysis.store import resolve_store_dir
    from repro.service.jobs import JobLog

    return JobLog(Path(resolve_store_dir(getattr(args, "store_dir", None))))


def _command_jobs(args, out) -> int:
    import time as time_module

    log = _job_log(args)
    if args.jobs_command == "list":
        jobs = list(log.replay().values())
        if args.state:
            jobs = [job for job in jobs if job.state == args.state]
        if not jobs:
            print(f"(no jobs logged under {log.path})", file=out)
            return 0
        _print_job_summary(jobs, out)
        return 0
    job = log.get(args.job)
    if args.jobs_command == "cancel":
        if job.terminal:
            print(
                f"error: job {job.job_id} is already {job.state}",
                file=sys.stderr,
            )
            return 2
        job.transition("cancelled")
        log.append(job, "cancelled",
                   detail={"reason": "cancelled offline via CLI"})
        print(f"cancelled {job.job_id} (log updated)", file=out)
        return 0
    print(f"job:         {job.job_id}", file=out)
    print(f"state:       {job.state}", file=out)
    print(f"client:      {job.client} (priority {job.priority})", file=out)
    print(f"spec:        {job.spec.prescription} "
          f"engines={job.spec.engines or 'all'} "
          f"volume={job.spec.volume} repeats={job.spec.repeats} "
          f"executor={job.spec.executor}", file=out)
    print(f"queue depth: {job.queue_depth_at_submit} at submit", file=out)
    print("history:", file=out)
    for state, at in job.history:
        stamp = time_module.strftime(
            "%Y-%m-%dT%H:%M:%SZ", time_module.gmtime(at)
        )
        print(f"  {stamp}  {state}", file=out)
    if job.error_type:
        print(f"error:       {job.error_type}: {job.error_message}",
              file=out)
    if job.record_ids:
        print(f"records:     {', '.join(job.record_ids)}", file=out)
    if job.failure_count:
        print(f"failures:    {job.failure_count} captured task "
              f"failure(s)", file=out)
    return 0


def main(argv: Sequence[str] | None = None, out=None) -> int:
    """CLI entry point; returns the process exit code."""
    out = out or sys.stdout
    args = _build_parser().parse_args(argv)
    try:
        if args.command == "list":
            return _command_list(out)
        if args.command == "run":
            return _command_run(args, out)
        if args.command == "generate":
            return _command_generate(args, out)
        if args.command == "tables":
            return _command_tables(out)
        if args.command == "miniature":
            return _command_miniature(args, out)
        if args.command == "export-prescriptions":
            return _command_export(args, out)
        if args.command == "runs":
            return _command_runs(args, out)
        if args.command == "compare":
            return _command_compare(args, out)
        if args.command == "gate":
            return _command_gate(args, out)
        if args.command == "baseline":
            return _command_baseline(args, out)
        if args.command == "submit":
            return _command_submit(args, out)
        if args.command == "ablate":
            return _command_ablate(args, out)
        if args.command == "load":
            return _command_load(args, out)
        if args.command == "serve":
            return _command_serve(args, out)
        if args.command == "jobs":
            return _command_jobs(args, out)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
