"""Execution substrates: the systems the benchmark framework runs tests on.

Each sub-package is a from-scratch implementation of one system class the
paper's surveyed benchmarks target (DESIGN.md §2 documents the
substitutions):

* :mod:`repro.engines.mapreduce` — Hadoop-like MapReduce runtime,
* :mod:`repro.engines.dbms` — relational DBMS,
* :mod:`repro.engines.nosql` — partitioned key-value store (YCSB target),
* :mod:`repro.engines.streaming` — stream processor.
"""

from repro.engines.base import (
    CostCounters,
    Engine,
    EngineInfo,
    SimulatedClusterSpec,
    schedule_lpt,
)
from repro.engines.faults import (
    FaultSpec,
    FaultyEngine,
    FaultyWorkload,
    InjectedFault,
    with_faults,
)

__all__ = [
    "CostCounters",
    "Engine",
    "EngineInfo",
    "FaultSpec",
    "FaultyEngine",
    "FaultyWorkload",
    "InjectedFault",
    "SimulatedClusterSpec",
    "schedule_lpt",
    "with_faults",
]
