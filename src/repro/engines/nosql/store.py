"""A hash-partitioned NoSQL key-value/column store.

The substitute for the Cassandra/HBase/PNUTS class of systems that YCSB
targets (Section 4.2): keys hash to partitions, rows hold named fields,
writes replicate to R partitions, and every operation reports a simulated
latency from a small service-time model (base cost + replication +
per-partition queueing).  Scans use an ordered key index, as YCSB's scan
workloads assume a range-partitioned or ordered store.

Reads and writes take a tunable :class:`ConsistencyLevel` (ONE / QUORUM /
ALL), reproducing the consistency/latency trade-off the YCSB paper
studied across Cassandra, HBase, and PNUTS: ONE is fastest but may
return stale replicas after an asynchronously propagated write; QUORUM
overlaps with the write quorum and stays fresh; ALL is freshest and
slowest.
"""

from __future__ import annotations

import bisect
import enum
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.core.errors import EngineError
from repro.engines.base import Engine, EngineInfo

Fields = dict[str, Any]


class ConsistencyLevel(enum.Enum):
    """How many replicas an operation must touch."""

    ONE = "one"
    QUORUM = "quorum"
    ALL = "all"

    def replicas_required(self, replication: int) -> int:
        if self is ConsistencyLevel.ONE:
            return 1
        if self is ConsistencyLevel.QUORUM:
            return replication // 2 + 1
        return replication


@dataclass
class LatencyModel:
    """Simulated service times (seconds) for the store's operations."""

    read_seconds: float = 350e-6
    write_seconds: float = 500e-6
    scan_seconds_per_row: float = 60e-6
    #: Extra per-replica write cost (network + remote apply).
    replica_write_seconds: float = 250e-6
    #: Queueing: added fraction per outstanding op on the hot partition.
    contention_factor: float = 0.15
    #: Multiplicative jitter std-dev (log-normal).
    jitter_sigma: float = 0.10

    def sample(
        self, rng: np.random.Generator, base: float, queue_depth: int
    ) -> float:
        """One latency draw given a base service time and queue depth."""
        queued = base * (1.0 + self.contention_factor * queue_depth)
        if self.jitter_sigma <= 0:
            return queued
        return float(queued * rng.lognormal(0.0, self.jitter_sigma))


@dataclass
class OpResult:
    """Outcome of one store operation."""

    ok: bool
    latency_seconds: float
    fields: Fields | None = None
    rows: list[tuple[str, Fields]] = field(default_factory=list)


class NoSqlStore(Engine):
    """An in-memory partitioned KV store with a latency model."""

    def __init__(
        self,
        num_partitions: int = 8,
        replication: int = 1,
        latency: LatencyModel | None = None,
        seed: int = 0,
    ) -> None:
        super().__init__()
        if num_partitions <= 0:
            raise EngineError(
                f"num_partitions must be positive, got {num_partitions}"
            )
        if not 1 <= replication <= num_partitions:
            raise EngineError(
                f"replication must be in [1, {num_partitions}], got {replication}"
            )
        self.num_partitions = num_partitions
        self.replication = replication
        self.latency = latency or LatencyModel()
        self._rng = np.random.default_rng(seed)
        self._partitions: list[dict[str, Fields]] = [
            {} for _ in range(num_partitions)
        ]
        #: Per-partition row versions (monotone per key) for freshness.
        self._versions: list[dict[str, int]] = [
            {} for _ in range(num_partitions)
        ]
        #: Ordered key index for scans.
        self._sorted_keys: list[str] = []
        #: Per-partition in-flight depth for the queueing model.
        self._partition_load: list[int] = [0] * num_partitions
        #: Writes not yet propagated to all replicas (weak consistency).
        self._pending_sync: list[tuple[int, str, Fields, int]] = []
        self._write_clock = 0
        self.total_latency_seconds = 0.0

    @property
    def info(self) -> EngineInfo:
        return EngineInfo(
            name="nosql",
            system_type="NoSQL",
            software_stack="partitioned key-value store (Cassandra/HBase substitute)",
            input_format="key-value",
            description=(
                "hash partitioning, R-way replication, ordered scan index, "
                "service-time latency model"
            ),
        )

    # ------------------------------------------------------------------

    def _partition_of(self, key: str) -> int:
        digest = 0
        for char in str(key):
            digest = (digest * 131 + ord(char)) & 0x7FFFFFFF
        return digest % self.num_partitions

    def _replica_partitions(self, key: str) -> list[int]:
        home = self._partition_of(key)
        return [(home + offset) % self.num_partitions for offset in range(self.replication)]

    def _charge(self, partition: int, base: float, extra: float = 0.0) -> float:
        depth = self._partition_load[partition]
        self._partition_load[partition] += 1
        latency = self.latency.sample(self._rng, base + extra, depth)
        self._partition_load[partition] = max(0, self._partition_load[partition] - 1)
        self.total_latency_seconds += latency
        return latency

    # ------------------------------------------------------------------
    # Operations (YCSB's verb set: insert, read, update, scan, delete)
    # ------------------------------------------------------------------

    def _apply_write(
        self, partition: int, key: str, fields: Fields, version: int,
        merge: bool,
    ) -> None:
        if merge and key in self._partitions[partition]:
            self._partitions[partition][key].update(fields)
        else:
            self._partitions[partition][key] = dict(fields)
        self._versions[partition][key] = version

    def _write(
        self, key: str, fields: Fields, consistency: ConsistencyLevel,
        merge: bool,
    ) -> OpResult:
        replicas = self._replica_partitions(key)
        self._write_clock += 1
        version = self._write_clock
        required = consistency.replicas_required(self.replication)
        for partition in replicas[:required]:
            self._apply_write(partition, key, fields, version, merge)
        for partition in replicas[required:]:
            # Asynchronous propagation: applied later by anti-entropy.
            self._pending_sync.append((partition, key, dict(fields), version))
        extra = self.latency.replica_write_seconds * (required - 1)
        latency = self._charge(replicas[0], self.latency.write_seconds, extra)
        self.counters.records_written += 1
        written = sum(len(str(k)) + len(str(v)) for k, v in fields.items())
        self.counters.bytes_written += written
        self.counters.network_bytes += written * (self.replication - 1)
        return OpResult(ok=True, latency_seconds=latency)

    def insert(
        self, key: str, fields: Fields,
        consistency: ConsistencyLevel = ConsistencyLevel.ALL,
    ) -> OpResult:
        """Insert (or overwrite) a row, replicated R ways.

        With consistency below ALL, the remaining replicas receive the
        write asynchronously (see :meth:`anti_entropy`).
        """
        if key not in self._partitions[self._partition_of(key)]:
            position = bisect.bisect_left(self._sorted_keys, key)
            if (
                position >= len(self._sorted_keys)
                or self._sorted_keys[position] != key
            ):
                bisect.insort(self._sorted_keys, key)
        return self._write(key, fields, consistency, merge=False)

    def bulk_load(
        self,
        records: Any,
        consistency: ConsistencyLevel = ConsistencyLevel.ALL,
    ) -> int:
        """Insert a stream of ``(key, fields)`` records; returns the count.

        ``records`` may be any iterable of pairs or a dataset source
        (anything with ``batches()``); a source is consumed batch by
        batch, so loading never materializes the full record list.
        """
        batches = getattr(records, "batches", None)
        if batches is not None:
            records = (record for batch in batches() for record in batch)
        count = 0
        for key, fields in records:
            self.insert(key, fields, consistency)
            count += 1
        return count

    def read(
        self,
        key: str,
        field_names: list[str] | None = None,
        consistency: ConsistencyLevel = ConsistencyLevel.QUORUM,
    ) -> OpResult:
        """Read one row, contacting ``consistency``-many replicas.

        Among contacted replicas the freshest version wins; ONE contacts
        a single (rotating) replica and may observe a stale row after a
        weakly consistent write.
        """
        replicas = self._replica_partitions(key)
        required = consistency.replicas_required(self.replication)
        if consistency is ConsistencyLevel.ONE and self.replication > 1:
            # Load balancing: rotate across replicas (may hit a stale one).
            start = int(self._rng.integers(self.replication))
            contacted = [replicas[start]]
        else:
            contacted = replicas[:required]
        extra = self.latency.read_seconds * 0.5 * (len(contacted) - 1)
        latency = self._charge(contacted[0], self.latency.read_seconds, extra)
        self.counters.records_read += 1
        best_row: Fields | None = None
        best_version = -1
        for partition in contacted:
            row = self._partitions[partition].get(key)
            if row is None:
                continue
            version = self._versions[partition].get(key, 0)
            if version > best_version:
                best_row, best_version = row, version
        if best_row is None:
            return OpResult(ok=False, latency_seconds=latency)
        if field_names is not None:
            best_row = {
                name: best_row[name] for name in field_names
                if name in best_row
            }
        return OpResult(ok=True, latency_seconds=latency, fields=dict(best_row))

    def update(
        self, key: str, fields: Fields,
        consistency: ConsistencyLevel = ConsistencyLevel.ALL,
    ) -> OpResult:
        """Merge fields into an existing row."""
        replicas = self._replica_partitions(key)
        if key not in self._partitions[replicas[0]]:
            latency = self._charge(replicas[0], self.latency.read_seconds)
            return OpResult(ok=False, latency_seconds=latency)
        return self._write(key, fields, consistency, merge=True)

    def anti_entropy(self) -> int:
        """Propagate pending weak writes to their replicas; returns count.

        The background repair process of eventually consistent stores;
        after it runs, every replica holds the newest version.
        """
        applied = 0
        for partition, key, fields, version in self._pending_sync:
            if self._versions[partition].get(key, 0) < version:
                self._apply_write(partition, key, fields, version, merge=True)
                self.counters.network_bytes += sum(
                    len(str(k)) + len(str(v)) for k, v in fields.items()
                )
                applied += 1
        self._pending_sync.clear()
        return applied

    @property
    def pending_replications(self) -> int:
        """Writes still awaiting propagation (weak-consistency debt)."""
        return len(self._pending_sync)

    def delete(self, key: str) -> OpResult:
        """Remove a row from every replica (always fully consistent)."""
        replicas = self._replica_partitions(key)
        existed = key in self._partitions[replicas[0]]
        for partition in replicas:
            self._partitions[partition].pop(key, None)
            self._versions[partition].pop(key, None)
        # Drop any in-flight weak writes for the key (tombstone wins).
        self._pending_sync = [
            entry for entry in self._pending_sync if entry[1] != key
        ]
        if existed:
            position = bisect.bisect_left(self._sorted_keys, key)
            if (
                position < len(self._sorted_keys)
                and self._sorted_keys[position] == key
            ):
                del self._sorted_keys[position]
        latency = self._charge(replicas[0], self.latency.write_seconds)
        self.counters.records_written += 1
        return OpResult(ok=existed, latency_seconds=latency)

    def scan(self, start_key: str, count: int) -> OpResult:
        """Read up to ``count`` rows in key order starting at ``start_key``."""
        if count <= 0:
            raise EngineError(f"scan count must be positive, got {count}")
        position = bisect.bisect_left(self._sorted_keys, start_key)
        keys = self._sorted_keys[position : position + count]
        rows: list[tuple[str, Fields]] = []
        for key in keys:
            partition = self._partition_of(key)
            row = self._partitions[partition].get(key)
            if row is not None:
                rows.append((key, dict(row)))
        self.counters.records_read += len(rows)
        home = self._partition_of(start_key)
        latency = self._charge(
            home,
            self.latency.read_seconds
            + self.latency.scan_seconds_per_row * max(1, len(rows)),
        )
        return OpResult(ok=True, latency_seconds=latency, rows=rows)

    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._sorted_keys)

    def partition_sizes(self) -> list[int]:
        """Row counts per partition (replicas included) — balance checks."""
        return [len(partition) for partition in self._partitions]
