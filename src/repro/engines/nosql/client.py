"""A YCSB-style client for the NoSQL store.

Implements the Yahoo! Cloud Serving Benchmark's core abstractions
(Cooper et al. 2010, reference [9] of the paper): a workload is an
operation mix plus a request-key distribution, and the standard workloads
A–F are provided as presets.  The client drives the store through a load
phase and a run phase and reports per-operation latency statistics.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

from repro._util import percentile
from repro.core.errors import EngineError
from repro.engines.nosql.store import NoSqlStore


class RequestDistribution(enum.Enum):
    """How request keys are chosen over the loaded key space."""

    UNIFORM = "uniform"
    ZIPFIAN = "zipfian"
    LATEST = "latest"


class OpType(enum.Enum):
    READ = "read"
    UPDATE = "update"
    INSERT = "insert"
    SCAN = "scan"
    READ_MODIFY_WRITE = "read-modify-write"


@dataclass
class YcsbWorkloadSpec:
    """An operation mix over a loaded record set (one YCSB workload)."""

    name: str
    read_proportion: float = 0.0
    update_proportion: float = 0.0
    insert_proportion: float = 0.0
    scan_proportion: float = 0.0
    read_modify_write_proportion: float = 0.0
    request_distribution: RequestDistribution = RequestDistribution.ZIPFIAN
    max_scan_length: int = 100
    field_count: int = 10
    field_length: int = 100

    def __post_init__(self) -> None:
        total = (
            self.read_proportion
            + self.update_proportion
            + self.insert_proportion
            + self.scan_proportion
            + self.read_modify_write_proportion
        )
        if not 0.999 <= total <= 1.001:
            raise EngineError(
                f"workload {self.name!r} proportions sum to {total}, expected 1.0"
            )

    def operation_mix(self) -> list[tuple[OpType, float]]:
        return [
            (OpType.READ, self.read_proportion),
            (OpType.UPDATE, self.update_proportion),
            (OpType.INSERT, self.insert_proportion),
            (OpType.SCAN, self.scan_proportion),
            (OpType.READ_MODIFY_WRITE, self.read_modify_write_proportion),
        ]


def workload_a() -> YcsbWorkloadSpec:
    """Update heavy: 50% read / 50% update, zipfian."""
    return YcsbWorkloadSpec("A", read_proportion=0.5, update_proportion=0.5)


def workload_b() -> YcsbWorkloadSpec:
    """Read mostly: 95% read / 5% update, zipfian."""
    return YcsbWorkloadSpec("B", read_proportion=0.95, update_proportion=0.05)


def workload_c() -> YcsbWorkloadSpec:
    """Read only, zipfian."""
    return YcsbWorkloadSpec("C", read_proportion=1.0)


def workload_d() -> YcsbWorkloadSpec:
    """Read latest: 95% read / 5% insert, latest distribution."""
    return YcsbWorkloadSpec(
        "D",
        read_proportion=0.95,
        insert_proportion=0.05,
        request_distribution=RequestDistribution.LATEST,
    )


def workload_e() -> YcsbWorkloadSpec:
    """Short ranges: 95% scan / 5% insert, zipfian."""
    return YcsbWorkloadSpec(
        "E", scan_proportion=0.95, insert_proportion=0.05, max_scan_length=100
    )


def workload_f() -> YcsbWorkloadSpec:
    """Read-modify-write: 50% read / 50% RMW, zipfian."""
    return YcsbWorkloadSpec(
        "F", read_proportion=0.5, read_modify_write_proportion=0.5
    )


STANDARD_WORKLOADS = {
    "A": workload_a,
    "B": workload_b,
    "C": workload_c,
    "D": workload_d,
    "E": workload_e,
    "F": workload_f,
}


@dataclass
class YcsbRunReport:
    """Latency and throughput evidence from one run phase."""

    workload: str
    operations: int
    simulated_seconds: float
    latencies: dict[OpType, list[float]] = field(default_factory=dict)
    failures: int = 0

    @property
    def throughput_ops_per_second(self) -> float:
        """Ops/second against the simulated service time."""
        if self.simulated_seconds <= 0:
            return 0.0
        return self.operations / self.simulated_seconds

    def latency_percentile(self, op_type: OpType, fraction: float) -> float:
        samples = sorted(self.latencies.get(op_type, ()))
        if not samples:
            raise EngineError(f"no samples for {op_type.value!r}")
        return percentile(samples, fraction)

    def mean_latency(self, op_type: OpType) -> float:
        samples = self.latencies.get(op_type, ())
        if not samples:
            raise EngineError(f"no samples for {op_type.value!r}")
        return sum(samples) / len(samples)


class YcsbClient:
    """Drives a :class:`NoSqlStore` through YCSB load and run phases."""

    KEY_PREFIX = "user"

    def __init__(
        self, store: NoSqlStore, spec: YcsbWorkloadSpec, seed: int = 0
    ) -> None:
        self.store = store
        self.spec = spec
        self._rng = np.random.default_rng(seed)
        self._record_count = 0

    def _key(self, index: int) -> str:
        return f"{self.KEY_PREFIX}{index:012d}"

    def _make_fields(self) -> dict[str, str]:
        return {
            f"field{i}": "".join(
                chr(97 + int(c)) for c in
                self._rng.integers(0, 26, size=self.spec.field_length // 10 or 1)
            ) * 10
            for i in range(self.spec.field_count)
        }

    def load(self, record_count: int) -> None:
        """The YCSB load phase: insert ``record_count`` records."""
        if record_count <= 0:
            raise EngineError(f"record_count must be positive, got {record_count}")
        for index in range(record_count):
            self.store.insert(self._key(index), self._make_fields())
        self._record_count = record_count

    def _choose_key_index(self) -> int:
        if self._record_count == 0:
            raise EngineError("run phase requires a load phase first")
        distribution = self.spec.request_distribution
        if distribution is RequestDistribution.UNIFORM:
            return int(self._rng.integers(0, self._record_count))
        if distribution is RequestDistribution.ZIPFIAN:
            rank = int(self._rng.zipf(1.35)) - 1
            return rank % self._record_count
        # LATEST: skewed towards the most recently inserted records.
        rank = int(self._rng.zipf(1.35)) - 1
        return (self._record_count - 1 - rank) % self._record_count

    def run(self, operation_count: int) -> YcsbRunReport:
        """The YCSB run phase: execute the operation mix."""
        if operation_count <= 0:
            raise EngineError(
                f"operation_count must be positive, got {operation_count}"
            )
        mix = self.spec.operation_mix()
        op_types = [op for op, _ in mix]
        probabilities = np.array([weight for _, weight in mix])
        probabilities = probabilities / probabilities.sum()
        report = YcsbRunReport(
            workload=self.spec.name,
            operations=operation_count,
            simulated_seconds=0.0,
            latencies={op: [] for op in op_types},
        )
        draws = self._rng.choice(len(op_types), size=operation_count, p=probabilities)
        for draw in draws:
            op_type = op_types[int(draw)]
            latency = self._execute(op_type, report)
            report.latencies[op_type].append(latency)
            report.simulated_seconds += latency
        return report

    def _execute(self, op_type: OpType, report: YcsbRunReport) -> float:
        if op_type is OpType.READ:
            result = self.store.read(self._key(self._choose_key_index()))
            if not result.ok:
                report.failures += 1
            return result.latency_seconds
        if op_type is OpType.UPDATE:
            result = self.store.update(
                self._key(self._choose_key_index()),
                {"field0": "updated" * 14},
            )
            if not result.ok:
                report.failures += 1
            return result.latency_seconds
        if op_type is OpType.INSERT:
            index = self._record_count
            self._record_count += 1
            return self.store.insert(self._key(index), self._make_fields()).latency_seconds
        if op_type is OpType.SCAN:
            start = self._key(self._choose_key_index())
            length = int(self._rng.integers(1, self.spec.max_scan_length + 1))
            return self.store.scan(start, length).latency_seconds
        # READ_MODIFY_WRITE
        key = self._key(self._choose_key_index())
        read_result = self.store.read(key)
        if not read_result.ok:
            report.failures += 1
            return read_result.latency_seconds
        write_result = self.store.update(key, {"field0": "rmw" * 33})
        return read_result.latency_seconds + write_result.latency_seconds
