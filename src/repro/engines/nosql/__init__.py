"""A partitioned NoSQL store plus a YCSB-style client (the NoSQL substitute)."""

from repro.engines.nosql.client import (
    STANDARD_WORKLOADS,
    OpType,
    RequestDistribution,
    YcsbClient,
    YcsbRunReport,
    YcsbWorkloadSpec,
    workload_a,
    workload_b,
    workload_c,
    workload_d,
    workload_e,
    workload_f,
)
from repro.engines.nosql.store import (
    ConsistencyLevel,
    LatencyModel,
    NoSqlStore,
    OpResult,
)

__all__ = [
    "ConsistencyLevel",
    "LatencyModel",
    "NoSqlStore",
    "OpResult",
    "OpType",
    "RequestDistribution",
    "STANDARD_WORKLOADS",
    "YcsbClient",
    "YcsbRunReport",
    "YcsbWorkloadSpec",
    "workload_a",
    "workload_b",
    "workload_c",
    "workload_d",
    "workload_e",
    "workload_f",
]
