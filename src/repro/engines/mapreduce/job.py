"""MapReduce job definitions.

A job is a mapper, an optional combiner, and a reducer, plus a
configuration describing parallelism and partitioning — the same surface
as a Hadoop job, minus the JVM.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable
from dataclasses import dataclass, field
from typing import Any

from repro.core.errors import EngineError

#: A mapper takes (key, value) and yields zero or more (key, value) pairs.
Mapper = Callable[[Any, Any], Iterable[tuple[Any, Any]]]
#: A reducer takes (key, [values]) and yields zero or more (key, value) pairs.
Reducer = Callable[[Any, list[Any]], Iterable[tuple[Any, Any]]]
#: A partitioner maps (key, num_partitions) to a partition index.
Partitioner = Callable[[Any, int], int]


def default_partitioner(key: Any, num_partitions: int) -> int:
    """Hash partitioning, Hadoop's default.

    Uses a stable string hash so results are reproducible across runs
    (Python's builtin ``hash`` is salted per process for strings).
    """
    digest = 0
    for char in str(key):
        digest = (digest * 31 + ord(char)) & 0x7FFFFFFF
    return digest % num_partitions


def identity_mapper(key: Any, value: Any) -> Iterable[tuple[Any, Any]]:
    """Pass input pairs through unchanged."""
    yield key, value


def identity_reducer(key: Any, values: list[Any]) -> Iterable[tuple[Any, Any]]:
    """Emit every grouped value unchanged."""
    for value in values:
        yield key, value


@dataclass
class JobConf:
    """Execution configuration of one MapReduce job."""

    num_map_tasks: int = 4
    num_reduce_tasks: int = 2
    partitioner: Partitioner = default_partitioner
    #: Sort keys within each reduce partition (Hadoop always sorts; this
    #: can be disabled for speed in workloads that only need grouping).
    sort_keys: bool = True
    #: Secondary sort on values within each key group.
    sort_values: bool = False
    #: Records per input split.  When set, input splits are cut lazily at
    #: this size as the input stream arrives (the HDFS-block analogue),
    #: so the runtime never materializes the input; ``num_map_tasks``
    #: then only caps executor concurrency, not the split count.  When
    #: ``None``, sized inputs are divided into ``num_map_tasks`` near-
    #: equal splits as before.
    split_records: int | None = None
    #: Combiner-side batch accumulation.  When set (and the job has a
    #: combiner), map output is buffered per shuffle partition and the
    #: combiner runs on each buffer as it reaches this many records,
    #: instead of once over the whole task output.  Output-identical for
    #: algebraic combiners (the Hadoop contract: a combiner may run any
    #: number of times); ``None`` keeps the historical run-once-at-task-
    #: end behavior.
    combine_batch_records: int | None = None

    def __post_init__(self) -> None:
        if self.num_map_tasks <= 0:
            raise EngineError(
                f"num_map_tasks must be positive, got {self.num_map_tasks}"
            )
        if self.num_reduce_tasks <= 0:
            raise EngineError(
                f"num_reduce_tasks must be positive, got {self.num_reduce_tasks}"
            )
        if self.split_records is not None and self.split_records <= 0:
            raise EngineError(
                f"split_records must be positive, got {self.split_records}"
            )
        if (
            self.combine_batch_records is not None
            and self.combine_batch_records <= 0
        ):
            raise EngineError(
                f"combine_batch_records must be positive, got "
                f"{self.combine_batch_records}"
            )


@dataclass
class MapReduceJob:
    """A complete MapReduce job: functions plus configuration."""

    name: str
    mapper: Mapper
    reducer: Reducer = identity_reducer
    combiner: Reducer | None = None
    conf: JobConf = field(default_factory=JobConf)

    def then(self, next_job: "MapReduceJob") -> "JobChain":
        """Chain another job after this one (its input = this job's output)."""
        return JobChain([self, next_job])


@dataclass
class JobChain:
    """A linear pipeline of MapReduce jobs (e.g. iterative PageRank steps)."""

    jobs: list[MapReduceJob]

    def then(self, next_job: MapReduceJob) -> "JobChain":
        return JobChain([*self.jobs, next_job])

    def __iter__(self):
        return iter(self.jobs)

    def __len__(self) -> int:
        return len(self.jobs)
