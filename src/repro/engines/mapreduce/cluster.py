"""Simulated cluster model for the MapReduce engine.

Executing on one host, the engine still reports what an N-node cluster
would have done: per-task record counts become simulated task durations,
tasks are scheduled LPT-first onto map/reduce slots, and shuffle bytes
cross a modelled network.  This is the substitution (DESIGN.md §2) for the
Hadoop testbeds the surveyed benchmarks assume.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.engines.base import (
    SimulatedClusterSpec,
    schedule_heterogeneous,
    schedule_lpt,
)


@dataclass
class PhaseTiming:
    """Simulated timing of one phase (map, shuffle, or reduce)."""

    name: str
    task_costs: list[float] = field(default_factory=list)
    seconds: float = 0.0


@dataclass
class ClusterReport:
    """Simulated execution report of one job on the modelled cluster."""

    spec: SimulatedClusterSpec
    phases: list[PhaseTiming] = field(default_factory=list)

    @property
    def simulated_seconds(self) -> float:
        """End-to-end makespan: phases are barriers, so times add."""
        return sum(phase.seconds for phase in self.phases)

    @property
    def total_work_seconds(self) -> float:
        """Total simulated compute across all tasks (serial-equivalent)."""
        return sum(sum(phase.task_costs) for phase in self.phases)

    @property
    def utilization(self) -> float:
        """Fraction of slot-seconds actually doing work."""
        capacity = self.simulated_seconds * self.spec.total_slots
        if capacity <= 0:
            return 0.0
        return min(1.0, self.total_work_seconds / capacity)


class ClusterModel:
    """Turns per-task costs into simulated phase timings."""

    def __init__(self, spec: SimulatedClusterSpec | None = None) -> None:
        self.spec = spec or SimulatedClusterSpec()

    def simulate_job(
        self,
        map_task_records: list[int],
        shuffle_bytes: int,
        reduce_task_records: list[int],
    ) -> ClusterReport:
        """Simulate one job: map phase, shuffle transfer, reduce phase."""
        spec = self.spec
        map_costs = [records * spec.seconds_per_record for records in map_task_records]
        reduce_costs = [
            records * spec.seconds_per_record for records in reduce_task_records
        ]
        map_phase = PhaseTiming(
            name="map",
            task_costs=map_costs,
            seconds=self._schedule(map_costs),
        )
        # Shuffle: all-to-all transfer limited by aggregate bisection
        # bandwidth; data staying node-local ((1/N) of it on average)
        # does not cross the network.
        remote_fraction = (
            (spec.num_nodes - 1) / spec.num_nodes if spec.num_nodes > 1 else 0.0
        )
        shuffle_seconds = (
            shuffle_bytes * remote_fraction / spec.network_bytes_per_second
        )
        shuffle_phase = PhaseTiming(
            name="shuffle", task_costs=[shuffle_seconds], seconds=shuffle_seconds
        )
        reduce_phase = PhaseTiming(
            name="reduce",
            task_costs=reduce_costs,
            seconds=self._schedule(reduce_costs),
        )
        return ClusterReport(
            spec=spec, phases=[map_phase, shuffle_phase, reduce_phase]
        )

    def _schedule(self, task_costs: list[float]) -> float:
        """Phase makespan under the spec's homogeneity/speculation model."""
        spec = self.spec
        if spec.node_speed_factors is None and not spec.speculative_execution:
            return schedule_lpt(task_costs, spec.total_slots)
        return schedule_heterogeneous(
            task_costs,
            spec.slot_speeds(),
            speculative_execution=spec.speculative_execution,
            straggler_threshold=spec.straggler_threshold,
        )
