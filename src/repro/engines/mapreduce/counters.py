"""Hadoop-style grouped counters for the MapReduce engine."""

from __future__ import annotations

from collections import defaultdict


class CounterGroup:
    """Named counter groups, mirroring Hadoop's ``group::counter`` model.

    >>> counters = CounterGroup()
    >>> counters.increment("map", "input_records", 10)
    >>> counters.get("map", "input_records")
    10

    Most counters are additive (task-local counts summed when tasks
    merge); :meth:`record_max` registers a high-water-mark counter
    instead, which merges by maximum — e.g. the largest combiner flush
    any map task saw.
    """

    def __init__(self) -> None:
        self._groups: dict[str, dict[str, int]] = defaultdict(lambda: defaultdict(int))
        self._max_counters: set[tuple[str, str]] = set()

    def increment(self, group: str, counter: str, amount: int = 1) -> None:
        self._groups[group][counter] += amount

    def record_max(self, group: str, counter: str, value: int) -> None:
        """Track a high-water mark; merges take the maximum, not the sum."""
        self._max_counters.add((group, counter))
        if value > self._groups[group][counter]:
            self._groups[group][counter] = value

    def get(self, group: str, counter: str) -> int:
        return self._groups.get(group, {}).get(counter, 0)

    def group(self, group: str) -> dict[str, int]:
        """A copy of one group's counters."""
        return dict(self._groups.get(group, {}))

    def snapshot(self) -> dict[str, dict[str, int]]:
        """A plain-dict copy of every group."""
        return {name: dict(values) for name, values in self._groups.items()}

    def merge(self, other: "CounterGroup") -> "CounterGroup":
        self._max_counters |= other._max_counters
        for group, values in other._groups.items():
            for counter, amount in values.items():
                if (group, counter) in self._max_counters:
                    if amount > self._groups[group][counter]:
                        self._groups[group][counter] = amount
                else:
                    self._groups[group][counter] += amount
        return self

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CounterGroup({self.snapshot()!r})"
