"""Hadoop-style grouped counters for the MapReduce engine."""

from __future__ import annotations

from collections import defaultdict


class CounterGroup:
    """Named counter groups, mirroring Hadoop's ``group::counter`` model.

    >>> counters = CounterGroup()
    >>> counters.increment("map", "input_records", 10)
    >>> counters.get("map", "input_records")
    10
    """

    def __init__(self) -> None:
        self._groups: dict[str, dict[str, int]] = defaultdict(lambda: defaultdict(int))

    def increment(self, group: str, counter: str, amount: int = 1) -> None:
        self._groups[group][counter] += amount

    def get(self, group: str, counter: str) -> int:
        return self._groups.get(group, {}).get(counter, 0)

    def group(self, group: str) -> dict[str, int]:
        """A copy of one group's counters."""
        return dict(self._groups.get(group, {}))

    def snapshot(self) -> dict[str, dict[str, int]]:
        """A plain-dict copy of every group."""
        return {name: dict(values) for name, values in self._groups.items()}

    def merge(self, other: "CounterGroup") -> "CounterGroup":
        for group, values in other._groups.items():
            for counter, amount in values.items():
                self._groups[group][counter] += amount
        return self

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CounterGroup({self.snapshot()!r})"
