"""A from-scratch MapReduce engine (the Hadoop substitute, DESIGN.md §2)."""

from repro.engines.mapreduce.cluster import ClusterModel, ClusterReport, PhaseTiming
from repro.engines.mapreduce.counters import CounterGroup
from repro.engines.mapreduce.job import (
    JobChain,
    JobConf,
    MapReduceJob,
    default_partitioner,
    identity_mapper,
    identity_reducer,
)
from repro.engines.mapreduce.runtime import (
    DEFAULT_COMBINE_BATCH_RECORDS,
    JobResult,
    MapReduceEngine,
)

__all__ = [
    "ClusterModel",
    "ClusterReport",
    "CounterGroup",
    "DEFAULT_COMBINE_BATCH_RECORDS",
    "JobChain",
    "JobConf",
    "JobResult",
    "MapReduceEngine",
    "MapReduceJob",
    "PhaseTiming",
    "default_partitioner",
    "identity_mapper",
    "identity_reducer",
]
