"""The MapReduce execution engine.

Runs :class:`~repro.engines.mapreduce.job.MapReduceJob` definitions over
in-memory (key, value) pairs with the full Hadoop phase structure:

input splits → map → (combine) → partition → sort → reduce

Every phase updates Hadoop-style counters and the uniform
:class:`~repro.engines.base.CostCounters`; a :class:`ClusterModel`
additionally reports the makespan a simulated N-node cluster would
achieve for the same task bag.

Map tasks (one per input split) and reduce tasks (one per partition) are
independent, so both phases fan out over a pluggable executor (see
:mod:`repro.execution.parallel`).  Each task accumulates into its own
counter set; the engine merges task-local counters in submission order,
so parallel runs are bit-identical to the serial path — same output
pairs in the same order, same counters, same costs.
"""

from __future__ import annotations

import time
from collections import defaultdict
from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field
from typing import Any

from repro._util import batched, chunked
from repro.core.errors import EngineError
from repro.engines.base import (
    CostCounters,
    Engine,
    EngineInfo,
    SimulatedClusterSpec,
)
from repro.engines.mapreduce.cluster import ClusterModel, ClusterReport
from repro.engines.mapreduce.counters import CounterGroup
from repro.engines.mapreduce.job import JobChain, MapReduceJob
from repro.observability import current_tracer

Pair = tuple[Any, Any]

#: Records per lazy input split when the input is an unsized stream and
#: the job doesn't set :attr:`~repro.engines.mapreduce.job.JobConf.split_records`.
DEFAULT_SPLIT_RECORDS = 1024

#: Combiner flush size the ``layout="columnar"`` spec knob configures
#: (matches the DBMS column-batch size, so one "batch" means the same
#: order of magnitude across engines).
DEFAULT_COMBINE_BATCH_RECORDS = 1024


@dataclass
class JobResult:
    """Everything one job run produced: output pairs plus evidence."""

    job_name: str
    output: list[Pair]
    counters: CounterGroup
    wall_seconds: float
    cluster_report: ClusterReport
    cost: CostCounters = field(default_factory=CostCounters)

    @property
    def simulated_seconds(self) -> float:
        return self.cluster_report.simulated_seconds


def _estimate_bytes(pair: Pair) -> int:
    key, value = pair
    return len(str(key)) + len(str(value))


class MapReduceEngine(Engine):
    """A from-scratch MapReduce runtime with a simulated cluster model."""

    def __init__(
        self,
        cluster: SimulatedClusterSpec | None = None,
        executor: Any = None,
        max_workers: int | None = None,
        combine_batch_records: int | None = None,
    ) -> None:
        super().__init__()
        if combine_batch_records is not None and combine_batch_records <= 0:
            raise EngineError(
                f"combine_batch_records must be positive, got "
                f"{combine_batch_records}"
            )
        #: Engine-wide default for combiner-side batch accumulation;
        #: a job's own ``conf.combine_batch_records`` takes precedence.
        self.combine_batch_records = combine_batch_records
        self.cluster_model = ClusterModel(cluster)
        # Imported lazily so the engines package never pulls the
        # execution package in at import time (the execution layer
        # already imports engine bases).
        from repro.execution.parallel import resolve_executor

        #: Runs map tasks and reduce tasks; "serial" (default) or
        #: "thread" — user functions are closures, so the process
        #: backend only works for module-level mappers/reducers.
        self.executor = resolve_executor(executor, max_workers)

    @property
    def info(self) -> EngineInfo:
        return EngineInfo(
            name="mapreduce",
            system_type="MapReduce",
            software_stack="Hadoop-like MapReduce runtime",
            input_format="key-value",
            description=(
                "in-memory map/combine/shuffle/sort/reduce with Hadoop-style "
                "counters and a simulated multi-node cluster"
            ),
        )

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def run(self, job: MapReduceJob, pairs: Iterable[Pair]) -> JobResult:
        """Execute one job over the input pairs.

        ``pairs`` may be any iterable: a list behaves as before, while a
        lazy stream (e.g. a flattened
        :class:`~repro.datagen.source.DatasetSource`) is consumed split
        by split without ever being materialized — the runtime's input-
        side memory is then one split, not the whole data set.

        Each Hadoop phase records a span (with per-split/per-partition
        record counters) into the current tracer, so a traced run shows
        where a job's wall time went.
        """
        started = time.perf_counter()
        counters = CounterGroup()
        cost = CostCounters()
        tracer = current_tracer()

        with tracer.span("mapreduce-job", job=job.name):
            with tracer.span("map-phase") as span:
                map_outputs, map_output_sizes, map_task_records = (
                    self._map_phase(job, pairs, counters, cost)
                )
                if span:
                    span.set(splits=len(map_outputs),
                             records_per_split=list(map_task_records))
                    span.incr("input_records",
                              counters.get("map", "input_records"))
                    span.incr("output_records",
                              counters.get("map", "output_records"))
                    flushes = counters.get("combine", "flushes")
                    if flushes:
                        span.incr("combine_flushes", flushes)
                        span.incr(
                            "combine_flushed_records",
                            counters.get("combine", "flushed_records"),
                        )
                        span.incr(
                            "combine_max_flush_records",
                            counters.get("combine", "max_flush_records"),
                        )
            with tracer.span("shuffle-phase") as span:
                partitions, shuffle_bytes = self._shuffle_phase(
                    job, map_outputs, map_output_sizes, counters, cost
                )
                if span:
                    span.set(partitions=len(partitions))
                    span.incr("shuffle_bytes", shuffle_bytes)
            with tracer.span("reduce-phase") as span:
                output, reduce_task_records = self._reduce_phase(
                    job, partitions, counters, cost
                )
                if span:
                    span.set(tasks=len(partitions),
                             records_per_task=list(reduce_task_records))
                    span.incr("output_records",
                              counters.get("reduce", "output_records"))

        wall_seconds = time.perf_counter() - started
        cluster_report = self.cluster_model.simulate_job(
            map_task_records, shuffle_bytes, reduce_task_records
        )
        self.counters.merge(cost)
        return JobResult(
            job_name=job.name,
            output=output,
            counters=counters,
            wall_seconds=wall_seconds,
            cluster_report=cluster_report,
            cost=cost,
        )

    def run_chain(self, chain: JobChain, pairs: Iterable[Pair]) -> list[JobResult]:
        """Execute a job pipeline; each job consumes the previous output."""
        results: list[JobResult] = []
        current: Sequence[Pair] = pairs
        for job in chain:
            result = self.run(job, current)
            results.append(result)
            current = result.output
        return results

    # ------------------------------------------------------------------
    # Phases
    # ------------------------------------------------------------------

    def _input_splits(
        self, job: MapReduceJob, pairs: Iterable[Pair]
    ) -> Iterable[Sequence[Pair]]:
        """Cut the input into map splits, lazily when possible.

        ``split_records`` forces fixed-size lazy splits; otherwise sized
        inputs keep the historical near-equal division into
        ``num_map_tasks`` splits, and unsized streams fall back to
        fixed-size lazy splits so they are never materialized.
        """
        if job.conf.split_records is not None:
            return batched(pairs, job.conf.split_records)
        if isinstance(pairs, Sequence):
            return chunked(pairs, job.conf.num_map_tasks)
        return batched(pairs, DEFAULT_SPLIT_RECORDS)

    def _map_phase(
        self,
        job: MapReduceJob,
        pairs: Iterable[Pair],
        counters: CounterGroup,
        cost: CostCounters,
    ) -> tuple[list[list[Pair]], list[list[int]], list[int]]:
        """Run map tasks over input splits; returns per-task outputs.

        Tasks run on the engine's executor, each with its own counter
        set; merging in submission order keeps the result bit-identical
        to the serial path.  Byte sizes of the (post-combine) map output
        are estimated here, once per pair, and reused by the shuffle.
        """
        splits = self._input_splits(job, pairs)
        task_results = self.executor.map(
            lambda split: self._run_map_task(job, split), splits
        )
        outputs: list[list[Pair]] = []
        output_sizes: list[list[int]] = []
        task_records: list[int] = []
        for task_output, task_sizes, task_counters, task_cost, records in (
            task_results
        ):
            counters.merge(task_counters)
            cost.merge(task_cost)
            outputs.append(task_output)
            output_sizes.append(task_sizes)
            task_records.append(records)
        return outputs, output_sizes, task_records

    def _run_map_task(
        self, job: MapReduceJob, split: Sequence[Pair]
    ) -> tuple[list[Pair], list[int], CounterGroup, CostCounters, int]:
        """One map task over one split, with task-local accounting."""
        counters = CounterGroup()
        cost = CostCounters()
        batch_records = (
            job.conf.combine_batch_records
            if job.conf.combine_batch_records is not None
            else self.combine_batch_records
        )
        accumulator: _CombineAccumulator | None = None
        if job.combiner is not None and batch_records is not None:
            accumulator = _CombineAccumulator(
                self, job, batch_records, counters, cost
            )
        task_output: list[Pair] = []
        for key, value in split:
            counters.increment("map", "input_records")
            cost.records_read += 1
            cost.bytes_read += _estimate_bytes((key, value))
            for out_pair in job.mapper(key, value):
                if not isinstance(out_pair, tuple) or len(out_pair) != 2:
                    raise EngineError(
                        f"mapper of job {job.name!r} must yield (key, value) "
                        f"pairs, got {out_pair!r}"
                    )
                counters.increment("map", "output_records")
                cost.compute_ops += 1
                if accumulator is not None:
                    accumulator.add(out_pair)
                else:
                    task_output.append(out_pair)
        if accumulator is not None:
            task_output = accumulator.finish()
        elif job.combiner is not None:
            task_output = self._combine(job, task_output, counters, cost)
        task_sizes = [_estimate_bytes(pair) for pair in task_output]
        return (
            task_output,
            task_sizes,
            counters,
            cost,
            len(split) + len(task_output),
        )

    def _combine(
        self,
        job: MapReduceJob,
        task_output: list[Pair],
        counters: CounterGroup,
        cost: CostCounters,
    ) -> list[Pair]:
        """Run the combiner on one map task's local output."""
        assert job.combiner is not None
        grouped: dict[Any, list[Any]] = defaultdict(list)
        for key, value in task_output:
            grouped[key].append(value)
        combined: list[Pair] = []
        for key, values in grouped.items():
            counters.increment("combine", "input_groups")
            for out_pair in job.combiner(key, values):
                combined.append(out_pair)
                counters.increment("combine", "output_records")
                cost.compute_ops += 1
        return combined

    def _shuffle_phase(
        self,
        job: MapReduceJob,
        map_outputs: list[list[Pair]],
        map_output_sizes: list[list[int]],
        counters: CounterGroup,
        cost: CostCounters,
    ) -> tuple[list[dict[Any, list[Any]]], int]:
        """Partition and group map output; returns per-reducer groups.

        Byte sizes were estimated once per pair by the map tasks, so the
        shuffle only sums them instead of re-walking every key/value.
        """
        num_reducers = job.conf.num_reduce_tasks
        partitions: list[dict[Any, list[Any]]] = [
            defaultdict(list) for _ in range(num_reducers)
        ]
        shuffle_bytes = 0
        for task_output, task_sizes in zip(map_outputs, map_output_sizes):
            for (key, value), pair_bytes in zip(task_output, task_sizes):
                index = job.conf.partitioner(key, num_reducers)
                if not 0 <= index < num_reducers:
                    raise EngineError(
                        f"partitioner returned {index} outside "
                        f"[0, {num_reducers})"
                    )
                partitions[index][key].append(value)
                shuffle_bytes += pair_bytes
                counters.increment("shuffle", "records")
        counters.increment("shuffle", "bytes", shuffle_bytes)
        cost.network_bytes += shuffle_bytes
        return partitions, shuffle_bytes

    def _reduce_phase(
        self,
        job: MapReduceJob,
        partitions: list[dict[Any, list[Any]]],
        counters: CounterGroup,
        cost: CostCounters,
    ) -> tuple[list[Pair], list[int]]:
        """Sort (optionally) and reduce each partition.

        Reduce tasks (one per partition) run on the engine's executor;
        outputs are concatenated and counters merged in partition order,
        exactly as the serial loop would.
        """
        task_results = self.executor.map(
            lambda partition: self._run_reduce_task(job, partition), partitions
        )
        output: list[Pair] = []
        task_records: list[int] = []
        for task_output, task_counters, task_cost, records in task_results:
            counters.merge(task_counters)
            cost.merge(task_cost)
            output.extend(task_output)
            task_records.append(records)
        return output, task_records

    def _run_reduce_task(
        self, job: MapReduceJob, partition: dict[Any, list[Any]]
    ) -> tuple[list[Pair], CounterGroup, CostCounters, int]:
        """One reduce task over one partition, with task-local accounting."""
        counters = CounterGroup()
        cost = CostCounters()
        output: list[Pair] = []
        keys = list(partition)
        if job.conf.sort_keys:
            keys.sort(key=_sort_token)
        records = 0
        for key in keys:
            values = partition[key]
            if job.conf.sort_values:
                values = sorted(values, key=_sort_token)
            counters.increment("reduce", "input_groups")
            counters.increment("reduce", "input_records", len(values))
            records += len(values)
            for out_pair in job.reducer(key, values):
                if not isinstance(out_pair, tuple) or len(out_pair) != 2:
                    raise EngineError(
                        f"reducer of job {job.name!r} must yield "
                        f"(key, value) pairs, got {out_pair!r}"
                    )
                output.append(out_pair)
                counters.increment("reduce", "output_records")
                cost.records_written += 1
                cost.bytes_written += _estimate_bytes(out_pair)
                cost.compute_ops += 1
        return output, counters, cost, records


class _CombineAccumulator:
    """Per-partition batch accumulation for the combiner.

    Map output is buffered by shuffle partition; when a partition's
    buffer reaches ``batch_records`` pairs the combiner runs over just
    that buffer (a *flush*), bounding combiner working memory to one
    batch per partition instead of the whole task output.  Within each
    partition the first-appearance order of keys is preserved, so for
    algebraic combiners the job output is identical to the historical
    combine-once-at-task-end path.

    Flush sizes are observable: ``combine::flushes`` and
    ``combine::flushed_records`` count them, ``combine::
    max_flush_records`` keeps the high-water mark (max-merged across
    tasks), and each flush bumps ``CostCounters.batches``.
    """

    def __init__(
        self,
        engine: MapReduceEngine,
        job: MapReduceJob,
        batch_records: int,
        counters: CounterGroup,
        cost: CostCounters,
    ) -> None:
        self.engine = engine
        self.job = job
        self.batch_records = batch_records
        self.counters = counters
        self.cost = cost
        self.num_partitions = job.conf.num_reduce_tasks
        self._buffers: list[list[Pair]] = [
            [] for _ in range(self.num_partitions)
        ]
        self._combined: list[Pair] = []

    def add(self, pair: Pair) -> None:
        index = self.job.conf.partitioner(pair[0], self.num_partitions)
        if not 0 <= index < self.num_partitions:
            raise EngineError(
                f"partitioner returned {index} outside "
                f"[0, {self.num_partitions})"
            )
        buffer = self._buffers[index]
        buffer.append(pair)
        if len(buffer) >= self.batch_records:
            self._flush(index)

    def finish(self) -> list[Pair]:
        """Flush the partial buffers and return the combined task output."""
        for index in range(self.num_partitions):
            if self._buffers[index]:
                self._flush(index)
        return self._combined

    def _flush(self, index: int) -> None:
        buffer = self._buffers[index]
        self._buffers[index] = []
        self.counters.increment("combine", "flushes")
        self.counters.increment("combine", "flushed_records", len(buffer))
        self.counters.record_max(
            "combine", "max_flush_records", len(buffer)
        )
        self.cost.batches += 1
        self._combined.extend(
            self.engine._combine(self.job, buffer, self.counters, self.cost)
        )


def _sort_token(value: Any) -> tuple[int, Any]:
    """A total order over mixed-type keys: numbers first, then by text."""
    if isinstance(value, bool):
        return (1, str(value))
    if isinstance(value, (int, float)):
        return (0, value)
    return (1, str(value))
