"""The MapReduce execution engine.

Runs :class:`~repro.engines.mapreduce.job.MapReduceJob` definitions over
in-memory (key, value) pairs with the full Hadoop phase structure:

input splits → map → (combine) → partition → sort → reduce

Every phase updates Hadoop-style counters and the uniform
:class:`~repro.engines.base.CostCounters`; a :class:`ClusterModel`
additionally reports the makespan a simulated N-node cluster would
achieve for the same task bag.
"""

from __future__ import annotations

import time
from collections import defaultdict
from collections.abc import Sequence
from dataclasses import dataclass, field
from typing import Any

from repro._util import chunked
from repro.core.errors import EngineError
from repro.engines.base import (
    CostCounters,
    Engine,
    EngineInfo,
    SimulatedClusterSpec,
)
from repro.engines.mapreduce.cluster import ClusterModel, ClusterReport
from repro.engines.mapreduce.counters import CounterGroup
from repro.engines.mapreduce.job import JobChain, MapReduceJob

Pair = tuple[Any, Any]


@dataclass
class JobResult:
    """Everything one job run produced: output pairs plus evidence."""

    job_name: str
    output: list[Pair]
    counters: CounterGroup
    wall_seconds: float
    cluster_report: ClusterReport
    cost: CostCounters = field(default_factory=CostCounters)

    @property
    def simulated_seconds(self) -> float:
        return self.cluster_report.simulated_seconds


def _estimate_bytes(pair: Pair) -> int:
    key, value = pair
    return len(str(key)) + len(str(value))


class MapReduceEngine(Engine):
    """A from-scratch MapReduce runtime with a simulated cluster model."""

    def __init__(self, cluster: SimulatedClusterSpec | None = None) -> None:
        super().__init__()
        self.cluster_model = ClusterModel(cluster)

    @property
    def info(self) -> EngineInfo:
        return EngineInfo(
            name="mapreduce",
            system_type="MapReduce",
            software_stack="Hadoop-like MapReduce runtime",
            input_format="key-value",
            description=(
                "in-memory map/combine/shuffle/sort/reduce with Hadoop-style "
                "counters and a simulated multi-node cluster"
            ),
        )

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def run(self, job: MapReduceJob, pairs: Sequence[Pair]) -> JobResult:
        """Execute one job over the input pairs."""
        started = time.perf_counter()
        counters = CounterGroup()
        cost = CostCounters()

        map_outputs, map_task_records = self._map_phase(job, pairs, counters, cost)
        partitions, shuffle_bytes = self._shuffle_phase(
            job, map_outputs, counters, cost
        )
        output, reduce_task_records = self._reduce_phase(
            job, partitions, counters, cost
        )

        wall_seconds = time.perf_counter() - started
        cluster_report = self.cluster_model.simulate_job(
            map_task_records, shuffle_bytes, reduce_task_records
        )
        self.counters.merge(cost)
        return JobResult(
            job_name=job.name,
            output=output,
            counters=counters,
            wall_seconds=wall_seconds,
            cluster_report=cluster_report,
            cost=cost,
        )

    def run_chain(self, chain: JobChain, pairs: Sequence[Pair]) -> list[JobResult]:
        """Execute a job pipeline; each job consumes the previous output."""
        results: list[JobResult] = []
        current: Sequence[Pair] = pairs
        for job in chain:
            result = self.run(job, current)
            results.append(result)
            current = result.output
        return results

    # ------------------------------------------------------------------
    # Phases
    # ------------------------------------------------------------------

    def _map_phase(
        self,
        job: MapReduceJob,
        pairs: Sequence[Pair],
        counters: CounterGroup,
        cost: CostCounters,
    ) -> tuple[list[list[Pair]], list[int]]:
        """Run map tasks over input splits; returns per-task outputs."""
        splits = chunked(list(pairs), job.conf.num_map_tasks)
        outputs: list[list[Pair]] = []
        task_records: list[int] = []
        for split in splits:
            task_output: list[Pair] = []
            for key, value in split:
                counters.increment("map", "input_records")
                cost.records_read += 1
                cost.bytes_read += _estimate_bytes((key, value))
                for out_pair in job.mapper(key, value):
                    if not isinstance(out_pair, tuple) or len(out_pair) != 2:
                        raise EngineError(
                            f"mapper of job {job.name!r} must yield (key, value) "
                            f"pairs, got {out_pair!r}"
                        )
                    task_output.append(out_pair)
                    counters.increment("map", "output_records")
                    cost.compute_ops += 1
            if job.combiner is not None:
                task_output = self._combine(job, task_output, counters, cost)
            outputs.append(task_output)
            task_records.append(len(split) + len(task_output))
        return outputs, task_records

    def _combine(
        self,
        job: MapReduceJob,
        task_output: list[Pair],
        counters: CounterGroup,
        cost: CostCounters,
    ) -> list[Pair]:
        """Run the combiner on one map task's local output."""
        assert job.combiner is not None
        grouped: dict[Any, list[Any]] = defaultdict(list)
        for key, value in task_output:
            grouped[key].append(value)
        combined: list[Pair] = []
        for key, values in grouped.items():
            counters.increment("combine", "input_groups")
            for out_pair in job.combiner(key, values):
                combined.append(out_pair)
                counters.increment("combine", "output_records")
                cost.compute_ops += 1
        return combined

    def _shuffle_phase(
        self,
        job: MapReduceJob,
        map_outputs: list[list[Pair]],
        counters: CounterGroup,
        cost: CostCounters,
    ) -> tuple[list[dict[Any, list[Any]]], int]:
        """Partition and group map output; returns per-reducer groups."""
        num_reducers = job.conf.num_reduce_tasks
        partitions: list[dict[Any, list[Any]]] = [
            defaultdict(list) for _ in range(num_reducers)
        ]
        shuffle_bytes = 0
        for task_output in map_outputs:
            for key, value in task_output:
                index = job.conf.partitioner(key, num_reducers)
                if not 0 <= index < num_reducers:
                    raise EngineError(
                        f"partitioner returned {index} outside "
                        f"[0, {num_reducers})"
                    )
                partitions[index][key].append(value)
                pair_bytes = _estimate_bytes((key, value))
                shuffle_bytes += pair_bytes
                counters.increment("shuffle", "records")
        counters.increment("shuffle", "bytes", shuffle_bytes)
        cost.network_bytes += shuffle_bytes
        return partitions, shuffle_bytes

    def _reduce_phase(
        self,
        job: MapReduceJob,
        partitions: list[dict[Any, list[Any]]],
        counters: CounterGroup,
        cost: CostCounters,
    ) -> tuple[list[Pair], list[int]]:
        """Sort (optionally) and reduce each partition."""
        output: list[Pair] = []
        task_records: list[int] = []
        for partition in partitions:
            keys = list(partition)
            if job.conf.sort_keys:
                keys.sort(key=_sort_token)
            records = 0
            for key in keys:
                values = partition[key]
                if job.conf.sort_values:
                    values = sorted(values, key=_sort_token)
                counters.increment("reduce", "input_groups")
                counters.increment("reduce", "input_records", len(values))
                records += len(values)
                for out_pair in job.reducer(key, values):
                    if not isinstance(out_pair, tuple) or len(out_pair) != 2:
                        raise EngineError(
                            f"reducer of job {job.name!r} must yield "
                            f"(key, value) pairs, got {out_pair!r}"
                        )
                    output.append(out_pair)
                    counters.increment("reduce", "output_records")
                    cost.records_written += 1
                    cost.bytes_written += _estimate_bytes(out_pair)
                    cost.compute_ops += 1
            task_records.append(records)
        return output, task_records


def _sort_token(value: Any) -> tuple[int, Any]:
    """A total order over mixed-type keys: numbers first, then by text."""
    if isinstance(value, bool):
        return (1, str(value))
    if isinstance(value, (int, float)):
        return (0, value)
    return (1, str(value))
