"""A mini stream-processing engine (the real-time analytics substitute)."""

from repro.engines.streaming.engine import (
    FilterOperator,
    MapOperator,
    SlidingWindowAggregate,
    StreamingEngine,
    StreamOperator,
    StreamRunReport,
    Topology,
    TumblingWindowAggregate,
    WindowResult,
)

__all__ = [
    "FilterOperator",
    "MapOperator",
    "SlidingWindowAggregate",
    "StreamOperator",
    "StreamRunReport",
    "StreamingEngine",
    "Topology",
    "TumblingWindowAggregate",
    "WindowResult",
]
