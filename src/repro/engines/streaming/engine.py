"""A mini stream-processing engine.

Implements the third meaning of data velocity in Section 2.1: "data
streams continuously arrive and must be processed in real-time to keep up
with their arriving speed".  The engine runs a topology of operators over
timestamped events and models the processing side as a single-server
queue: when the arrival rate exceeds the service rate, backlog and
per-event latency grow — the behaviour real-time-analytics benchmarks
must expose.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections import defaultdict
from collections.abc import Callable, Iterable, Sequence
from dataclasses import dataclass, field
from typing import Any

from repro.core.errors import EngineError
from repro.datagen.stream import StreamEvent
from repro.engines.base import Engine, EngineInfo


@dataclass(frozen=True)
class WindowResult:
    """One aggregate emitted by a window operator."""

    window_start: float
    window_end: float
    key: Any
    value: Any


class StreamOperator(ABC):
    """Base class of streaming operators (event in → events out)."""

    @abstractmethod
    def process(self, event: StreamEvent) -> Iterable[StreamEvent]:
        """Transform one event into zero or more events."""

    def flush(self) -> Iterable[WindowResult]:
        """Emit any pending results at end of stream."""
        return ()


class MapOperator(StreamOperator):
    """Apply a function to each event's value."""

    def __init__(self, function: Callable[[StreamEvent], StreamEvent]) -> None:
        self.function = function

    def process(self, event: StreamEvent) -> Iterable[StreamEvent]:
        yield self.function(event)


class FilterOperator(StreamOperator):
    """Drop events failing a predicate."""

    def __init__(self, predicate: Callable[[StreamEvent], bool]) -> None:
        self.predicate = predicate

    def process(self, event: StreamEvent) -> Iterable[StreamEvent]:
        if self.predicate(event):
            yield event


class TumblingWindowAggregate(StreamOperator):
    """Per-key aggregation over fixed, non-overlapping time windows.

    ``reducer(accumulator, value) -> accumulator`` folds values;
    completed windows are emitted when an event arrives past their end
    (watermark = event time, i.e. no allowed lateness).
    """

    def __init__(
        self,
        window_seconds: float,
        reducer: Callable[[Any, float], Any],
        initial: Callable[[], Any] = lambda: 0.0,
    ) -> None:
        if window_seconds <= 0:
            raise EngineError(
                f"window_seconds must be positive, got {window_seconds}"
            )
        self.window_seconds = window_seconds
        self.reducer = reducer
        self.initial = initial
        self._windows: dict[int, dict[Any, Any]] = defaultdict(dict)
        self._emitted: list[WindowResult] = []
        self._watermark = float("-inf")

    def _window_of(self, timestamp: float) -> int:
        return int(timestamp // self.window_seconds)

    def process(self, event: StreamEvent) -> Iterable[StreamEvent]:
        window = self._window_of(event.timestamp)
        per_key = self._windows[window]
        accumulator = per_key.get(event.key)
        if accumulator is None:
            accumulator = self.initial()
        per_key[event.key] = self.reducer(accumulator, event.value)
        if event.timestamp > self._watermark:
            self._watermark = event.timestamp
            self._close_expired()
        return ()

    def _close_expired(self) -> None:
        current = self._window_of(self._watermark)
        for window in sorted(self._windows):
            if window >= current:
                break
            self._emit_window(window)

    def _emit_window(self, window: int) -> None:
        per_key = self._windows.pop(window)
        start = window * self.window_seconds
        for key in sorted(per_key, key=str):
            self._emitted.append(
                WindowResult(
                    window_start=start,
                    window_end=start + self.window_seconds,
                    key=key,
                    value=per_key[key],
                )
            )

    def flush(self) -> Iterable[WindowResult]:
        for window in sorted(self._windows):
            self._emit_window(window)
        emitted = self._emitted
        self._emitted = []
        return emitted

    def take_emitted(self) -> list[WindowResult]:
        """Results of windows already closed by the watermark."""
        emitted = self._emitted
        self._emitted = []
        return emitted


class SlidingWindowAggregate(StreamOperator):
    """Per-key aggregation over overlapping windows (size, slide).

    Each event lands in every window whose span covers its timestamp, so
    one event contributes to ``size / slide`` results.
    """

    def __init__(
        self,
        window_seconds: float,
        slide_seconds: float,
        reducer: Callable[[Any, float], Any],
        initial: Callable[[], Any] = lambda: 0.0,
    ) -> None:
        if window_seconds <= 0 or slide_seconds <= 0:
            raise EngineError("window and slide must be positive")
        if slide_seconds > window_seconds:
            raise EngineError("slide must not exceed the window size")
        self.window_seconds = window_seconds
        self.slide_seconds = slide_seconds
        self.reducer = reducer
        self.initial = initial
        self._windows: dict[int, dict[Any, Any]] = defaultdict(dict)

    def process(self, event: StreamEvent) -> Iterable[StreamEvent]:
        # Windows start at multiples of the slide; the event belongs to
        # every window with start <= t < start + size.
        last_start = int(event.timestamp // self.slide_seconds)
        spans = int(self.window_seconds // self.slide_seconds)
        for offset in range(spans):
            start_index = last_start - offset
            start = start_index * self.slide_seconds
            if start < 0 or event.timestamp >= start + self.window_seconds:
                continue
            per_key = self._windows[start_index]
            accumulator = per_key.get(event.key)
            if accumulator is None:
                accumulator = self.initial()
            per_key[event.key] = self.reducer(accumulator, event.value)
        return ()

    def flush(self) -> Iterable[WindowResult]:
        results: list[WindowResult] = []
        for start_index in sorted(self._windows):
            start = start_index * self.slide_seconds
            per_key = self._windows[start_index]
            for key in sorted(per_key, key=str):
                results.append(
                    WindowResult(
                        window_start=start,
                        window_end=start + self.window_seconds,
                        key=key,
                        value=per_key[key],
                    )
                )
        self._windows.clear()
        return results


@dataclass
class Topology:
    """A linear pipeline of stream operators."""

    name: str
    operators: list[StreamOperator] = field(default_factory=list)

    def then(self, operator: StreamOperator) -> "Topology":
        self.operators.append(operator)
        return self


@dataclass
class StreamRunReport:
    """Evidence from one streaming run."""

    topology: str
    events_in: int
    results: list[WindowResult]
    #: Per-event queueing latency (departure − arrival), simulated.
    latencies: list[float]
    arrival_rate: float
    service_rate: float
    #: Events still queued when the source ended (backlog).
    final_backlog_seconds: float

    @property
    def keeps_up(self) -> bool:
        """Whether processing kept up with the arrival speed."""
        return self.service_rate >= self.arrival_rate

    @property
    def mean_latency(self) -> float:
        if not self.latencies:
            return 0.0
        return sum(self.latencies) / len(self.latencies)

    @property
    def max_latency(self) -> float:
        return max(self.latencies) if self.latencies else 0.0


class StreamingEngine(Engine):
    """Runs topologies over event streams with a queueing-time model."""

    def __init__(self, service_seconds_per_event: float = 50e-6) -> None:
        super().__init__()
        if service_seconds_per_event <= 0:
            raise EngineError(
                "service_seconds_per_event must be positive, got "
                f"{service_seconds_per_event}"
            )
        self.service_seconds_per_event = service_seconds_per_event

    @property
    def info(self) -> EngineInfo:
        return EngineInfo(
            name="streaming",
            system_type="Streaming",
            software_stack="stream processor (real-time analytics substitute)",
            input_format="records",
            description=(
                "linear operator topologies, tumbling/sliding windows, "
                "single-server queueing latency model"
            ),
        )

    def run(self, topology: Topology, events: Sequence[StreamEvent]) -> StreamRunReport:
        """Process an event stream through a topology."""
        ordered = sorted(events, key=lambda event: event.timestamp)
        latencies: list[float] = []
        departure = 0.0
        for event in ordered:
            # Single-server queue: service starts when both the event has
            # arrived and the previous event has departed.
            start = max(event.timestamp, departure)
            departure = start + self.service_seconds_per_event
            latencies.append(departure - event.timestamp)
            self.counters.records_read += 1
            current: list[StreamEvent] = [event]
            for operator in topology.operators:
                next_events: list[StreamEvent] = []
                for item in current:
                    next_events.extend(operator.process(item))
                    self.counters.compute_ops += 1
                current = next_events
        results: list[WindowResult] = []
        for operator in topology.operators:
            results.extend(operator.flush())
        self.counters.records_written += len(results)

        span = (
            ordered[-1].timestamp - ordered[0].timestamp if len(ordered) > 1 else 0.0
        )
        arrival_rate = (len(ordered) - 1) / span if span > 0 else float("inf")
        backlog = max(0.0, departure - (ordered[-1].timestamp if ordered else 0.0))
        return StreamRunReport(
            topology=topology.name,
            events_in=len(ordered),
            results=results,
            latencies=latencies,
            arrival_rate=arrival_rate,
            service_rate=1.0 / self.service_seconds_per_event,
            final_backlog_seconds=backlog,
        )
