"""The system catalog: table metadata and statistics."""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.errors import EngineError
from repro.engines.dbms.storage import HeapTable


@dataclass
class TableStats:
    """Planner-facing statistics about one table."""

    row_count: int
    indexed_columns: tuple[str, ...]


class Catalog:
    """Name → table registry with statistics for the planner."""

    def __init__(self) -> None:
        self._tables: dict[str, HeapTable] = {}

    def create_table(self, name: str, schema: tuple[str, ...]) -> HeapTable:
        if name in self._tables:
            raise EngineError(f"table {name!r} already exists")
        table = HeapTable(name, schema)
        self._tables[name] = table
        return table

    def drop_table(self, name: str) -> None:
        if name not in self._tables:
            raise EngineError(f"cannot drop unknown table {name!r}")
        del self._tables[name]

    def table(self, name: str) -> HeapTable:
        try:
            return self._tables[name]
        except KeyError:
            raise EngineError(
                f"unknown table {name!r}; tables: {sorted(self._tables)}"
            ) from None

    def has_table(self, name: str) -> bool:
        return name in self._tables

    def table_names(self) -> list[str]:
        return sorted(self._tables)

    def stats(self, name: str) -> TableStats:
        table = self.table(name)
        return TableStats(
            row_count=len(table),
            indexed_columns=tuple(sorted(table.indexes)),
        )
