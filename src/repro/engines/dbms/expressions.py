"""Expression trees for the relational engine.

Expressions evaluate against a row tuple plus a column layout (name →
position).  :func:`col` and :func:`lit` are the public constructors;
comparisons and boolean combinators are built with Python operators:

>>> predicate = (col("age") >= lit(18)) & (col("country") == lit("us"))

Every node also evaluates batch-at-a-time: :meth:`Expression.
evaluate_batch` takes named column vectors and returns one output value
per position, element-wise identical to looping :meth:`Expression.
evaluate` over the rows.  The vectorized operators in
:mod:`repro.engines.dbms.vector_plans` use this to evaluate a predicate
once per batch instead of recursing through the tree once per row.
"""

from __future__ import annotations

import operator
from abc import ABC, abstractmethod
from collections.abc import Callable, Sequence
from typing import Any

from repro.core.errors import EngineError

Layout = dict[str, int]
Row = tuple
#: Named column vectors, as the batch evaluator consumes them.
Columns = dict[str, Sequence[Any]]


class Expression(ABC):
    """Base class of all expression nodes."""

    @abstractmethod
    def evaluate(self, row: Row, layout: Layout) -> Any:
        """Evaluate against one row."""

    @abstractmethod
    def evaluate_batch(self, columns: Columns, count: int) -> Sequence[Any]:
        """Evaluate against ``count`` rows held as column vectors.

        Must be element-wise identical to calling :meth:`evaluate` on
        each row — the row path stays the correctness oracle.  May
        return an existing column vector unchanged (zero-copy), so
        callers must not mutate the result.
        """

    @abstractmethod
    def columns(self) -> frozenset[str]:
        """All column names this expression references."""

    # Comparisons -------------------------------------------------------

    def __eq__(self, other: object) -> "Comparison":  # type: ignore[override]
        return Comparison(self, "=", _wrap(other))

    def __ne__(self, other: object) -> "Comparison":  # type: ignore[override]
        return Comparison(self, "!=", _wrap(other))

    def __lt__(self, other: object) -> "Comparison":
        return Comparison(self, "<", _wrap(other))

    def __le__(self, other: object) -> "Comparison":
        return Comparison(self, "<=", _wrap(other))

    def __gt__(self, other: object) -> "Comparison":
        return Comparison(self, ">", _wrap(other))

    def __ge__(self, other: object) -> "Comparison":
        return Comparison(self, ">=", _wrap(other))

    # Boolean combinators -----------------------------------------------

    def __and__(self, other: "Expression") -> "BooleanOp":
        return BooleanOp("and", self, _wrap(other))

    def __or__(self, other: "Expression") -> "BooleanOp":
        return BooleanOp("or", self, _wrap(other))

    def __invert__(self) -> "NotOp":
        return NotOp(self)

    # Arithmetic ---------------------------------------------------------

    def __add__(self, other: object) -> "Arithmetic":
        return Arithmetic(self, "+", _wrap(other))

    def __sub__(self, other: object) -> "Arithmetic":
        return Arithmetic(self, "-", _wrap(other))

    def __mul__(self, other: object) -> "Arithmetic":
        return Arithmetic(self, "*", _wrap(other))

    def __truediv__(self, other: object) -> "Arithmetic":
        return Arithmetic(self, "/", _wrap(other))

    def __hash__(self) -> int:  # __eq__ is overloaded, keep hashable
        return id(self)


def _wrap(value: object) -> "Expression":
    if isinstance(value, Expression):
        return value
    return Literal(value)


class Column(Expression):
    """A reference to a column by name."""

    def __init__(self, name: str) -> None:
        self.name = name

    def evaluate(self, row: Row, layout: Layout) -> Any:
        try:
            return row[layout[self.name]]
        except KeyError:
            raise EngineError(
                f"unknown column {self.name!r}; available: {sorted(layout)}"
            ) from None

    def evaluate_batch(self, columns: Columns, count: int) -> Sequence[Any]:
        try:
            return columns[self.name]
        except KeyError:
            raise EngineError(
                f"unknown column {self.name!r}; available: {sorted(columns)}"
            ) from None

    def columns(self) -> frozenset[str]:
        return frozenset({self.name})

    def __repr__(self) -> str:
        return f"col({self.name!r})"


class Literal(Expression):
    """A constant value."""

    def __init__(self, value: Any) -> None:
        self.value = value

    def evaluate(self, row: Row, layout: Layout) -> Any:
        return self.value

    def evaluate_batch(self, columns: Columns, count: int) -> Sequence[Any]:
        return [self.value] * count

    def columns(self) -> frozenset[str]:
        return frozenset()

    def __repr__(self) -> str:
        return f"lit({self.value!r})"


_COMPARATORS: dict[str, Callable[[Any, Any], bool]] = {
    "=": operator.eq,
    "!=": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}


class Comparison(Expression):
    """A binary comparison between two sub-expressions."""

    def __init__(self, left: Expression, op: str, right: Expression) -> None:
        if op not in _COMPARATORS:
            raise EngineError(f"unknown comparison operator {op!r}")
        self.left = left
        self.op = op
        self.right = right

    def evaluate(self, row: Row, layout: Layout) -> bool:
        return _COMPARATORS[self.op](
            self.left.evaluate(row, layout), self.right.evaluate(row, layout)
        )

    def evaluate_batch(self, columns: Columns, count: int) -> Sequence[Any]:
        compare = _COMPARATORS[self.op]
        # Constant operands skip the broadcast list a Literal would build.
        if isinstance(self.right, Literal):
            constant = self.right.value
            return [
                compare(item, constant)
                for item in self.left.evaluate_batch(columns, count)
            ]
        if isinstance(self.left, Literal):
            constant = self.left.value
            return [
                compare(constant, item)
                for item in self.right.evaluate_batch(columns, count)
            ]
        return [
            compare(left_item, right_item)
            for left_item, right_item in zip(
                self.left.evaluate_batch(columns, count),
                self.right.evaluate_batch(columns, count),
            )
        ]

    def columns(self) -> frozenset[str]:
        return self.left.columns() | self.right.columns()

    @property
    def is_equality_on_column(self) -> bool:
        """True for ``col = literal`` patterns, which index scans can serve."""
        return (
            self.op == "="
            and isinstance(self.left, Column)
            and isinstance(self.right, Literal)
        )

    def __repr__(self) -> str:
        return f"({self.left!r} {self.op} {self.right!r})"


class BooleanOp(Expression):
    """Logical AND / OR over two sub-expressions."""

    def __init__(self, op: str, left: Expression, right: Expression) -> None:
        if op not in ("and", "or"):
            raise EngineError(f"unknown boolean operator {op!r}")
        self.op = op
        self.left = left
        self.right = right

    def evaluate(self, row: Row, layout: Layout) -> bool:
        if self.op == "and":
            return bool(self.left.evaluate(row, layout)) and bool(
                self.right.evaluate(row, layout)
            )
        return bool(self.left.evaluate(row, layout)) or bool(
            self.right.evaluate(row, layout)
        )

    def evaluate_batch(self, columns: Columns, count: int) -> Sequence[Any]:
        left = self.left.evaluate_batch(columns, count)
        right = self.right.evaluate_batch(columns, count)
        if self.op == "and":
            return [
                bool(left_item) and bool(right_item)
                for left_item, right_item in zip(left, right)
            ]
        return [
            bool(left_item) or bool(right_item)
            for left_item, right_item in zip(left, right)
        ]

    def columns(self) -> frozenset[str]:
        return self.left.columns() | self.right.columns()

    def __repr__(self) -> str:
        return f"({self.left!r} {self.op} {self.right!r})"


class NotOp(Expression):
    """Logical negation."""

    def __init__(self, inner: Expression) -> None:
        self.inner = inner

    def evaluate(self, row: Row, layout: Layout) -> bool:
        return not bool(self.inner.evaluate(row, layout))

    def evaluate_batch(self, columns: Columns, count: int) -> Sequence[Any]:
        return [
            not bool(item)
            for item in self.inner.evaluate_batch(columns, count)
        ]

    def columns(self) -> frozenset[str]:
        return self.inner.columns()

    def __repr__(self) -> str:
        return f"(not {self.inner!r})"


_ARITHMETIC: dict[str, Callable[[Any, Any], Any]] = {
    "+": operator.add,
    "-": operator.sub,
    "*": operator.mul,
    "/": operator.truediv,
}


class Arithmetic(Expression):
    """Binary arithmetic between two sub-expressions."""

    def __init__(self, left: Expression, op: str, right: Expression) -> None:
        if op not in _ARITHMETIC:
            raise EngineError(f"unknown arithmetic operator {op!r}")
        self.left = left
        self.op = op
        self.right = right

    def evaluate(self, row: Row, layout: Layout) -> Any:
        return _ARITHMETIC[self.op](
            self.left.evaluate(row, layout), self.right.evaluate(row, layout)
        )

    def evaluate_batch(self, columns: Columns, count: int) -> Sequence[Any]:
        combine = _ARITHMETIC[self.op]
        if isinstance(self.right, Literal):
            constant = self.right.value
            return [
                combine(item, constant)
                for item in self.left.evaluate_batch(columns, count)
            ]
        if isinstance(self.left, Literal):
            constant = self.left.value
            return [
                combine(constant, item)
                for item in self.right.evaluate_batch(columns, count)
            ]
        return [
            combine(left_item, right_item)
            for left_item, right_item in zip(
                self.left.evaluate_batch(columns, count),
                self.right.evaluate_batch(columns, count),
            )
        ]

    def columns(self) -> frozenset[str]:
        return self.left.columns() | self.right.columns()

    def __repr__(self) -> str:
        return f"({self.left!r} {self.op} {self.right!r})"


def col(name: str) -> Column:
    """Reference a column by name."""
    return Column(name)


def lit(value: Any) -> Literal:
    """Wrap a constant value."""
    return Literal(value)


def split_conjuncts(expression: Expression | None) -> list[Expression]:
    """Flatten a predicate into its top-level AND-ed conjuncts.

    Used by the planner for predicate pushdown: each conjunct can be
    pushed independently to whichever input provides its columns.
    """
    if expression is None:
        return []
    if isinstance(expression, BooleanOp) and expression.op == "and":
        return split_conjuncts(expression.left) + split_conjuncts(expression.right)
    return [expression]


def conjoin(conjuncts: list[Expression]) -> Expression | None:
    """Re-assemble conjuncts into a single AND expression (or None)."""
    if not conjuncts:
        return None
    result = conjuncts[0]
    for conjunct in conjuncts[1:]:
        result = BooleanOp("and", result, conjunct)
    return result
