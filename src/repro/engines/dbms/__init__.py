"""A from-scratch relational engine (the parallel-DBMS substitute)."""

from repro.engines.dbms.catalog import Catalog, TableStats
from repro.engines.dbms.engine import DbmsEngine, QueryResult
from repro.engines.dbms.expressions import col, lit
from repro.engines.dbms.planner import (
    JoinSpec,
    Planner,
    PlannerConfig,
    Query,
    QueryBuilder,
)
from repro.engines.dbms.plans import Aggregate
from repro.engines.dbms.storage import HeapTable, SortedIndex

__all__ = [
    "Aggregate",
    "Catalog",
    "DbmsEngine",
    "HeapTable",
    "JoinSpec",
    "Planner",
    "PlannerConfig",
    "Query",
    "QueryBuilder",
    "QueryResult",
    "SortedIndex",
    "TableStats",
    "col",
    "lit",
]
