"""Physical query operators (iterator model).

Each operator exposes ``schema`` (output column names), ``rows()`` (a
generator of output tuples), and ``explain()`` (a nested plan description
used by the planner ablation benchmarks).  Operators charge their work to
a shared :class:`~repro.engines.base.CostCounters` so architecture
metrics can be derived from any query.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections import defaultdict
from collections.abc import Iterator
from dataclasses import dataclass
from typing import Any

from repro.core.errors import EngineError
from repro.engines.base import CostCounters
from repro.engines.dbms.expressions import Expression
from repro.engines.dbms.storage import HeapTable

Row = tuple


class PhysicalOperator(ABC):
    """Base class of physical operators."""

    def __init__(self, cost: CostCounters) -> None:
        self.cost = cost

    @property
    @abstractmethod
    def schema(self) -> tuple[str, ...]:
        """Output column names."""

    @abstractmethod
    def rows(self) -> Iterator[Row]:
        """Yield output rows."""

    @abstractmethod
    def explain(self) -> dict[str, Any]:
        """A nested description of this plan subtree."""

    @property
    def layout(self) -> dict[str, int]:
        return {column: index for index, column in enumerate(self.schema)}


class SeqScan(PhysicalOperator):
    """Full scan of a heap table."""

    def __init__(self, table: HeapTable, cost: CostCounters) -> None:
        super().__init__(cost)
        self.table = table

    @property
    def schema(self) -> tuple[str, ...]:
        return self.table.schema

    def rows(self) -> Iterator[Row]:
        for row in self.table.scan():
            self.cost.records_read += 1
            yield row

    def explain(self) -> dict[str, Any]:
        return {"op": "SeqScan", "table": self.table.name, "rows": len(self.table)}


class IndexScan(PhysicalOperator):
    """Point or range lookup through a secondary index."""

    def __init__(
        self,
        table: HeapTable,
        column: str,
        cost: CostCounters,
        value: Any = None,
        low: Any = None,
        high: Any = None,
    ) -> None:
        super().__init__(cost)
        if not table.has_index(column):
            raise EngineError(
                f"table {table.name!r} has no index on {column!r}"
            )
        self.table = table
        self.column = column
        self.value = value
        self.low = low
        self.high = high

    @property
    def schema(self) -> tuple[str, ...]:
        return self.table.schema

    def rows(self) -> Iterator[Row]:
        index = self.table.indexes[self.column]
        if self.value is not None:
            row_ids = index.lookup(self.value)
        else:
            row_ids = index.range_scan(self.low, self.high)
        for row_id in row_ids:
            self.cost.records_read += 1
            yield self.table.fetch(row_id)

    def explain(self) -> dict[str, Any]:
        return {
            "op": "IndexScan",
            "table": self.table.name,
            "column": self.column,
            "point": self.value is not None,
        }


class Filter(PhysicalOperator):
    """Row filter by a predicate expression."""

    def __init__(
        self, child: PhysicalOperator, predicate: Expression, cost: CostCounters
    ) -> None:
        super().__init__(cost)
        self.child = child
        self.predicate = predicate

    @property
    def schema(self) -> tuple[str, ...]:
        return self.child.schema

    def rows(self) -> Iterator[Row]:
        layout = self.child.layout
        for row in self.child.rows():
            self.cost.compute_ops += 1
            if self.predicate.evaluate(row, layout):
                yield row

    def explain(self) -> dict[str, Any]:
        return {
            "op": "Filter",
            "predicate": repr(self.predicate),
            "child": self.child.explain(),
        }


class Project(PhysicalOperator):
    """Column projection (and computed expressions)."""

    def __init__(
        self,
        child: PhysicalOperator,
        columns: list[tuple[str, Expression]],
        cost: CostCounters,
    ) -> None:
        super().__init__(cost)
        if not columns:
            raise EngineError("projection needs at least one output column")
        self.child = child
        self.columns = columns

    @property
    def schema(self) -> tuple[str, ...]:
        return tuple(name for name, _ in self.columns)

    def rows(self) -> Iterator[Row]:
        layout = self.child.layout
        for row in self.child.rows():
            self.cost.compute_ops += 1
            yield tuple(
                expression.evaluate(row, layout) for _, expression in self.columns
            )

    def explain(self) -> dict[str, Any]:
        return {
            "op": "Project",
            "columns": list(self.schema),
            "child": self.child.explain(),
        }


class NestedLoopJoin(PhysicalOperator):
    """Equi-join by scanning the inner input once per outer row."""

    def __init__(
        self,
        outer: PhysicalOperator,
        inner: PhysicalOperator,
        outer_column: str,
        inner_column: str,
        cost: CostCounters,
    ) -> None:
        super().__init__(cost)
        self.outer = outer
        self.inner = inner
        self.outer_column = outer_column
        self.inner_column = inner_column
        self._schema = _join_schema(outer.schema, inner.schema)

    @property
    def schema(self) -> tuple[str, ...]:
        return self._schema

    def rows(self) -> Iterator[Row]:
        inner_rows = list(self.inner.rows())
        inner_position = self.inner.layout[self.inner_column]
        outer_position = self.outer.layout[self.outer_column]
        for outer_row in self.outer.rows():
            key = outer_row[outer_position]
            for inner_row in inner_rows:
                self.cost.compute_ops += 1
                if inner_row[inner_position] == key:
                    yield outer_row + inner_row

    def explain(self) -> dict[str, Any]:
        return {
            "op": "NestedLoopJoin",
            "on": f"{self.outer_column} = {self.inner_column}",
            "outer": self.outer.explain(),
            "inner": self.inner.explain(),
        }


class HashJoin(PhysicalOperator):
    """Equi-join by building a hash table on the inner (build) input."""

    def __init__(
        self,
        outer: PhysicalOperator,
        inner: PhysicalOperator,
        outer_column: str,
        inner_column: str,
        cost: CostCounters,
    ) -> None:
        super().__init__(cost)
        self.outer = outer
        self.inner = inner
        self.outer_column = outer_column
        self.inner_column = inner_column
        self._schema = _join_schema(outer.schema, inner.schema)

    @property
    def schema(self) -> tuple[str, ...]:
        return self._schema

    def rows(self) -> Iterator[Row]:
        inner_position = self.inner.layout[self.inner_column]
        build: dict[Any, list[Row]] = defaultdict(list)
        for inner_row in self.inner.rows():
            self.cost.compute_ops += 1
            build[inner_row[inner_position]].append(inner_row)
        outer_position = self.outer.layout[self.outer_column]
        for outer_row in self.outer.rows():
            self.cost.compute_ops += 1
            for inner_row in build.get(outer_row[outer_position], ()):
                yield outer_row + inner_row

    def explain(self) -> dict[str, Any]:
        return {
            "op": "HashJoin",
            "on": f"{self.outer_column} = {self.inner_column}",
            "outer": self.outer.explain(),
            "inner": self.inner.explain(),
        }


class MergeJoin(PhysicalOperator):
    """Equi-join by sorting both inputs on the join key and merging."""

    def __init__(
        self,
        outer: PhysicalOperator,
        inner: PhysicalOperator,
        outer_column: str,
        inner_column: str,
        cost: CostCounters,
    ) -> None:
        super().__init__(cost)
        self.outer = outer
        self.inner = inner
        self.outer_column = outer_column
        self.inner_column = inner_column
        self._schema = _join_schema(outer.schema, inner.schema)

    @property
    def schema(self) -> tuple[str, ...]:
        return self._schema

    def rows(self) -> Iterator[Row]:
        outer_position = self.outer.layout[self.outer_column]
        inner_position = self.inner.layout[self.inner_column]
        outer_rows = sorted(self.outer.rows(), key=lambda row: row[outer_position])
        inner_rows = sorted(self.inner.rows(), key=lambda row: row[inner_position])
        self.cost.compute_ops += len(outer_rows) + len(inner_rows)
        outer_index = inner_index = 0
        while outer_index < len(outer_rows) and inner_index < len(inner_rows):
            outer_key = outer_rows[outer_index][outer_position]
            inner_key = inner_rows[inner_index][inner_position]
            self.cost.compute_ops += 1
            if outer_key < inner_key:
                outer_index += 1
            elif outer_key > inner_key:
                inner_index += 1
            else:
                # Emit the cross product of this key group.
                inner_group_end = inner_index
                while (
                    inner_group_end < len(inner_rows)
                    and inner_rows[inner_group_end][inner_position] == inner_key
                ):
                    inner_group_end += 1
                while (
                    outer_index < len(outer_rows)
                    and outer_rows[outer_index][outer_position] == outer_key
                ):
                    for position in range(inner_index, inner_group_end):
                        yield outer_rows[outer_index] + inner_rows[position]
                    outer_index += 1
                inner_index = inner_group_end

    def explain(self) -> dict[str, Any]:
        return {
            "op": "MergeJoin",
            "on": f"{self.outer_column} = {self.inner_column}",
            "outer": self.outer.explain(),
            "inner": self.inner.explain(),
        }


@dataclass(frozen=True)
class Aggregate:
    """One aggregate in a GROUP BY: function, input column, output alias."""

    function: str  # count | sum | min | max | avg
    column: str | None  # None only for count(*)
    alias: str

    _FUNCTIONS = ("count", "sum", "min", "max", "avg")

    def __post_init__(self) -> None:
        if self.function not in self._FUNCTIONS:
            raise EngineError(
                f"unknown aggregate {self.function!r}; "
                f"supported: {self._FUNCTIONS}"
            )
        if self.function != "count" and self.column is None:
            raise EngineError(f"aggregate {self.function!r} needs a column")


class _AggState:
    """Incremental state of one aggregate over one group."""

    def __init__(self, function: str) -> None:
        self.function = function
        self.count = 0
        self.total = 0.0
        self.minimum: Any = None
        self.maximum: Any = None

    def update(self, value: Any) -> None:
        self.count += 1
        if self.function in ("sum", "avg") and value is not None:
            self.total += value
        if self.function == "min":
            if self.minimum is None or value < self.minimum:
                self.minimum = value
        if self.function == "max":
            if self.maximum is None or value > self.maximum:
                self.maximum = value

    def result(self) -> Any:
        if self.function == "count":
            return self.count
        if self.function == "sum":
            return self.total
        if self.function == "avg":
            return self.total / self.count if self.count else None
        if self.function == "min":
            return self.minimum
        return self.maximum


class HashAggregate(PhysicalOperator):
    """GROUP BY via an in-memory hash of group keys."""

    def __init__(
        self,
        child: PhysicalOperator,
        group_by: list[str],
        aggregates: list[Aggregate],
        cost: CostCounters,
    ) -> None:
        super().__init__(cost)
        if not aggregates and not group_by:
            raise EngineError("aggregate needs group keys or aggregates")
        self.child = child
        self.group_by = list(group_by)
        self.aggregates = list(aggregates)

    @property
    def schema(self) -> tuple[str, ...]:
        return tuple(self.group_by) + tuple(agg.alias for agg in self.aggregates)

    def rows(self) -> Iterator[Row]:
        layout = self.child.layout
        key_positions = [layout[column] for column in self.group_by]
        agg_positions = [
            layout[agg.column] if agg.column is not None else None
            for agg in self.aggregates
        ]
        groups: dict[tuple, list[_AggState]] = {}
        order: list[tuple] = []
        for row in self.child.rows():
            self.cost.compute_ops += 1
            key = tuple(row[position] for position in key_positions)
            states = groups.get(key)
            if states is None:
                states = [_AggState(agg.function) for agg in self.aggregates]
                groups[key] = states
                order.append(key)
            for state, position in zip(states, agg_positions):
                state.update(row[position] if position is not None else 1)
        for key in order:
            yield key + tuple(state.result() for state in groups[key])

    def explain(self) -> dict[str, Any]:
        return {
            "op": "HashAggregate",
            "group_by": self.group_by,
            "aggregates": [f"{a.function}({a.column})" for a in self.aggregates],
            "child": self.child.explain(),
        }


class Sort(PhysicalOperator):
    """ORDER BY (full materializing sort)."""

    def __init__(
        self,
        child: PhysicalOperator,
        order_by: list[tuple[str, bool]],
        cost: CostCounters,
    ) -> None:
        super().__init__(cost)
        if not order_by:
            raise EngineError("sort needs at least one order key")
        self.child = child
        self.order_by = list(order_by)

    @property
    def schema(self) -> tuple[str, ...]:
        return self.child.schema

    def rows(self) -> Iterator[Row]:
        layout = self.child.layout
        materialized = list(self.child.rows())
        self.cost.compute_ops += len(materialized)
        # Stable sorts applied in reverse give multi-key ordering.
        for column, descending in reversed(self.order_by):
            position = layout[column]
            materialized.sort(key=lambda row: row[position], reverse=descending)
        yield from materialized

    def explain(self) -> dict[str, Any]:
        return {
            "op": "Sort",
            "order_by": [
                f"{column} {'desc' if descending else 'asc'}"
                for column, descending in self.order_by
            ],
            "child": self.child.explain(),
        }


class Limit(PhysicalOperator):
    """LIMIT n."""

    def __init__(self, child: PhysicalOperator, count: int, cost: CostCounters) -> None:
        super().__init__(cost)
        if count < 0:
            raise EngineError(f"limit must be non-negative, got {count}")
        self.child = child
        self.count = count

    @property
    def schema(self) -> tuple[str, ...]:
        return self.child.schema

    def rows(self) -> Iterator[Row]:
        emitted = 0
        for row in self.child.rows():
            if emitted >= self.count:
                break
            emitted += 1
            yield row

    def explain(self) -> dict[str, Any]:
        return {"op": "Limit", "count": self.count, "child": self.child.explain()}


class Materialize(PhysicalOperator):
    """Wrap already-computed rows as an operator (for derived inputs)."""

    def __init__(
        self, schema: tuple[str, ...], rows: list[Row], cost: CostCounters
    ) -> None:
        super().__init__(cost)
        self._schema = schema
        self._rows = rows

    @property
    def schema(self) -> tuple[str, ...]:
        return self._schema

    def rows(self) -> Iterator[Row]:
        yield from self._rows

    def explain(self) -> dict[str, Any]:
        return {"op": "Materialize", "rows": len(self._rows)}


def _join_schema(
    outer: tuple[str, ...], inner: tuple[str, ...]
) -> tuple[str, ...]:
    """Concatenate schemas, qualifying inner-side duplicates."""
    seen = set(outer)
    merged = list(outer)
    for column in inner:
        name = column
        while name in seen:
            name = f"{name}_r"
        seen.add(name)
        merged.append(name)
    return tuple(merged)
