"""Vectorized physical operators (batch-at-a-time columnar model).

The row operators in :mod:`repro.engines.dbms.plans` pull one tuple at a
time through the iterator tree; these operators pull a
:class:`ColumnBatch` — up to :data:`DEFAULT_BATCH_SIZE` rows held as
parallel column vectors — so per-row interpreter overhead (generator
resumption, per-row counter bumps, per-row expression-tree recursion) is
paid once per batch instead of once per row.  Predicates and projections
evaluate through :meth:`Expression.evaluate_batch`; filters carry a
selection vector of surviving positions rather than copying rows.

Cost parity is deliberate: every operator charges the same
``records_read``/``compute_ops`` totals as its row twin, so the
architecture metrics stay comparable across layouts.  The only new
signal is ``CostCounters.batches`` — incremented once per batch an
operator emits — which makes the batch structure of a run observable.

A :class:`VectorOperator` also exposes ``rows()``/``schema``/
``explain()``, so the engine and any row operator can consume it
unchanged; :class:`RowAdapter` wraps one explicitly when the planner
falls back to a row-only algorithm (e.g. merge join) mid-plan.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections import defaultdict
from collections.abc import Iterator, Sequence
from typing import Any

from repro.core.errors import EngineError
from repro.engines.base import CostCounters
from repro.engines.dbms.expressions import Expression
from repro.engines.dbms.plans import (
    Aggregate,
    PhysicalOperator,
    _AggState,
    _join_schema,
)
from repro.engines.dbms.storage import HeapTable

Row = tuple

#: Rows per column batch; large enough to amortize per-batch overhead,
#: small enough to keep working sets cache-friendly.
DEFAULT_BATCH_SIZE = 1024


class ColumnBatch:
    """A batch of rows stored column-major.

    ``columns`` is parallel to ``schema``; each entry is any sequence
    (typed array slice, tuple, or list) of ``num_rows`` values.
    """

    __slots__ = ("schema", "columns", "num_rows")

    def __init__(
        self,
        schema: tuple[str, ...],
        columns: Sequence[Sequence[Any]],
        num_rows: int,
    ) -> None:
        self.schema = schema
        self.columns = columns
        self.num_rows = num_rows

    @classmethod
    def from_rows(cls, schema: tuple[str, ...], rows: list[Row]) -> "ColumnBatch":
        if rows:
            columns: Sequence[Sequence[Any]] = list(zip(*rows))
        else:
            columns = [() for _ in schema]
        return cls(schema, columns, len(rows))

    def column_map(self) -> dict[str, Sequence[Any]]:
        """Named column vectors (what ``evaluate_batch`` consumes)."""
        return dict(zip(self.schema, self.columns))

    def take(self, positions: list[int]) -> "ColumnBatch":
        """Gather the given positions into a new batch (selection vector)."""
        return ColumnBatch(
            self.schema,
            [
                [column[position] for position in positions]
                for column in self.columns
            ],
            len(positions),
        )

    def head(self, count: int) -> "ColumnBatch":
        """The first ``count`` rows (cheap slices, no per-value gather)."""
        return ColumnBatch(
            self.schema,
            [column[:count] for column in self.columns],
            min(count, self.num_rows),
        )

    def to_rows(self) -> list[Row]:
        """Transpose back to row tuples (batch boundary / row consumers)."""
        if not self.num_rows:
            return []
        return list(zip(*self.columns))

    def __len__(self) -> int:
        return self.num_rows


class VectorOperator(ABC):
    """Base class of vectorized operators.

    Duck-types to :class:`~repro.engines.dbms.plans.PhysicalOperator`
    (``schema``/``rows()``/``explain()``/``layout``) so the engine and
    row operators can consume a vector subtree without special cases.
    """

    def __init__(self, cost: CostCounters) -> None:
        self.cost = cost

    @property
    @abstractmethod
    def schema(self) -> tuple[str, ...]:
        """Output column names."""

    @abstractmethod
    def batches(self) -> Iterator[ColumnBatch]:
        """Yield output batches."""

    @abstractmethod
    def explain(self) -> dict[str, Any]:
        """A nested description of this plan subtree."""

    def rows(self) -> Iterator[Row]:
        """Row view of the batch stream (the engine's consumption API)."""
        for batch in self.batches():
            yield from batch.to_rows()

    @property
    def layout(self) -> dict[str, int]:
        return {column: index for index, column in enumerate(self.schema)}


class ColumnarScan(VectorOperator):
    """Full scan of a table's columnar view, one batch per slice.

    With a pushed-down ``predicate``, the scan evaluates it over only
    the column vectors the predicate references and materializes the
    remaining columns just for the surviving positions — a batch whose
    rows are all filtered out never touches the untouched columns at
    all.  Cost parity with the unfused ``ColumnarScan`` → ``BatchFilter``
    pair is preserved exactly: ``records_read`` bumps once per scanned
    row and ``compute_ops`` once per predicate evaluation, so the
    architecture metrics cannot tell the plans apart; the win shows up
    in wall-clock ``duration`` (and one fewer operator in ``batches``).
    """

    def __init__(
        self,
        table: HeapTable,
        cost: CostCounters,
        batch_size: int = DEFAULT_BATCH_SIZE,
        predicate: Expression | None = None,
    ) -> None:
        super().__init__(cost)
        if batch_size <= 0:
            raise EngineError(f"batch_size must be positive, got {batch_size}")
        self.table = table
        self.batch_size = batch_size
        self.predicate = predicate

    @property
    def schema(self) -> tuple[str, ...]:
        return self.table.schema

    def batches(self) -> Iterator[ColumnBatch]:
        if self.predicate is not None:
            yield from self._filtered_batches()
            return
        view = self.table.columnar()
        columns = [view.column(name) for name in view.schema]
        total = view.num_rows
        for start in range(0, total, self.batch_size):
            stop = min(start + self.batch_size, total)
            count = stop - start
            self.cost.records_read += count
            self.cost.batches += 1
            yield ColumnBatch(
                view.schema,
                [column[start:stop] for column in columns],
                count,
            )

    def _filtered_batches(self) -> Iterator[ColumnBatch]:
        view = self.table.columnar()
        schema = view.schema
        needed = self.predicate.columns() & set(schema)
        columns = {name: view.column(name) for name in schema}
        total = view.num_rows
        for start in range(0, total, self.batch_size):
            stop = min(start + self.batch_size, total)
            count = stop - start
            self.cost.records_read += count
            self.cost.compute_ops += count
            # Only the predicate's columns are sliced for evaluation.
            predicate_map = {
                name: columns[name][start:stop] for name in needed
            }
            mask = self.predicate.evaluate_batch(predicate_map, count)
            selection = [
                position for position, keep in enumerate(mask) if keep
            ]
            if not selection:
                continue
            self.cost.batches += 1
            if len(selection) == count:
                yield ColumnBatch(
                    schema,
                    [columns[name][start:stop] for name in schema],
                    count,
                )
            else:
                yield ColumnBatch(
                    schema,
                    [
                        [columns[name][start + position]
                         for position in selection]
                        for name in schema
                    ],
                    len(selection),
                )

    def explain(self) -> dict[str, Any]:
        explained: dict[str, Any] = {
            "op": "ColumnarScan",
            "table": self.table.name,
            "rows": len(self.table),
            "batch_size": self.batch_size,
        }
        if self.predicate is not None:
            explained["predicate"] = repr(self.predicate)
        return explained


class ColumnarIndexScan(VectorOperator):
    """Index lookup gathered positionally from the columnar view."""

    def __init__(
        self,
        table: HeapTable,
        column: str,
        cost: CostCounters,
        value: Any = None,
        low: Any = None,
        high: Any = None,
        batch_size: int = DEFAULT_BATCH_SIZE,
    ) -> None:
        super().__init__(cost)
        if not table.has_index(column):
            raise EngineError(
                f"table {table.name!r} has no index on {column!r}"
            )
        self.table = table
        self.column = column
        self.value = value
        self.low = low
        self.high = high
        self.batch_size = batch_size

    @property
    def schema(self) -> tuple[str, ...]:
        return self.table.schema

    def batches(self) -> Iterator[ColumnBatch]:
        view = self.table.columnar()
        index = self.table.indexes[self.column]
        if self.value is not None:
            row_ids = index.lookup(self.value)
        else:
            row_ids = index.range_scan(self.low, self.high)
        positions = view.positions_for(row_ids)
        columns = [view.column(name) for name in view.schema]
        for start in range(0, len(positions), self.batch_size):
            chunk = positions[start : start + self.batch_size]
            self.cost.records_read += len(chunk)
            self.cost.batches += 1
            yield ColumnBatch(
                view.schema,
                [
                    [column[position] for position in chunk]
                    for column in columns
                ],
                len(chunk),
            )

    def explain(self) -> dict[str, Any]:
        return {
            "op": "ColumnarIndexScan",
            "table": self.table.name,
            "column": self.column,
            "point": self.value is not None,
        }


class BatchFilter(VectorOperator):
    """Predicate filter via a selection vector over each input batch."""

    def __init__(
        self,
        child: VectorOperator,
        predicate: Expression,
        cost: CostCounters,
    ) -> None:
        super().__init__(cost)
        self.child = child
        self.predicate = predicate

    @property
    def schema(self) -> tuple[str, ...]:
        return self.child.schema

    def batches(self) -> Iterator[ColumnBatch]:
        for batch in self.child.batches():
            self.cost.compute_ops += batch.num_rows
            mask = self.predicate.evaluate_batch(
                batch.column_map(), batch.num_rows
            )
            selection = [
                position for position, keep in enumerate(mask) if keep
            ]
            if not selection:
                continue
            self.cost.batches += 1
            if len(selection) == batch.num_rows:
                yield batch
            else:
                yield batch.take(selection)

    def explain(self) -> dict[str, Any]:
        return {
            "op": "BatchFilter",
            "predicate": repr(self.predicate),
            "child": self.child.explain(),
        }


class BatchProject(VectorOperator):
    """Projection/computed expressions, one ``evaluate_batch`` per output."""

    def __init__(
        self,
        child: VectorOperator,
        columns: list[tuple[str, Expression]],
        cost: CostCounters,
    ) -> None:
        super().__init__(cost)
        if not columns:
            raise EngineError("projection needs at least one output column")
        self.child = child
        self.columns = columns

    @property
    def schema(self) -> tuple[str, ...]:
        return tuple(name for name, _ in self.columns)

    def batches(self) -> Iterator[ColumnBatch]:
        schema = self.schema
        for batch in self.child.batches():
            self.cost.compute_ops += batch.num_rows
            column_map = batch.column_map()
            outputs = [
                expression.evaluate_batch(column_map, batch.num_rows)
                for _, expression in self.columns
            ]
            self.cost.batches += 1
            yield ColumnBatch(schema, outputs, batch.num_rows)

    def explain(self) -> dict[str, Any]:
        return {
            "op": "BatchProject",
            "columns": list(self.schema),
            "child": self.child.explain(),
        }


class BatchHashJoin(VectorOperator):
    """Equi-join: build a hash table on the inner side, probe per batch.

    Output row order matches :class:`~repro.engines.dbms.plans.HashJoin`
    exactly — outer order, inner matches in build-insertion order.
    """

    def __init__(
        self,
        outer: VectorOperator,
        inner: VectorOperator,
        outer_column: str,
        inner_column: str,
        cost: CostCounters,
    ) -> None:
        super().__init__(cost)
        self.outer = outer
        self.inner = inner
        self.outer_column = outer_column
        self.inner_column = inner_column
        self._schema = _join_schema(outer.schema, inner.schema)

    @property
    def schema(self) -> tuple[str, ...]:
        return self._schema

    def batches(self) -> Iterator[ColumnBatch]:
        inner_position = self.inner.layout[self.inner_column]
        build: dict[Any, list[Row]] = defaultdict(list)
        for batch in self.inner.batches():
            self.cost.compute_ops += batch.num_rows
            keys = batch.columns[inner_position]
            for key, row in zip(keys, batch.to_rows()):
                build[key].append(row)
        outer_position = self.outer.layout[self.outer_column]
        lookup = build.get
        for batch in self.outer.batches():
            self.cost.compute_ops += batch.num_rows
            keys = batch.columns[outer_position]
            joined: list[Row] = []
            for key, outer_row in zip(keys, batch.to_rows()):
                matches = lookup(key)
                if matches:
                    for inner_row in matches:
                        joined.append(outer_row + inner_row)
            if joined:
                self.cost.batches += 1
                yield ColumnBatch.from_rows(self._schema, joined)

    def explain(self) -> dict[str, Any]:
        return {
            "op": "BatchHashJoin",
            "on": f"{self.outer_column} = {self.inner_column}",
            "outer": self.outer.explain(),
            "inner": self.inner.explain(),
        }


class BatchAggregate(VectorOperator):
    """GROUP BY over column keys, preserving first-seen group order."""

    def __init__(
        self,
        child: VectorOperator,
        group_by: list[str],
        aggregates: list[Aggregate],
        cost: CostCounters,
    ) -> None:
        super().__init__(cost)
        if not aggregates and not group_by:
            raise EngineError("aggregate needs group keys or aggregates")
        self.child = child
        self.group_by = list(group_by)
        self.aggregates = list(aggregates)

    @property
    def schema(self) -> tuple[str, ...]:
        return tuple(self.group_by) + tuple(agg.alias for agg in self.aggregates)

    def batches(self) -> Iterator[ColumnBatch]:
        groups: dict[tuple, list[_AggState]] = {}
        order: list[tuple] = []
        for batch in self.child.batches():
            self.cost.compute_ops += batch.num_rows
            column_map = batch.column_map()
            if self.group_by:
                keys = list(
                    zip(*(column_map[column] for column in self.group_by))
                )
            else:
                keys = [()] * batch.num_rows
            value_columns = [
                column_map[agg.column] if agg.column is not None else None
                for agg in self.aggregates
            ]
            for position, key in enumerate(keys):
                states = groups.get(key)
                if states is None:
                    states = [
                        _AggState(agg.function) for agg in self.aggregates
                    ]
                    groups[key] = states
                    order.append(key)
                for state, values in zip(states, value_columns):
                    state.update(
                        values[position] if values is not None else 1
                    )
        results = [
            key + tuple(state.result() for state in groups[key])
            for key in order
        ]
        if results:
            self.cost.batches += 1
            yield ColumnBatch.from_rows(self.schema, results)

    def explain(self) -> dict[str, Any]:
        return {
            "op": "BatchAggregate",
            "group_by": self.group_by,
            "aggregates": [f"{a.function}({a.column})" for a in self.aggregates],
            "child": self.child.explain(),
        }


class BatchSort(VectorOperator):
    """ORDER BY: materialize the stream, sort, emit one batch."""

    def __init__(
        self,
        child: VectorOperator,
        order_by: list[tuple[str, bool]],
        cost: CostCounters,
    ) -> None:
        super().__init__(cost)
        if not order_by:
            raise EngineError("sort needs at least one order key")
        self.child = child
        self.order_by = list(order_by)

    @property
    def schema(self) -> tuple[str, ...]:
        return self.child.schema

    def batches(self) -> Iterator[ColumnBatch]:
        layout = self.child.layout
        materialized: list[Row] = []
        for batch in self.child.batches():
            materialized.extend(batch.to_rows())
        self.cost.compute_ops += len(materialized)
        for column, descending in reversed(self.order_by):
            position = layout[column]
            materialized.sort(
                key=lambda row: row[position], reverse=descending
            )
        if materialized:
            self.cost.batches += 1
            yield ColumnBatch.from_rows(self.schema, materialized)

    def explain(self) -> dict[str, Any]:
        return {
            "op": "BatchSort",
            "order_by": [
                f"{column} {'desc' if descending else 'asc'}"
                for column, descending in self.order_by
            ],
            "child": self.child.explain(),
        }


class BatchLimit(VectorOperator):
    """LIMIT n, trimming the final batch with slices."""

    def __init__(
        self, child: VectorOperator, count: int, cost: CostCounters
    ) -> None:
        super().__init__(cost)
        if count < 0:
            raise EngineError(f"limit must be non-negative, got {count}")
        self.child = child
        self.count = count

    @property
    def schema(self) -> tuple[str, ...]:
        return self.child.schema

    def batches(self) -> Iterator[ColumnBatch]:
        remaining = self.count
        for batch in self.child.batches():
            if remaining <= 0:
                break
            self.cost.batches += 1
            if batch.num_rows <= remaining:
                remaining -= batch.num_rows
                yield batch
            else:
                yield batch.head(remaining)
                remaining = 0

    def explain(self) -> dict[str, Any]:
        return {
            "op": "BatchLimit",
            "count": self.count,
            "child": self.child.explain(),
        }


class RowAdapter(PhysicalOperator):
    """Present a vector subtree as a row operator.

    Used when the planner must fall back to a row-only algorithm (merge
    or nested-loop join) above an already-vectorized input: the subtree
    below keeps its batch wins, the operators above consume rows.
    """

    def __init__(self, child: VectorOperator, cost: CostCounters) -> None:
        super().__init__(cost)
        self.child = child

    @property
    def schema(self) -> tuple[str, ...]:
        return self.child.schema

    def rows(self) -> Iterator[Row]:
        yield from self.child.rows()

    def explain(self) -> dict[str, Any]:
        return {"op": "RowAdapter", "child": self.child.explain()}
