"""Logical queries and the rule-based planner.

A :class:`Query` is the logical description (what BigBench/TPC-DS style
relational workloads construct); the planner turns it into a physical
operator tree, applying:

* **predicate pushdown** — single-table conjuncts move below the joins;
* **access-path selection** — an equality conjunct on an indexed column
  becomes an IndexScan;
* **join-algorithm selection** — hash join for large inputs, nested-loop
  for tiny inners, overridable for the planner ablation benchmark;
* **layout selection** — ``layout="columnar"`` plans the batch-at-a-time
  vectorized operators (:mod:`repro.engines.dbms.vector_plans`) wherever
  they exist, falling back to the row twins mid-plan for row-only
  algorithms (merge and nested-loop joins) via a ``RowAdapter``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from repro.core.errors import EngineError
from repro.engines.base import CostCounters
from repro.engines.dbms.catalog import Catalog
from repro.engines.dbms.expressions import (
    Comparison,
    Expression,
    col,
    conjoin,
    split_conjuncts,
)
from repro.engines.dbms.plans import (
    Aggregate,
    Filter,
    HashAggregate,
    HashJoin,
    IndexScan,
    Limit,
    MergeJoin,
    NestedLoopJoin,
    PhysicalOperator,
    Project,
    SeqScan,
    Sort,
)
from repro.engines.dbms.vector_plans import (
    BatchAggregate,
    BatchFilter,
    BatchHashJoin,
    BatchLimit,
    BatchProject,
    BatchSort,
    ColumnarIndexScan,
    ColumnarScan,
    RowAdapter,
    VectorOperator,
)

#: The execution layouts the planner can produce.
LAYOUTS = ("row", "columnar")


@dataclass(frozen=True)
class JoinSpec:
    """One equi-join step: join ``table`` on left_column = right_column."""

    table: str
    left_column: str
    right_column: str


@dataclass
class Query:
    """A logical query over the catalog."""

    table: str
    joins: list[JoinSpec] = field(default_factory=list)
    predicate: Expression | None = None
    group_by: list[str] = field(default_factory=list)
    aggregates: list[Aggregate] = field(default_factory=list)
    projection: list[tuple[str, Expression]] = field(default_factory=list)
    order_by: list[tuple[str, bool]] = field(default_factory=list)
    limit: int | None = None


@dataclass
class PlannerConfig:
    """Planner knobs (the ablation benchmark sweeps these)."""

    #: hash | nested_loop | merge | auto
    join_algorithm: str = "auto"
    #: Use index scans when an equality conjunct matches an index.
    use_indexes: bool = True
    #: Push single-table conjuncts below joins.
    predicate_pushdown: bool = True
    #: Inner inputs up to this many rows use nested-loop under "auto".
    nested_loop_threshold: int = 64
    #: row | columnar — the default execution layout for planned queries.
    layout: str = "row"
    #: Rows per column batch in the columnar layout.
    batch_size: int = 1024

    def __post_init__(self) -> None:
        valid = ("hash", "nested_loop", "merge", "auto")
        if self.join_algorithm not in valid:
            raise EngineError(
                f"join_algorithm must be one of {valid}, got "
                f"{self.join_algorithm!r}"
            )
        if self.layout not in LAYOUTS:
            raise EngineError(
                f"layout must be one of {LAYOUTS}, got {self.layout!r}"
            )
        if self.batch_size <= 0:
            raise EngineError(
                f"batch_size must be positive, got {self.batch_size}"
            )


class Planner:
    """Turns logical queries into physical operator trees."""

    def __init__(self, catalog: Catalog, config: PlannerConfig | None = None) -> None:
        self.catalog = catalog
        self.config = config or PlannerConfig()

    def plan(
        self,
        query: Query,
        cost: CostCounters,
        layout: str | None = None,
    ) -> PhysicalOperator | VectorOperator:
        """Build the physical plan for ``query``, charging work to ``cost``.

        ``layout`` overrides the configured default for this one query.
        """
        layout = layout if layout is not None else self.config.layout
        if layout not in LAYOUTS:
            raise EngineError(
                f"layout must be one of {LAYOUTS}, got {layout!r}"
            )
        columnar = layout == "columnar"
        conjuncts = split_conjuncts(query.predicate)
        operator, remaining = self._plan_scan(
            query.table, conjuncts, cost, columnar
        )

        for join in query.joins:
            inner, remaining = self._plan_scan(
                join.table, remaining, cost, columnar
            )
            operator = self._plan_join(operator, inner, join, cost)

        leftover = [
            conjunct
            for conjunct in remaining
            if conjunct.columns() <= set(operator.schema)
        ]
        unplaceable = [c for c in remaining if c not in leftover]
        if unplaceable:
            raise EngineError(
                f"predicate references unknown columns: "
                f"{sorted(set().union(*(c.columns() for c in unplaceable)))}"
            )
        vectorized = isinstance(operator, VectorOperator)
        residual = conjoin(leftover)
        if residual is not None:
            operator = (
                BatchFilter(operator, residual, cost)
                if vectorized
                else Filter(operator, residual, cost)
            )

        if query.group_by or query.aggregates:
            operator = (
                BatchAggregate(operator, query.group_by, query.aggregates, cost)
                if vectorized
                else HashAggregate(
                    operator, query.group_by, query.aggregates, cost
                )
            )
        if query.projection:
            operator = (
                BatchProject(operator, query.projection, cost)
                if vectorized
                else Project(operator, query.projection, cost)
            )
        if query.order_by:
            operator = (
                BatchSort(operator, query.order_by, cost)
                if vectorized
                else Sort(operator, query.order_by, cost)
            )
        if query.limit is not None:
            operator = (
                BatchLimit(operator, query.limit, cost)
                if vectorized
                else Limit(operator, query.limit, cost)
            )
        return operator

    # ------------------------------------------------------------------

    def _plan_scan(
        self,
        table_name: str,
        conjuncts: list[Expression],
        cost: CostCounters,
        columnar: bool = False,
    ) -> tuple[PhysicalOperator | VectorOperator, list[Expression]]:
        """Choose the access path for one table and push its conjuncts."""
        table = self.catalog.table(table_name)
        table_columns = set(table.schema)
        if self.config.predicate_pushdown:
            local = [c for c in conjuncts if c.columns() <= table_columns]
            remaining = [c for c in conjuncts if c not in local]
        else:
            local, remaining = [], list(conjuncts)

        operator: PhysicalOperator | VectorOperator | None = None
        if self.config.use_indexes:
            for conjunct in local:
                if (
                    isinstance(conjunct, Comparison)
                    and conjunct.is_equality_on_column
                    and table.has_index(conjunct.left.name)  # type: ignore[union-attr]
                ):
                    scan_type = ColumnarIndexScan if columnar else IndexScan
                    operator = scan_type(
                        table,
                        conjunct.left.name,  # type: ignore[union-attr]
                        cost,
                        value=conjunct.right.value,  # type: ignore[union-attr]
                    )
                    local = [c for c in local if c is not conjunct]
                    break
        if operator is None:
            if columnar:
                # Push the table-local predicate into the scan itself:
                # the fused scan only materializes untouched columns
                # for surviving positions (see ColumnarScan).
                operator = ColumnarScan(
                    table,
                    cost,
                    batch_size=self.config.batch_size,
                    predicate=conjoin(local),
                )
                local = []
            else:
                operator = SeqScan(table, cost)
        residual = conjoin(local)
        if residual is not None:
            operator = (
                BatchFilter(operator, residual, cost)
                if columnar
                else Filter(operator, residual, cost)
            )
        return operator, remaining

    def _plan_join(
        self,
        outer: PhysicalOperator | VectorOperator,
        inner: PhysicalOperator | VectorOperator,
        join: JoinSpec,
        cost: CostCounters,
    ) -> PhysicalOperator | VectorOperator:
        """Pick the join algorithm per configuration and statistics."""
        if join.left_column not in outer.schema:
            raise EngineError(
                f"join column {join.left_column!r} not in left schema "
                f"{outer.schema}"
            )
        if join.right_column not in inner.schema:
            raise EngineError(
                f"join column {join.right_column!r} not in right schema "
                f"{inner.schema}"
            )
        algorithm = self.config.join_algorithm
        if algorithm == "auto":
            if isinstance(outer, VectorOperator) and isinstance(
                inner, VectorOperator
            ):
                # In the columnar layout the batch hash join IS the
                # vectorized choice; its output order matches nested-loop
                # exactly, so the row oracle still holds.
                algorithm = "hash"
            else:
                inner_rows = self._estimate_rows(inner)
                algorithm = (
                    "nested_loop"
                    if inner_rows <= self.config.nested_loop_threshold
                    else "hash"
                )
        if algorithm == "hash" and (
            isinstance(outer, VectorOperator)
            and isinstance(inner, VectorOperator)
        ):
            return BatchHashJoin(
                outer, inner, join.left_column, join.right_column, cost
            )
        # Merge and nested-loop joins (and mixed-layout inputs) run the
        # row algorithms; vector inputs are adapted at the boundary.
        outer = self._as_row(outer, cost)
        inner = self._as_row(inner, cost)
        if algorithm == "hash":
            return HashJoin(outer, inner, join.left_column, join.right_column, cost)
        if algorithm == "merge":
            return MergeJoin(outer, inner, join.left_column, join.right_column, cost)
        return NestedLoopJoin(outer, inner, join.left_column, join.right_column, cost)

    @staticmethod
    def _as_row(
        operator: PhysicalOperator | VectorOperator, cost: CostCounters
    ) -> PhysicalOperator:
        if isinstance(operator, VectorOperator):
            return RowAdapter(operator, cost)
        return operator

    def _estimate_rows(
        self, operator: PhysicalOperator | VectorOperator
    ) -> int:
        """Cardinality estimate from catalog statistics (scans only)."""
        if isinstance(operator, (SeqScan, ColumnarScan)):
            return len(operator.table)
        if isinstance(operator, (IndexScan, ColumnarIndexScan)):
            # Equality on an index: assume high selectivity.
            return max(1, len(operator.table) // 100)
        if isinstance(operator, (Filter, BatchFilter)):
            return max(1, self._estimate_rows(operator.child) // 3)
        if isinstance(operator, RowAdapter):
            return self._estimate_rows(operator.child)
        return 1 << 30  # unknown: assume large

    def query(self, table: str) -> "QueryBuilder":
        """Start a fluent query against this planner's catalog."""
        return QueryBuilder(table)


class QueryBuilder:
    """Fluent construction of :class:`Query` objects.

    Example::

        query = (QueryBuilder("orders")
                 .join("products", "product_id", "product_id")
                 .where(col("quantity") >= lit(2))
                 .group_by("category")
                 .aggregate("sum", "quantity", "total")
                 .build())
    """

    def __init__(self, table: str) -> None:
        self._query = Query(table=table)

    def join(
        self, table: str, left_column: str, right_column: str
    ) -> "QueryBuilder":
        self._query.joins.append(JoinSpec(table, left_column, right_column))
        return self

    def where(self, predicate: Expression) -> "QueryBuilder":
        if self._query.predicate is None:
            self._query.predicate = predicate
        else:
            self._query.predicate = self._query.predicate & predicate
        return self

    def group_by(self, *columns: str) -> "QueryBuilder":
        self._query.group_by.extend(columns)
        return self

    def aggregate(
        self, function: str, column: str | None = None, alias: str | None = None
    ) -> "QueryBuilder":
        name = alias or (f"{function}_{column}" if column else function)
        self._query.aggregates.append(Aggregate(function, column, name))
        return self

    def select(self, *columns: str | tuple[str, Expression]) -> "QueryBuilder":
        for entry in columns:
            if isinstance(entry, str):
                self._query.projection.append((entry, col(entry)))
            else:
                self._query.projection.append(entry)
        return self

    def order_by(self, column: str, descending: bool = False) -> "QueryBuilder":
        self._query.order_by.append((column, descending))
        return self

    def limit(self, count: int) -> "QueryBuilder":
        self._query.limit = count
        return self

    def build(self) -> Query:
        return self._query
