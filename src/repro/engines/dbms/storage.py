"""Storage layer of the relational engine: heap tables and indexes.

Two layouts share one logical table.  :class:`HeapTable` is the
row-major store all mutations go through; :meth:`HeapTable.columnar`
derives a cached :class:`ColumnarTable` — a column-major snapshot with
typed arrays where a column is homogeneous — that the vectorized
operators in :mod:`repro.engines.dbms.vector_plans` scan batch-at-a-
time.  The snapshot is invalidated by a table version counter, so the
columnar view is always consistent with the heap without paying the
rebuild on every query.
"""

from __future__ import annotations

import array as _array
import bisect
from collections.abc import Iterable, Iterator, Sequence
from typing import Any

from repro.core.errors import EngineError

Row = tuple


class SortedIndex:
    """A secondary index: sorted (value, row_id) entries with binary search.

    The pure-Python stand-in for a B-tree — O(log n) point lookups and
    ordered range scans, which is all the planner needs to make realistic
    index-vs-scan decisions.  Entries are kept as ``(type_rank, value,
    row_id)`` so mixed-type columns (ints and strings) stay totally
    ordered.
    """

    def __init__(self, column: str) -> None:
        self.column = column
        self._entries: list[tuple[int, Any, int]] = []

    def __len__(self) -> int:
        return len(self._entries)

    def build(self, values: Iterable[tuple[Any, int]]) -> None:
        """Bulk-build from (value, row_id) pairs."""
        self._entries = sorted(
            (_type_rank(value), value, row_id) for value, row_id in values
        )

    def insert(self, value: Any, row_id: int) -> None:
        bisect.insort(self._entries, (_type_rank(value), value, row_id))

    def remove(self, value: Any, row_id: int) -> None:
        position = bisect.bisect_left(
            self._entries, (_type_rank(value), value, row_id)
        )
        if (
            position < len(self._entries)
            and self._entries[position] == (_type_rank(value), value, row_id)
        ):
            del self._entries[position]

    def lookup(self, value: Any) -> list[int]:
        """Row ids whose indexed value equals ``value``."""
        rank = _type_rank(value)
        start = bisect.bisect_left(self._entries, (rank, value, -1))
        row_ids: list[int] = []
        for position in range(start, len(self._entries)):
            entry_rank, entry_value, row_id = self._entries[position]
            if (entry_rank, entry_value) != (rank, value):
                break
            row_ids.append(row_id)
        return row_ids

    def range_scan(self, low: Any = None, high: Any = None) -> list[int]:
        """Row ids with low <= value <= high (either bound optional)."""
        start = 0
        if low is not None:
            start = bisect.bisect_left(self._entries, (_type_rank(low), low, -1))
        end = len(self._entries)
        if high is not None:
            end = bisect.bisect_right(
                self._entries, (_type_rank(high), high, float("inf"))
            )
        return [row_id for _, _, row_id in self._entries[start:end]]


def _type_rank(value: Any) -> int:
    """Keep heterogenous index keys sortable (numbers before strings)."""
    if isinstance(value, bool):
        return 1
    if isinstance(value, (int, float)):
        return 0
    return 1


class HeapTable:
    """An append-oriented in-memory table with optional secondary indexes.

    Deleted rows are tombstoned (set to ``None``) so row ids stay stable
    for the indexes; :meth:`compact` rebuilds storage when fragmentation
    grows.
    """

    def __init__(self, name: str, schema: Sequence[str]) -> None:
        if not schema:
            raise EngineError(f"table {name!r} needs at least one column")
        if len(set(schema)) != len(schema):
            raise EngineError(f"table {name!r} has duplicate column names")
        self.name = name
        self.schema = tuple(schema)
        self._layout = {column: index for index, column in enumerate(self.schema)}
        self._rows: list[Row | None] = []
        self._live_count = 0
        self.indexes: dict[str, SortedIndex] = {}
        self._version = 0
        self._columnar_cache: tuple[int, "ColumnarTable"] | None = None

    # ------------------------------------------------------------------
    # Schema helpers
    # ------------------------------------------------------------------

    @property
    def layout(self) -> dict[str, int]:
        return dict(self._layout)

    def column_position(self, column: str) -> int:
        try:
            return self._layout[column]
        except KeyError:
            raise EngineError(
                f"table {self.name!r} has no column {column!r}; "
                f"columns: {self.schema}"
            ) from None

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def insert(self, row: Sequence[Any]) -> int:
        """Append one row; returns its row id."""
        if len(row) != len(self.schema):
            raise EngineError(
                f"table {self.name!r} expects {len(self.schema)} values, "
                f"got {len(row)}"
            )
        row_tuple = tuple(row)
        row_id = len(self._rows)
        self._rows.append(row_tuple)
        self._live_count += 1
        self._version += 1
        for column, index in self.indexes.items():
            index.insert(row_tuple[self._layout[column]], row_id)
        return row_id

    def insert_many(self, rows: Iterable[Sequence[Any]]) -> int:
        """Bulk insert; returns the number of rows inserted."""
        count = 0
        for row in rows:
            self.insert(row)
            count += 1
        return count

    def delete_row(self, row_id: int) -> None:
        row = self._row_or_raise(row_id)
        for column, index in self.indexes.items():
            index.remove(row[self._layout[column]], row_id)
        self._rows[row_id] = None
        self._live_count -= 1
        self._version += 1

    def update_row(self, row_id: int, updates: dict[str, Any]) -> Row:
        """Update columns of one row in place; returns the new row."""
        row = list(self._row_or_raise(row_id))
        for column, value in updates.items():
            position = self.column_position(column)
            old_value = row[position]
            if column in self.indexes:
                self.indexes[column].remove(old_value, row_id)
                self.indexes[column].insert(value, row_id)
            row[position] = value
        new_row = tuple(row)
        self._rows[row_id] = new_row
        self._version += 1
        return new_row

    def _row_or_raise(self, row_id: int) -> Row:
        if not 0 <= row_id < len(self._rows) or self._rows[row_id] is None:
            raise EngineError(f"table {self.name!r} has no live row {row_id}")
        row = self._rows[row_id]
        assert row is not None
        return row

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------

    def scan(self) -> Iterator[Row]:
        """Yield every live row."""
        for row in self._rows:
            if row is not None:
                yield row

    def fetch(self, row_id: int) -> Row:
        return self._row_or_raise(row_id)

    def fetch_many(self, row_ids: Iterable[int]) -> list[Row]:
        return [self._row_or_raise(row_id) for row_id in row_ids]

    def __len__(self) -> int:
        return self._live_count

    # ------------------------------------------------------------------
    # Indexing & maintenance
    # ------------------------------------------------------------------

    def create_index(self, column: str) -> SortedIndex:
        """Build a secondary index on ``column``."""
        if column in self.indexes:
            raise EngineError(
                f"table {self.name!r} already has an index on {column!r}"
            )
        position = self.column_position(column)
        index = SortedIndex(column)
        index.build(
            (row[position], row_id)
            for row_id, row in enumerate(self._rows)
            if row is not None
        )
        self.indexes[column] = index
        return index

    def has_index(self, column: str) -> bool:
        return column in self.indexes

    def compact(self) -> int:
        """Drop tombstones and rebuild indexes; returns reclaimed slots."""
        reclaimed = len(self._rows) - self._live_count
        self._rows = [row for row in self._rows if row is not None]
        self._version += 1
        for column in list(self.indexes):
            position = self._layout[column]
            index = SortedIndex(column)
            index.build(
                (row[position], row_id) for row_id, row in enumerate(self._rows)
            )
            self.indexes[column] = index
        return reclaimed

    # ------------------------------------------------------------------
    # Columnar view
    # ------------------------------------------------------------------

    @property
    def version(self) -> int:
        """Monotonic mutation counter (columnar cache invalidation)."""
        return self._version

    def columnar(self) -> "ColumnarTable":
        """The column-major view of this table, rebuilt only on mutation."""
        if (
            self._columnar_cache is not None
            and self._columnar_cache[0] == self._version
        ):
            return self._columnar_cache[1]
        view = ColumnarTable.from_heap(self)
        self._columnar_cache = (self._version, view)
        return view


class ColumnarTable:
    """A column-major snapshot of a heap table.

    Each column is a typed ``array.array`` when every value shares one
    numeric type (``'q'`` for ints, ``'d'`` for floats — bools are
    deliberately left in plain lists so ``True`` survives round-trips
    bit-identically), and a plain list otherwise.  ``row_ids`` maps each
    position back to its heap row id, which lets the shared
    :class:`SortedIndex` (built over heap row ids) drive positional
    gathers on the columnar view.
    """

    def __init__(
        self,
        name: str,
        schema: Sequence[str],
        columns: dict[str, Sequence[Any]],
        row_ids: Sequence[int],
    ) -> None:
        self.name = name
        self.schema = tuple(schema)
        self.columns = columns
        self.row_ids = list(row_ids)
        self.num_rows = len(self.row_ids)
        self._position_of = {
            row_id: position for position, row_id in enumerate(self.row_ids)
        }

    @classmethod
    def from_heap(cls, table: HeapTable) -> "ColumnarTable":
        """Transpose a heap table's live rows into typed column arrays."""
        row_ids = [
            row_id
            for row_id, row in enumerate(table._rows)
            if row is not None
        ]
        live = [table._rows[row_id] for row_id in row_ids]
        columns: dict[str, Sequence[Any]] = {}
        if live:
            transposed = list(zip(*live))
        else:
            transposed = [() for _ in table.schema]
        for column, values in zip(table.schema, transposed):
            columns[column] = _pack_column(list(values))
        return cls(table.name, table.schema, columns, row_ids)

    def column(self, name: str) -> Sequence[Any]:
        try:
            return self.columns[name]
        except KeyError:
            raise EngineError(
                f"table {self.name!r} has no column {name!r}; "
                f"columns: {self.schema}"
            ) from None

    def positions_for(self, row_ids: Iterable[int]) -> list[int]:
        """Columnar positions of heap row ids (index lookups → gathers)."""
        return [
            self._position_of[row_id]
            for row_id in row_ids
            if row_id in self._position_of
        ]

    def __len__(self) -> int:
        return self.num_rows


def _pack_column(values: list[Any]) -> Sequence[Any]:
    """Pick the tightest storage for one column's values.

    Typed arrays only when the whole column is one non-bool numeric
    type: ``array('q')`` round-trips ints exactly and ``array('d')``
    floats, while a mixed or bool-carrying column stays a plain list so
    every value (including ``True``/``None``/strings) reads back
    bit-identical to the heap row.
    """
    if not values:
        return values
    if all(type(value) is int for value in values):
        try:
            return _array.array("q", values)
        except OverflowError:
            return values
    if all(type(value) is float for value in values):
        return _array.array("d", values)
    return values
