"""The relational engine's public API.

:class:`DbmsEngine` is the substitute for the parallel DBMSs the paper's
surveyed benchmarks target (DBMS-X, Vertica, Teradata Aster): DDL, DML,
and logical queries planned through the rule-based planner, all reporting
uniform cost counters.
"""

from __future__ import annotations

import time
from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field
from typing import Any

from repro.core.errors import EngineError
from repro.datagen.base import DataSet, DataType
from repro.engines.base import CostCounters, Engine, EngineInfo
from repro.engines.dbms.catalog import Catalog, TableStats
from repro.engines.dbms.expressions import Expression
from repro.engines.dbms.planner import Planner, PlannerConfig, Query, QueryBuilder
from repro.engines.dbms.storage import HeapTable
from repro.engines.dbms.vector_plans import VectorOperator
from repro.observability import trace_span


@dataclass
class QueryResult:
    """Rows plus evidence from one query execution."""

    rows: list[tuple]
    schema: tuple[str, ...]
    plan: dict[str, Any]
    wall_seconds: float
    cost: CostCounters = field(default_factory=CostCounters)

    def __len__(self) -> int:
        return len(self.rows)

    def column(self, name: str) -> list[Any]:
        """All values of one output column."""
        try:
            position = self.schema.index(name)
        except ValueError:
            raise EngineError(
                f"result has no column {name!r}; columns: {self.schema}"
            ) from None
        return [row[position] for row in self.rows]

    def as_dicts(self) -> list[dict[str, Any]]:
        return [dict(zip(self.schema, row)) for row in self.rows]


class DbmsEngine(Engine):
    """An in-memory relational database with a rule-based planner."""

    def __init__(self, planner_config: PlannerConfig | None = None) -> None:
        super().__init__()
        self.catalog = Catalog()
        self.planner = Planner(self.catalog, planner_config)

    @property
    def info(self) -> EngineInfo:
        return EngineInfo(
            name="dbms",
            system_type="DBMS",
            software_stack="relational DBMS (parallel-DBMS substitute)",
            input_format="records",
            description=(
                "heap tables, secondary indexes, rule-based planner with "
                "pushdown, join selection, and row/columnar layouts"
            ),
        )

    @property
    def execution_layout(self) -> str:
        """The configured default layout (row | columnar)."""
        return self.planner.config.layout

    # ------------------------------------------------------------------
    # DDL / DML
    # ------------------------------------------------------------------

    def create_table(self, name: str, schema: Sequence[str]) -> HeapTable:
        return self.catalog.create_table(name, tuple(schema))

    def drop_table(self, name: str) -> None:
        self.catalog.drop_table(name)

    def create_index(self, table: str, column: str) -> None:
        self.catalog.table(table).create_index(column)

    def insert(self, table: str, rows: Iterable[Sequence[Any]]) -> int:
        """Bulk load rows; returns the number inserted."""
        count = self.catalog.table(table).insert_many(rows)
        self.counters.records_written += count
        return count

    def load_dataset(self, dataset: Any, table: str | None = None) -> str:
        """Create a table from a TABLE data set and load its rows.

        Accepts a materialized :class:`DataSet` or any dataset source;
        a streaming source is ingested batch by batch, so the engine
        never sees the whole record list at once.
        """
        if dataset.data_type is not DataType.TABLE:
            raise EngineError(
                f"can only load TABLE data sets, got {dataset.data_type.label}"
            )
        schema = dataset.metadata.get("schema")
        if schema is None:
            raise EngineError(f"data set {dataset.name!r} has no schema metadata")
        name = table or dataset.name.replace("-", "_")
        self.create_table(name, tuple(schema))
        if isinstance(dataset, DataSet):
            self.insert(name, dataset.records)
        else:
            for batch in dataset.batches():
                self.insert(name, batch.records)
        return name

    def update(
        self, table: str, predicate: Expression, updates: dict[str, Any]
    ) -> int:
        """Update all rows matching ``predicate``; returns the count."""
        heap = self.catalog.table(table)
        layout = heap.layout
        matching = [
            row_id
            for row_id, row in enumerate(heap._rows)  # noqa: SLF001 - engine-internal
            if row is not None and predicate.evaluate(row, layout)
        ]
        for row_id in matching:
            heap.update_row(row_id, updates)
        self.counters.records_written += len(matching)
        return len(matching)

    def delete(self, table: str, predicate: Expression) -> int:
        """Delete all rows matching ``predicate``; returns the count."""
        heap = self.catalog.table(table)
        layout = heap.layout
        matching = [
            row_id
            for row_id, row in enumerate(heap._rows)  # noqa: SLF001 - engine-internal
            if row is not None and predicate.evaluate(row, layout)
        ]
        for row_id in matching:
            heap.delete_row(row_id)
        self.counters.records_written += len(matching)
        return len(matching)

    # ------------------------------------------------------------------
    # Query
    # ------------------------------------------------------------------

    def query(self, table: str) -> QueryBuilder:
        """Start a fluent query."""
        return QueryBuilder(table)

    def execute(
        self, query: Query | QueryBuilder, layout: str | None = None
    ) -> QueryResult:
        """Plan and run a logical query.

        ``layout`` overrides the engine's configured execution layout
        (``row`` | ``columnar``) for this one query.
        """
        if isinstance(query, QueryBuilder):
            query = query.build()
        cost = CostCounters()
        started = time.perf_counter()
        plan = self.planner.plan(query, cost, layout=layout)
        effective = _plan_layout(plan)
        with trace_span("query", engine="dbms", layout=effective) as span:
            rows = list(plan.rows())
            if span:
                span.incr("batches", cost.batches)
                span.incr("records_read", cost.records_read)
        wall_seconds = time.perf_counter() - started
        self.counters.merge(cost)
        return QueryResult(
            rows=rows,
            schema=plan.schema,
            plan={"layout": effective, **plan.explain()},
            wall_seconds=wall_seconds,
            cost=cost,
        )

    def sql(self, text: str, layout: str | None = None) -> QueryResult:
        """Parse and execute one SELECT statement.

        The SQL front-end produces the same logical :class:`Query` the
        fluent builder does, so it shares the planner and operators.
        """
        from repro.engines.dbms.sql import parse_sql

        return self.execute(parse_sql(text), layout=layout)

    def explain(
        self, query: Query | QueryBuilder, layout: str | None = None
    ) -> dict[str, Any]:
        """The physical plan without executing it (layout included)."""
        if isinstance(query, QueryBuilder):
            query = query.build()
        plan = self.planner.plan(query, CostCounters(), layout=layout)
        return {"layout": _plan_layout(plan), **plan.explain()}

    def stats(self, table: str) -> TableStats:
        return self.catalog.stats(table)


def _plan_layout(plan: Any) -> str:
    """The layout a plan actually executes with.

    A query planned ``columnar`` whose root fell back to row operators
    (e.g. a merge join) honestly reports ``row`` — ``explain()`` and the
    trace must describe the path that ran, not the one requested.
    """
    return "columnar" if isinstance(plan, VectorOperator) else "row"
