"""A small SQL front-end for the relational engine.

Supports the SELECT dialect the paper's relational workloads need
(select / project / join / filter / group-by / aggregate / order / limit):

    SELECT category, SUM(quantity) AS total, COUNT(*) AS n
    FROM orders
    JOIN products ON orders.product_id = products.product_id
    WHERE quantity >= 2 AND day < 180
    GROUP BY category
    ORDER BY total DESC
    LIMIT 10

Grammar (informal)::

    query   := SELECT items FROM name join* [WHERE pred] [GROUP BY cols]
               [ORDER BY ord (',' ord)*] [LIMIT n]
    items   := '*' | item (',' item)*
    item    := expr [AS name] | AGG '(' (col | '*') ')' [AS name]
    join    := JOIN name ON qual '=' qual
    pred    := conj (OR conj)*
    conj    := cmp (AND cmp)*
    cmp     := ['NOT'] expr op expr | '(' pred ')'
    expr    := term (('+'|'-') term)*
    term    := factor (('*'|'/') factor)*
    factor  := number | string | qualified-or-bare column | '(' expr ')'

The parser produces a :class:`~repro.engines.dbms.planner.Query`, so SQL
text goes through exactly the same planner and physical operators as the
fluent builder.  Qualified names (``orders.product_id``) drop their
table prefix — the engine's join schema disambiguates duplicates with an
``_r`` suffix instead.
"""

from __future__ import annotations

import re
from typing import Any

from repro.core.errors import EngineError
from repro.engines.dbms.expressions import (
    Arithmetic,
    BooleanOp,
    Comparison,
    Expression,
    Literal,
    NotOp,
    col,
    lit,
)
from repro.engines.dbms.planner import JoinSpec, Query
from repro.engines.dbms.plans import Aggregate

_TOKEN_PATTERN = re.compile(
    r"""
    \s*(
        '(?:[^']|'')*'            # string literal
      | \d+\.\d+ | \.\d+ | \d+    # numbers
      | [A-Za-z_][A-Za-z_0-9]*(?:\.[A-Za-z_][A-Za-z_0-9]*)?  # names
      | <> | != | <= | >= | [=<>(),*+\-/]
    )
    """,
    re.VERBOSE,
)

_KEYWORDS = {
    "select", "from", "where", "group", "by", "order", "limit", "join",
    "on", "as", "and", "or", "not", "asc", "desc",
}

_AGGREGATES = {"count", "sum", "min", "max", "avg"}


class SqlSyntaxError(EngineError):
    """The SQL text could not be parsed."""


class _Tokens:
    """A token cursor with keyword-aware helpers."""

    def __init__(self, text: str) -> None:
        self.tokens: list[str] = []
        position = 0
        while position < len(text):
            match = _TOKEN_PATTERN.match(text, position)
            if match is None:
                remainder = text[position:].strip()
                if not remainder:
                    break
                raise SqlSyntaxError(
                    f"unexpected character at: {remainder[:20]!r}"
                )
            self.tokens.append(match.group(1))
            position = match.end()
        self.index = 0

    def peek(self) -> str | None:
        if self.index < len(self.tokens):
            return self.tokens[self.index]
        return None

    def next(self) -> str:
        token = self.peek()
        if token is None:
            raise SqlSyntaxError("unexpected end of query")
        self.index += 1
        return token

    def accept_keyword(self, *keywords: str) -> bool:
        """Consume the next tokens if they match the keyword sequence."""
        saved = self.index
        for keyword in keywords:
            token = self.peek()
            if token is None or token.lower() != keyword:
                self.index = saved
                return False
            self.index += 1
        return True

    def expect_keyword(self, *keywords: str) -> None:
        if not self.accept_keyword(*keywords):
            raise SqlSyntaxError(
                f"expected {' '.join(keywords).upper()!r} near "
                f"{self.peek()!r}"
            )

    def accept(self, symbol: str) -> bool:
        if self.peek() == symbol:
            self.index += 1
            return True
        return False

    def expect(self, symbol: str) -> None:
        token = self.next()
        if token != symbol:
            raise SqlSyntaxError(f"expected {symbol!r}, got {token!r}")

    def at_keyword(self, keyword: str) -> bool:
        token = self.peek()
        return token is not None and token.lower() == keyword

    def done(self) -> bool:
        return self.index >= len(self.tokens)


def _bare_name(name: str) -> str:
    """Strip a table qualifier: orders.product_id → product_id."""
    return name.rsplit(".", 1)[-1]


def _is_name(token: str) -> bool:
    return bool(re.fullmatch(r"[A-Za-z_][A-Za-z_0-9.]*", token)) and (
        token.lower() not in _KEYWORDS
    )


class SqlParser:
    """Parses one SELECT statement into a logical :class:`Query`."""

    def __init__(self, text: str) -> None:
        self.tokens = _Tokens(text)

    def parse(self) -> Query:
        self.tokens.expect_keyword("select")
        items = self._parse_select_items()
        self.tokens.expect_keyword("from")
        table = self._parse_name()
        query = Query(table=table)

        while self.tokens.accept_keyword("join"):
            inner = self._parse_name()
            self.tokens.expect_keyword("on")
            left = _bare_name(self._parse_name())
            self.tokens.expect("=")
            right = _bare_name(self._parse_name())
            query.joins.append(JoinSpec(inner, left, right))

        if self.tokens.accept_keyword("where"):
            query.predicate = self._parse_predicate()

        if self.tokens.accept_keyword("group", "by"):
            query.group_by.append(_bare_name(self._parse_name()))
            while self.tokens.accept(","):
                query.group_by.append(_bare_name(self._parse_name()))

        if self.tokens.accept_keyword("order", "by"):
            query.order_by.append(self._parse_order_key())
            while self.tokens.accept(","):
                query.order_by.append(self._parse_order_key())

        if self.tokens.accept_keyword("limit"):
            token = self.tokens.next()
            try:
                query.limit = int(token)
            except ValueError:
                raise SqlSyntaxError(f"LIMIT expects an integer, got {token!r}")

        if not self.tokens.done():
            raise SqlSyntaxError(
                f"trailing tokens after query: {self.tokens.peek()!r}"
            )

        self._apply_select_items(query, items)
        return query

    def _parse_order_key(self) -> tuple[str, bool]:
        column = _bare_name(self._parse_name())
        if self.tokens.accept_keyword("desc"):
            return column, True
        self.tokens.accept_keyword("asc")
        return column, False

    # ------------------------------------------------------------------
    # SELECT list
    # ------------------------------------------------------------------

    def _parse_select_items(self) -> list[tuple[str, Any]]:
        """Each item is ('*', None), ('agg', Aggregate) or ('expr',
        (alias, Expression))."""
        items: list[tuple[str, Any]] = []
        if self.tokens.accept("*"):
            return [("*", None)]
        items.append(self._parse_select_item())
        while self.tokens.accept(","):
            items.append(self._parse_select_item())
        return items

    def _parse_select_item(self) -> tuple[str, Any]:
        token = self.tokens.peek()
        if token is not None and token.lower() in _AGGREGATES:
            saved = self.tokens.index
            function = self.tokens.next().lower()
            if self.tokens.accept("("):
                if self.tokens.accept("*"):
                    column = None
                else:
                    column = _bare_name(self._parse_name())
                self.tokens.expect(")")
                alias = self._parse_optional_alias() or (
                    function if column is None else f"{function}_{column}"
                )
                return ("agg", Aggregate(function, column, alias))
            self.tokens.index = saved  # a column that shadows an agg name
        expression = self._parse_expression()
        alias = self._parse_optional_alias()
        if alias is None:
            if hasattr(expression, "name"):
                alias = expression.name  # plain column reference
            else:
                alias = f"expr_{id(expression) % 1000}"
        return ("expr", (alias, expression))

    def _parse_optional_alias(self) -> str | None:
        if self.tokens.accept_keyword("as"):
            return _bare_name(self._parse_name())
        return None

    def _apply_select_items(
        self, query: Query, items: list[tuple[str, Any]]
    ) -> None:
        if items == [("*", None)]:
            return  # no projection: full schema
        aggregates = [item for kind, item in items if kind == "agg"]
        expressions = [item for kind, item in items if kind == "expr"]
        if aggregates:
            query.aggregates.extend(aggregates)
            # Plain columns next to aggregates must be grouping keys.
            for alias, expression in expressions:
                name = getattr(expression, "name", None)
                if name is None:
                    raise SqlSyntaxError(
                        "only plain columns may accompany aggregates"
                    )
                if name not in query.group_by:
                    raise SqlSyntaxError(
                        f"column {name!r} must appear in GROUP BY"
                    )
        else:
            query.projection.extend(expressions)

    # ------------------------------------------------------------------
    # Predicates and expressions
    # ------------------------------------------------------------------

    def _parse_predicate(self) -> Expression:
        left = self._parse_conjunction()
        while self.tokens.accept_keyword("or"):
            left = BooleanOp("or", left, self._parse_conjunction())
        return left

    def _parse_conjunction(self) -> Expression:
        left = self._parse_condition()
        while self.tokens.accept_keyword("and"):
            left = BooleanOp("and", left, self._parse_condition())
        return left

    def _parse_condition(self) -> Expression:
        if self.tokens.accept_keyword("not"):
            return NotOp(self._parse_condition())
        saved = self.tokens.index
        if self.tokens.accept("("):
            # Could be a parenthesised predicate or expression; try
            # predicate first.
            try:
                inner = self._parse_predicate()
                self.tokens.expect(")")
                return inner
            except SqlSyntaxError:
                self.tokens.index = saved
        left = self._parse_expression()
        operator = self.tokens.next()
        if operator == "<>":
            operator = "!="
        if operator not in ("=", "!=", "<", "<=", ">", ">="):
            raise SqlSyntaxError(f"expected a comparison, got {operator!r}")
        right = self._parse_expression()
        return Comparison(left, operator, right)

    def _parse_expression(self) -> Expression:
        left = self._parse_term()
        while True:
            if self.tokens.accept("+"):
                left = Arithmetic(left, "+", self._parse_term())
            elif self.tokens.accept("-"):
                left = Arithmetic(left, "-", self._parse_term())
            else:
                return left

    def _parse_term(self) -> Expression:
        left = self._parse_factor()
        while True:
            if self.tokens.accept("*"):
                left = Arithmetic(left, "*", self._parse_factor())
            elif self.tokens.accept("/"):
                left = Arithmetic(left, "/", self._parse_factor())
            else:
                return left

    def _parse_factor(self) -> Expression:
        token = self.tokens.peek()
        if token is None:
            raise SqlSyntaxError("unexpected end of expression")
        if token == "-":
            # Unary minus: parse the operand and negate it.
            self.tokens.next()
            operand = self._parse_factor()
            if isinstance(operand, Literal):
                return lit(-operand.value)
            return Arithmetic(lit(0), "-", operand)
        if token == "(":
            self.tokens.next()
            inner = self._parse_expression()
            self.tokens.expect(")")
            return inner
        if token.startswith("'"):
            self.tokens.next()
            return lit(token[1:-1].replace("''", "'"))
        if re.fullmatch(r"\d+", token):
            self.tokens.next()
            return lit(int(token))
        if re.fullmatch(r"\d*\.\d+|\d+\.\d*", token):
            self.tokens.next()
            return lit(float(token))
        if _is_name(token):
            self.tokens.next()
            return col(_bare_name(token))
        raise SqlSyntaxError(f"unexpected token {token!r} in expression")

    def _parse_name(self) -> str:
        token = self.tokens.next()
        if not _is_name(token):
            raise SqlSyntaxError(f"expected a name, got {token!r}")
        return token


def parse_sql(text: str) -> Query:
    """Parse one SELECT statement into a logical query."""
    return SqlParser(text).parse()
