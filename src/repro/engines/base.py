"""Engine (substrate) base classes.

The paper's *system view* (Section 2.2) requires that one abstract test be
implementable over different systems and software stacks.  Every substrate
in :mod:`repro.engines` therefore implements this small common surface:

* a name and a declared software-stack label (used by Table 2),
* :class:`CostCounters` — uniform cost accounting that the architecture
  metrics (Section 3.1's MIPS/MFLOPS analogues) are computed from.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass


@dataclass
class CostCounters:
    """Uniform cost accounting across all engines.

    ``compute_ops`` counts abstract record-processing operations (the
    simulator's stand-in for retired instructions); architecture metrics
    divide it by elapsed time.
    """

    records_read: int = 0
    records_written: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    compute_ops: int = 0
    network_bytes: int = 0
    #: Column batches materialized by vectorized operators (0 on row paths).
    batches: int = 0

    def merge(self, other: "CostCounters") -> "CostCounters":
        """Accumulate another counter set into this one (returns self)."""
        self.records_read += other.records_read
        self.records_written += other.records_written
        self.bytes_read += other.bytes_read
        self.bytes_written += other.bytes_written
        self.compute_ops += other.compute_ops
        self.network_bytes += other.network_bytes
        self.batches += other.batches
        return self

    def snapshot(self) -> dict[str, int]:
        """A plain-dict copy for reports."""
        return {
            "records_read": self.records_read,
            "records_written": self.records_written,
            "bytes_read": self.bytes_read,
            "bytes_written": self.bytes_written,
            "compute_ops": self.compute_ops,
            "network_bytes": self.network_bytes,
            "batches": self.batches,
        }

    def reset(self) -> None:
        self.records_read = 0
        self.records_written = 0
        self.bytes_read = 0
        self.bytes_written = 0
        self.compute_ops = 0
        self.network_bytes = 0
        self.batches = 0


@dataclass
class EngineInfo:
    """Descriptive metadata every engine reports (feeds Table 2)."""

    name: str
    system_type: str  # e.g. "MapReduce", "DBMS", "NoSQL", "Streaming"
    software_stack: str  # e.g. "Hadoop-like", "relational DBMS"
    input_format: str  # the repro.datagen.formats name this engine consumes
    description: str = ""


class Engine(ABC):
    """Base class for all execution substrates."""

    def __init__(self) -> None:
        self.counters = CostCounters()

    @property
    @abstractmethod
    def info(self) -> EngineInfo:
        """Static metadata about this engine."""

    @property
    def name(self) -> str:
        return self.info.name

    def reset_counters(self) -> None:
        self.counters.reset()


@dataclass
class SimulatedClusterSpec:
    """Parameters of the simulated distributed cluster behind an engine.

    Used to convert measured per-task costs into the makespan an N-node
    cluster would achieve — the honest single-host stand-in for the
    distributed testbeds the surveyed benchmarks assume.

    ``node_speed_factors`` models a heterogeneous cluster (1.0 = nominal
    speed; 0.25 = a 4×-slow straggler node); ``speculative_execution``
    enables MapReduce-style backup tasks that re-run straggling work on
    the fastest node.
    """

    num_nodes: int = 4
    slots_per_node: int = 2
    #: Seconds of simulated compute per record processed.
    seconds_per_record: float = 1e-6
    #: Simulated network bandwidth in bytes/second (shuffle, replication).
    network_bytes_per_second: float = 100e6
    #: Per-node speed multipliers; None means a homogeneous cluster.
    node_speed_factors: tuple[float, ...] | None = None
    #: Launch backup copies of straggling tasks (Dean & Ghemawat's fix).
    speculative_execution: bool = False
    #: A task is a straggler if it finishes later than this multiple of
    #: the median task completion time.
    straggler_threshold: float = 1.5

    def __post_init__(self) -> None:
        if self.node_speed_factors is not None:
            if len(self.node_speed_factors) != self.num_nodes:
                raise ValueError(
                    f"need {self.num_nodes} node_speed_factors, got "
                    f"{len(self.node_speed_factors)}"
                )
            if any(factor <= 0 for factor in self.node_speed_factors):
                raise ValueError("node speed factors must be positive")

    @property
    def total_slots(self) -> int:
        return self.num_nodes * self.slots_per_node

    def slot_speeds(self) -> list[float]:
        """One speed factor per slot (nodes contribute all their slots)."""
        factors = self.node_speed_factors or tuple(
            1.0 for _ in range(self.num_nodes)
        )
        speeds: list[float] = []
        for factor in factors:
            speeds.extend([factor] * self.slots_per_node)
        return speeds


def schedule_heterogeneous(
    task_costs: list[float],
    slot_speeds: list[float],
    speculative_execution: bool = False,
    straggler_threshold: float = 1.5,
) -> float:
    """Makespan of independent tasks on slots whose speeds the scheduler
    does NOT know in advance.

    Stragglers in MapReduce clusters are *unexpected* (a node with a bad
    disk runs tasks slowly after they were assigned), so tasks are
    placed by LPT assuming equal speeds; the actual slot speed then
    stretches each slot's work.  With ``speculative_execution``, any task
    finishing later than ``straggler_threshold`` × the median completion
    gets a backup copy launched on the fastest slot at the median
    completion time; the earlier copy wins — the MapReduce backup-task
    mechanism as a closed-form approximation.
    """
    if not slot_speeds:
        raise ValueError("need at least one slot")
    if any(speed <= 0 for speed in slot_speeds):
        raise ValueError("slot speeds must be positive")
    if not task_costs:
        return 0.0
    # Oblivious LPT placement (scheduler assumes homogeneous slots).
    expected_load = [0.0] * len(slot_speeds)
    actual_elapsed = [0.0] * len(slot_speeds)
    completions: list[tuple[float, float]] = []  # (actual completion, cost)
    for cost in sorted(task_costs, reverse=True):
        slot = min(range(len(slot_speeds)), key=expected_load.__getitem__)
        expected_load[slot] += cost
        actual_elapsed[slot] += cost / slot_speeds[slot]
        completions.append((actual_elapsed[slot], cost))
    if not speculative_execution:
        return max(completion for completion, _ in completions)
    ordered = sorted(completion for completion, _ in completions)
    median = ordered[len(ordered) // 2]
    fastest = max(slot_speeds)
    effective = []
    for completion, cost in completions:
        if completion > straggler_threshold * median:
            backup = median + cost / fastest
            completion = min(completion, backup)
        effective.append(completion)
    return max(effective)


def schedule_lpt(task_costs: list[float], num_slots: int) -> float:
    """Longest-processing-time-first makespan for independent tasks.

    The classic greedy schedule used to model how a cluster runs a bag of
    map or reduce tasks on a fixed number of slots.
    """
    if num_slots <= 0:
        raise ValueError(f"num_slots must be positive, got {num_slots}")
    if not task_costs:
        return 0.0
    slots = [0.0] * min(num_slots, len(task_costs))
    for cost in sorted(task_costs, reverse=True):
        lightest = min(range(len(slots)), key=slots.__getitem__)
        slots[lightest] += cost
    return max(slots)
