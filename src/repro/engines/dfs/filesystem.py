"""A simulated distributed file system (the HDFS substitute).

BigDataBench's micro benchmarks include "CFS" (cloud file system)
workloads — basic DFS read/write operations.  This module provides the
substrate: a block-based namespace (namenode) over simulated datanodes
with R-way block replication, rack-aware-ish placement (round robin with
per-node load balancing), and a throughput/latency model so reads and
writes report simulated times the way the other engines do.

Data is held in memory; the simulation is in the *placement and cost
accounting*, which is what a file-system micro benchmark measures.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass, field

from repro.core.errors import EngineError
from repro.engines.base import Engine, EngineInfo


@dataclass
class BlockLocation:
    """One stored block replica."""

    block_id: int
    node_id: int
    data: bytes


@dataclass
class FileEntry:
    """Namespace entry: an ordered list of block ids plus size."""

    path: str
    block_ids: list[int] = field(default_factory=list)
    size: int = 0


@dataclass
class DfsOpReport:
    """Simulated outcome of one DFS operation."""

    ok: bool
    simulated_seconds: float
    bytes_moved: int = 0
    data: bytes | None = None


@dataclass
class DataNode:
    """One simulated storage node."""

    node_id: int
    capacity_bytes: int
    used_bytes: int = 0
    blocks: dict[int, bytes] = field(default_factory=dict)

    @property
    def free_bytes(self) -> int:
        return self.capacity_bytes - self.used_bytes

    def store(self, block_id: int, data: bytes) -> None:
        if len(data) > self.free_bytes:
            raise EngineError(
                f"datanode {self.node_id} is full "
                f"({self.free_bytes} bytes free, block needs {len(data)})"
            )
        self.blocks[block_id] = data
        self.used_bytes += len(data)

    def evict(self, block_id: int) -> None:
        data = self.blocks.pop(block_id, None)
        if data is not None:
            self.used_bytes -= len(data)


class DistributedFileSystem(Engine):
    """Block-based DFS with replication and a throughput model."""

    def __init__(
        self,
        num_nodes: int = 4,
        block_size: int = 4096,
        replication: int = 2,
        node_capacity: int = 64 * 1024 * 1024,
        disk_bytes_per_second: float = 200e6,
        network_bytes_per_second: float = 100e6,
        seek_seconds: float = 5e-3,
    ) -> None:
        super().__init__()
        if num_nodes <= 0:
            raise EngineError(f"num_nodes must be positive, got {num_nodes}")
        if block_size <= 0:
            raise EngineError(f"block_size must be positive, got {block_size}")
        if not 1 <= replication <= num_nodes:
            raise EngineError(
                f"replication must be in [1, {num_nodes}], got {replication}"
            )
        self.block_size = block_size
        self.replication = replication
        self.disk_bytes_per_second = disk_bytes_per_second
        self.network_bytes_per_second = network_bytes_per_second
        self.seek_seconds = seek_seconds
        self.nodes = [
            DataNode(node_id=i, capacity_bytes=node_capacity)
            for i in range(num_nodes)
        ]
        self._namespace: dict[str, FileEntry] = {}
        self._block_locations: dict[int, list[int]] = {}
        self._next_block_id = 0

    @property
    def info(self) -> EngineInfo:
        return EngineInfo(
            name="dfs",
            system_type="FileSystem",
            software_stack="distributed file system (HDFS substitute)",
            input_format="records",
            description=(
                "block-based namespace, R-way replication, balanced "
                "placement, disk/network throughput model"
            ),
        )

    # ------------------------------------------------------------------
    # Placement
    # ------------------------------------------------------------------

    def _choose_replica_nodes(self, size: int) -> list[DataNode]:
        """The R least-loaded nodes with room for the block."""
        candidates = sorted(self.nodes, key=lambda node: node.used_bytes)
        chosen = [node for node in candidates if node.free_bytes >= size]
        if len(chosen) < self.replication:
            raise EngineError(
                "insufficient DFS capacity for a new block "
                f"(need {self.replication} nodes with {size} bytes free)"
            )
        return chosen[: self.replication]

    # ------------------------------------------------------------------
    # Namespace operations
    # ------------------------------------------------------------------

    def _write_block(self, entry: FileEntry, block: bytes) -> float:
        """Place one block on R replicas; returns the simulated seconds."""
        block_id = self._next_block_id
        self._next_block_id += 1
        replicas = self._choose_replica_nodes(len(block))
        for node in replicas:
            node.store(block_id, block)
        self._block_locations[block_id] = [n.node_id for n in replicas]
        entry.block_ids.append(block_id)
        # Pipeline write: one disk write plus (R-1) network hops.
        simulated = self.seek_seconds
        simulated += len(block) / self.disk_bytes_per_second
        simulated += (
            (self.replication - 1) * len(block)
            / self.network_bytes_per_second
        )
        self.counters.network_bytes += (self.replication - 1) * len(block)
        return simulated

    def write_file(self, path: str, data: bytes) -> DfsOpReport:
        """Create (or overwrite) a file, splitting it into blocks."""
        return self.write_stream(path, (data,))

    def write_stream(self, path: str, chunks: Iterable[bytes]) -> DfsOpReport:
        """Create (or overwrite) a file from a stream of byte chunks.

        Blocks are cut and placed as the stream arrives, so peak memory
        is one block plus one chunk — never the whole file.  Chunk
        boundaries don't affect the stored blocks: the same bytes produce
        the same block layout whether written whole or chunked.
        """
        if path in self._namespace:
            self.delete_file(path)
        entry = FileEntry(path=path)
        simulated = 0.0
        total = 0
        buffer = bytearray()
        for chunk in chunks:
            buffer.extend(chunk)
            while len(buffer) >= self.block_size:
                block = bytes(buffer[: self.block_size])
                del buffer[: self.block_size]
                simulated += self._write_block(entry, block)
                total += len(block)
        if buffer or not entry.block_ids:
            # Flush the remainder; an empty stream still creates one
            # empty block, matching write_file(path, b"").
            block = bytes(buffer)
            simulated += self._write_block(entry, block)
            total += len(block)
        entry.size = total
        self._namespace[path] = entry
        self.counters.records_written += 1
        self.counters.bytes_written += total
        return DfsOpReport(
            ok=True, simulated_seconds=simulated, bytes_moved=total
        )

    def read_file(self, path: str) -> DfsOpReport:
        """Read a whole file, preferring the least-loaded replica."""
        entry = self._namespace.get(path)
        if entry is None:
            return DfsOpReport(ok=False, simulated_seconds=self.seek_seconds)
        chunks: list[bytes] = []
        simulated = 0.0
        for block_id in entry.block_ids:
            node_ids = self._block_locations[block_id]
            node = min(
                (self.nodes[node_id] for node_id in node_ids),
                key=lambda n: n.used_bytes,
            )
            block = node.blocks[block_id]
            chunks.append(block)
            simulated += self.seek_seconds
            simulated += len(block) / self.disk_bytes_per_second
        data = b"".join(chunks)
        self.counters.records_read += 1
        self.counters.bytes_read += len(data)
        return DfsOpReport(
            ok=True, simulated_seconds=simulated,
            bytes_moved=len(data), data=data,
        )

    def append(self, path: str, data: bytes) -> DfsOpReport:
        """Append to an existing file (new blocks only; no partial fill).

        Appends blocks directly — the file is never read back or
        rewritten, so appending costs O(appended), not O(file).  Reads
        concatenate blocks in order, so content is identical to a full
        rewrite (the last pre-append block may simply stay short).
        """
        entry = self._namespace.get(path)
        if entry is None:
            return self.write_file(path, data)
        simulated = 0.0
        for offset in range(0, max(len(data), 1), self.block_size):
            simulated += self._write_block(
                entry, data[offset : offset + self.block_size]
            )
        entry.size += len(data)
        self.counters.records_written += 1
        self.counters.bytes_written += len(data)
        return DfsOpReport(
            ok=True, simulated_seconds=simulated, bytes_moved=len(data)
        )

    def delete_file(self, path: str) -> DfsOpReport:
        entry = self._namespace.pop(path, None)
        if entry is None:
            return DfsOpReport(ok=False, simulated_seconds=self.seek_seconds)
        for block_id in entry.block_ids:
            for node_id in self._block_locations.pop(block_id, ()):
                self.nodes[node_id].evict(block_id)
        return DfsOpReport(ok=True, simulated_seconds=self.seek_seconds)

    def exists(self, path: str) -> bool:
        return path in self._namespace

    def list_files(self, prefix: str = "") -> list[str]:
        return sorted(
            path for path in self._namespace if path.startswith(prefix)
        )

    def file_size(self, path: str) -> int:
        entry = self._namespace.get(path)
        if entry is None:
            raise EngineError(f"no such file: {path!r}")
        return entry.size

    # ------------------------------------------------------------------
    # Fault injection & maintenance
    # ------------------------------------------------------------------

    def fail_node(self, node_id: int) -> int:
        """Simulate a datanode loss; returns blocks needing re-replication.

        Surviving replicas keep every file readable (as long as R ≥ 2);
        :meth:`re_replicate` restores the replication factor.
        """
        if not 0 <= node_id < len(self.nodes):
            raise EngineError(f"no such node: {node_id}")
        node = self.nodes[node_id]
        lost_blocks = list(node.blocks)
        for block_id in lost_blocks:
            node.evict(block_id)
            self._block_locations[block_id].remove(node_id)
        return len(lost_blocks)

    def under_replicated_blocks(self) -> list[int]:
        return [
            block_id
            for block_id, nodes in self._block_locations.items()
            if 0 < len(nodes) < self.replication
        ]

    def re_replicate(self) -> int:
        """Copy under-replicated blocks to healthy nodes; returns copies."""
        copies = 0
        for block_id in self.under_replicated_blocks():
            current = set(self._block_locations[block_id])
            source = self.nodes[next(iter(current))]
            data = source.blocks[block_id]
            candidates = sorted(
                (n for n in self.nodes
                 if n.node_id not in current and n.free_bytes >= len(data)),
                key=lambda n: n.used_bytes,
            )
            needed = self.replication - len(current)
            for node in candidates[:needed]:
                node.store(block_id, data)
                self._block_locations[block_id].append(node.node_id)
                self.counters.network_bytes += len(data)
                copies += 1
        return copies

    def lost_blocks(self) -> list[int]:
        """Blocks with zero live replicas (data loss)."""
        return [
            block_id
            for block_id, nodes in self._block_locations.items()
            if not nodes
        ]

    def utilization(self) -> list[float]:
        """Per-node storage utilisation in [0, 1]."""
        return [node.used_bytes / node.capacity_bytes for node in self.nodes]
