"""A simulated distributed file system (the HDFS substitute)."""

from repro.engines.dfs.filesystem import (
    BlockLocation,
    DataNode,
    DfsOpReport,
    DistributedFileSystem,
    FileEntry,
)

__all__ = [
    "BlockLocation",
    "DataNode",
    "DfsOpReport",
    "DistributedFileSystem",
    "FileEntry",
]
