"""Deterministic fault injection (the testable-failure substrate).

BigOP (Zhu et al., 2014) and the state-of-the-art survey both call for
benchmarking frameworks that stay meaningful when individual systems
misbehave.  Proving that requires misbehavior on demand: this module
wraps an engine (or a workload) so that executions fail, or stall, on a
*seeded, reproducible* schedule — raise-on-attempt, probabilistic
raises, and latency spikes — letting the retry and degradation paths of
:mod:`repro.execution.runner` be exercised end to end on every executor
backend.

Determinism is the design center.  Every injection decision is a pure
function of ``(spec.seed, task key, attempt, call)``:

* the *task key* and *attempt* come from the runner's retry loop via the
  thread-local :func:`fault_attempt` context (the process backend runs
  its retry loop inside the worker, so the context is always local);
* the *call* index counts injection points within one attempt (one per
  warmup/repeat execution).

Because the decision never depends on wall-clock time, thread
interleaving, or process identity, a faulty batch produces the same
failures, the same retry counts, and the same merged results on the
serial, thread, and process backends alike.
"""

from __future__ import annotations

import random
import threading
import time
from collections.abc import Iterator
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any

from repro.core.errors import EngineError
from repro.engines.base import Engine, EngineInfo


class InjectedFault(EngineError):
    """The failure a fault-injecting wrapper raises (retryable)."""


@dataclass(frozen=True)
class FaultDecision:
    """What one injection point should do."""

    fail: bool = False
    latency_seconds: float = 0.0


@dataclass(frozen=True)
class FaultSpec:
    """A seeded, reproducible failure schedule.

    * ``fail_attempts`` — attempt indices (0-based) that always raise;
      ``(0, 1)`` fails the first two tries and lets the third succeed,
      the canonical retry-path test.
    * ``fail_calls`` — call indices (0-based) that always raise: per
      attempt under the runner's retry loop, per wrapper instance when
      used standalone ("raise on the N-th call").
    * ``failure_rate`` — probability that any other injection point
      raises, decided by a seeded stream (deterministic per point).
    * ``latency_rate`` / ``latency_seconds`` — probability and size of
      an injected latency spike before the work runs.
    """

    seed: int = 0
    failure_rate: float = 0.0
    fail_attempts: tuple[int, ...] = ()
    fail_calls: tuple[int, ...] = ()
    latency_rate: float = 0.0
    latency_seconds: float = 0.0
    message: str = "injected fault"

    def __post_init__(self) -> None:
        if not 0.0 <= self.failure_rate <= 1.0:
            raise ValueError(
                f"failure_rate must be in [0, 1], got {self.failure_rate}"
            )
        if not 0.0 <= self.latency_rate <= 1.0:
            raise ValueError(
                f"latency_rate must be in [0, 1], got {self.latency_rate}"
            )
        if self.latency_seconds < 0:
            raise ValueError(
                f"latency_seconds must be non-negative, got "
                f"{self.latency_seconds}"
            )

    def decide(self, key: str, attempt: int, call: int) -> FaultDecision:
        """The (pure) decision for one injection point.

        ``random.Random`` seeds strings through SHA-512, so the decision
        stream is identical in every thread and process regardless of
        PYTHONHASHSEED.
        """
        fail = attempt in self.fail_attempts or call in self.fail_calls
        rng = random.Random(f"{self.seed}|{key}|{attempt}|{call}")
        if not fail and self.failure_rate:
            fail = rng.random() < self.failure_rate
        latency = 0.0
        if self.latency_rate and self.latency_seconds:
            if rng.random() < self.latency_rate:
                latency = self.latency_seconds
        return FaultDecision(fail=fail, latency_seconds=latency)


# ---------------------------------------------------------------------------
# The attempt context (set by the runner's retry loop)
# ---------------------------------------------------------------------------


class _AttemptState:
    """Task key + attempt index + per-attempt injection-call counter."""

    __slots__ = ("key", "attempt", "calls")

    def __init__(self, key: str, attempt: int) -> None:
        self.key = key
        self.attempt = attempt
        self.calls = 0

    def next_call(self) -> int:
        call = self.calls
        self.calls += 1
        return call


_context = threading.local()


@contextmanager
def fault_attempt(key: str, attempt: int) -> Iterator[None]:
    """Scope one retry attempt so injectors can key their decisions.

    The runner wraps every task attempt in this context *inside* the
    thread that executes it; injected wrappers read it back through
    :func:`current_fault_attempt`.  Nesting restores the outer state.
    """
    previous = getattr(_context, "state", None)
    _context.state = _AttemptState(key, attempt)
    try:
        yield
    finally:
        _context.state = previous


def current_fault_attempt() -> _AttemptState | None:
    """The attempt state of the innermost :func:`fault_attempt`, if any."""
    return getattr(_context, "state", None)


# ---------------------------------------------------------------------------
# The injector and its wrappers
# ---------------------------------------------------------------------------


class FaultInjector:
    """Applies a :class:`FaultSpec` at each injection point.

    Outside a retry context the injector keys decisions on its own
    monotonically increasing call counter (standalone "N-th call"
    semantics); inside one, on the runner-provided task key and attempt.
    """

    def __init__(self, spec: FaultSpec, default_key: str = "") -> None:
        self.spec = spec
        self.default_key = default_key
        self._calls = 0
        self.injected_failures = 0
        self.injected_latency_seconds = 0.0

    def inject(self, detail: str = "") -> float:
        """Raise or stall according to the spec (no-op otherwise).

        Returns the seconds stalled, so callers timing around the
        injection point can account for it (a self-timed workload would
        otherwise exclude the stall from its measured duration).
        """
        state = current_fault_attempt()
        if state is not None:
            key, attempt, call = state.key, state.attempt, state.next_call()
        else:
            key, attempt = self.default_key, 0
            call = self._calls
            self._calls += 1
        decision = self.spec.decide(key, attempt, call)
        if decision.latency_seconds > 0:
            self.injected_latency_seconds += decision.latency_seconds
            time.sleep(decision.latency_seconds)
        if decision.fail:
            self.injected_failures += 1
            where = f" in {detail}" if detail else ""
            raise InjectedFault(
                f"{self.spec.message}{where} "
                f"(key={key!r}, attempt={attempt}, call={call})"
            )
        return decision.latency_seconds


class FaultyEngine(Engine):
    """An engine proxy that injects faults before every workload run.

    The proxy preserves the inner engine's name, so workload dispatch
    (``run_<engine-name>``) and format conversion behave exactly as with
    the bare engine; every other attribute (counters, engine-specific
    methods) delegates to the wrapped instance.  The injection point is
    :meth:`inject_fault`, which :meth:`repro.workloads.base.Workload.run`
    calls on any engine that defines it — modeling a system that is
    intermittently unavailable or slow *before* useful work starts.
    """

    def __init__(self, inner: Engine, spec: FaultSpec) -> None:
        # No super().__init__(): counters must stay the inner engine's
        # (workload implementations read them through the proxy).
        self._inner = inner
        self._injector = FaultInjector(spec, default_key=inner.name)

    @property
    def info(self) -> EngineInfo:
        return self._inner.info

    @property
    def fault_spec(self) -> FaultSpec:
        return self._injector.spec

    def inject_fault(self, detail: str = "") -> float:
        return self._injector.inject(detail or f"engine {self._inner.name!r}")

    def __getattr__(self, name: str) -> Any:
        return getattr(self._inner, name)

    # Container protocol: dunder lookup bypasses __getattr__ (it happens
    # on the type), so the ones workloads actually use on engines —
    # e.g. ``len(store)`` for record counts — need explicit forwarding.
    def __len__(self) -> int:
        return len(self._inner)

    def __iter__(self) -> Any:
        return iter(self._inner)

    def __contains__(self, item: Any) -> bool:
        return item in self._inner

    def __getitem__(self, item: Any) -> Any:
        return self._inner[item]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"FaultyEngine({self._inner!r}, {self._injector.spec!r})"


class FaultyWorkload:
    """A workload decorator injecting faults around ``run``.

    Wraps any :class:`repro.workloads.base.Workload` instance; dispatch
    metadata (name, supported engines, description) delegates to the
    wrapped workload, so the wrapper is a drop-in replacement anywhere a
    workload is accepted.
    """

    def __init__(self, inner: Any, spec: FaultSpec) -> None:
        self._inner = inner
        self._injector = FaultInjector(spec, default_key=inner.name)

    def run(self, engine: Any, dataset: Any, **params: Any) -> Any:
        self._injector.inject(f"workload {self._inner.name!r}")
        return self._inner.run(engine, dataset, **params)

    def __getattr__(self, name: str) -> Any:
        return getattr(self._inner, name)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"FaultyWorkload({self._inner!r}, {self._injector.spec!r})"


def with_faults(target: Any, spec: FaultSpec) -> Any:
    """Wrap an engine or a workload with a fault injector."""
    if isinstance(target, Engine):
        return FaultyEngine(target, spec)
    if hasattr(target, "run") and hasattr(target, "name"):
        return FaultyWorkload(target, spec)
    raise TypeError(
        f"cannot inject faults into {type(target).__name__!r}; "
        "expected an Engine or a Workload"
    )
