"""repro — a reproduction of "On Big Data Benchmarking" (Han & Lu, 2014).

A complete, executable big-data-benchmarking framework:

* **4V data generators** (volume / velocity / variety / veracity):
  LDA text, MUDD-style tables, R-MAT graphs, event streams, web logs and
  reviews, plus veracity metrics, velocity controllers, scale-down
  sampling, and format conversion (:mod:`repro.datagen`);
* **abstract test generation**: operations, workload patterns,
  prescriptions, and the five-step test generator (:mod:`repro.core`);
* **execution substrates**: from-scratch MapReduce, relational DBMS,
  NoSQL store, and stream processor (:mod:`repro.engines`);
* **workloads** spanning Table 2's categories and domains
  (:mod:`repro.workloads`);
* **execution layer**: configuration, runner, sweeps, reporting
  (:mod:`repro.execution`);
* **suite models** that regenerate the paper's Table 1 and Table 2
  (:mod:`repro.suites`).

The one blessed public surface is :mod:`repro.api` (re-exported here):
``BenchmarkSpec``, ``run``, ``sweep``, ``ServiceClient``, ``compare``,
``gate``.  Quickstart::

    from repro.api import run

    report = run("micro-wordcount", repeats=3)
    for result in report.results:
        print(result.engine, result.mean("throughput"))

or, as a service (async jobs, admission control, job log)::

    from repro.api import BenchmarkSpec, ServiceClient

    with ServiceClient() as client:
        handle = client.submit(BenchmarkSpec("micro-wordcount", volume=200))
        print(handle.wait().state, handle.result())
"""

from repro.bootstrap import register_default_components

register_default_components()

from repro.analysis import (  # noqa: E402
    BaselineManager,
    Comparison,
    GateReport,
    RunRecord,
    RunStore,
    check_regressions,
    compare_records,
)
from repro.core.errors import ReproError  # noqa: E402
from repro.core.layers import (  # noqa: E402
    BigDataBenchmark,
    ExecutionLayer,
    FunctionLayer,
    UserInterfaceLayer,
)
from repro.core.metrics import MetricKind, MetricSuite, RunEvidence  # noqa: E402
from repro.core.prescription import (  # noqa: E402
    DataRequirement,
    Prescription,
    PrescriptionRepository,
    builtin_repository,
)
from repro.core.process import BenchmarkingProcess, ProcessReport  # noqa: E402
from repro.core.results import (  # noqa: E402
    ResultAnalyzer,
    RunResult,
    TaskFailure,
    split_outcomes,
)
from repro.core.spec import SPEC_VERSION, BenchmarkSpec  # noqa: E402
from repro.core.test_generator import PrescribedTest, TestGenerator  # noqa: E402
from repro.datagen.base import DataSet, DataType  # noqa: E402
from repro.observability import Span, Tracer, current_tracer, trace_span  # noqa: E402
from repro.service import (  # noqa: E402
    AdmissionError,
    Job,
    JobHandle,
    Orchestrator,
    ServiceClient,
)
from repro import api  # noqa: E402
from repro.api import ablate, compare, gate, load, run, serve, sweep  # noqa: E402

__version__ = "1.1.0"

__all__ = [
    "AdmissionError",
    "BaselineManager",
    "BenchmarkSpec",
    "BenchmarkingProcess",
    "BigDataBenchmark",
    "Comparison",
    "GateReport",
    "RunRecord",
    "RunStore",
    "check_regressions",
    "compare_records",
    "DataRequirement",
    "DataSet",
    "DataType",
    "ExecutionLayer",
    "FunctionLayer",
    "Job",
    "JobHandle",
    "MetricKind",
    "MetricSuite",
    "Orchestrator",
    "PrescribedTest",
    "Prescription",
    "PrescriptionRepository",
    "ProcessReport",
    "ReproError",
    "ResultAnalyzer",
    "RunEvidence",
    "RunResult",
    "SPEC_VERSION",
    "ServiceClient",
    "Span",
    "TaskFailure",
    "TestGenerator",
    "Tracer",
    "UserInterfaceLayer",
    "ablate",
    "api",
    "builtin_repository",
    "compare",
    "current_tracer",
    "gate",
    "load",
    "register_default_components",
    "run",
    "serve",
    "split_outcomes",
    "sweep",
    "trace_span",
    "__version__",
]
