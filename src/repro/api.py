"""The one blessed public surface of the framework.

Everything a system owner needs, in one flat namespace::

    from repro.api import BenchmarkSpec, ServiceClient, run, sweep, compare, gate

* :class:`BenchmarkSpec` — what to benchmark (versioned, serializable);
* :func:`run` — one spec through the five-step process, synchronously;
* :func:`sweep` — a prescription across volumes or parameter values;
* :class:`ServiceClient` / :func:`serve` — submit, watch, fetch, and
  cancel jobs against the async orchestrator (benchmark as a service);
* :func:`compare` — statistical comparison of two recorded runs;
* :func:`gate` — regression gate against a promoted baseline;
* :func:`load` — controllable-velocity load generation: drive a
  workload, the service, or a synthetic model at a target rate and
  judge the run against an SLO policy;
* :func:`ablate` — a workload × engine × tuning-profile ablation
  matrix (normal vs optimized vs per-knob one-offs) with statistical
  verdicts and a per-knob attribution table.

These names are the supported API.  Deeper modules
(:mod:`repro.execution`, :mod:`repro.engines`, :mod:`repro.datagen`,
...) remain importable for extension work, but scattered ad-hoc entry
points are deprecated in favor of this facade.
"""

from __future__ import annotations

from typing import Any

from repro.analysis.baselines import BaselineManager
from repro.analysis.compare import (
    DEFAULT_TOLERANCE,
    Comparison,
    compare_records,
)
from repro.analysis.gate import GateReport, check_regressions
from repro.analysis.store import RunRecord, RunStore, resolve_store_dir
from repro.core.prescription import PrescriptionRepository
from repro.core.process import ProcessReport
from repro.core.spec import SPEC_VERSION, BenchmarkSpec
from repro.execution.harness import BenchmarkHarness, SweepReport
from repro.loadgen import (
    LoadPlan,
    LoadReport,
    LoadRunner,
    SLOPolicy,
    SLOVerdict,
)
from repro.observability import Tracer
from repro.service import (
    AdmissionError,
    Job,
    JobHandle,
    Orchestrator,
    ServiceClient,
)


def run(
    spec: BenchmarkSpec | str,
    *,
    repository: PrescriptionRepository | None = None,
    tracer: Tracer | None = None,
    **options: Any,
) -> ProcessReport:
    """Run one benchmark through the five-step process, synchronously.

    ``spec`` is a :class:`BenchmarkSpec` or a prescription name (with
    spec fields as keyword ``options``).  Returns the full
    :class:`~repro.core.process.ProcessReport` audit trail.  For async
    submission, quotas, and job lifecycles, use :class:`ServiceClient`.
    """
    from repro.core.layers import BigDataBenchmark

    framework = BigDataBenchmark(repository=repository)
    return framework.run(spec, tracer=tracer, **options)


def sweep(
    prescription: str,
    engine: str,
    *,
    volumes: list[int] | None = None,
    parameter: str | None = None,
    values: list[Any] | None = None,
    layout: str = "row",
    repository: PrescriptionRepository | None = None,
    **overrides: Any,
) -> SweepReport:
    """Sweep one prescription on one engine across volumes or a parameter.

    Exactly one axis: pass ``volumes=[...]`` for a volume sweep, or
    ``parameter="name", values=[...]`` for a workload-parameter sweep.
    ``layout="columnar"`` runs every point through the engine's
    batch-at-a-time columnar configuration.  Extra keyword arguments
    are fixed workload overrides applied to every point.
    """
    from repro.core.errors import SpecError
    from repro.core.test_generator import TestGenerator
    from repro.execution.runner import TestRunner

    if (volumes is None) == (parameter is None or values is None):
        raise SpecError(
            "sweep needs exactly one axis: volumes=[...], or "
            "parameter=... with values=[...]"
        )
    runner = TestRunner(
        test_generator=TestGenerator(repository) if repository else None
    )
    harness = BenchmarkHarness(runner)
    try:
        if volumes is not None:
            return harness.volume_sweep(
                prescription, engine, volumes, layout=layout, **overrides
            )
        return harness.param_sweep(
            prescription, engine, parameter, values, layout=layout,
            **overrides,
        )
    finally:
        runner.close()


def compare(
    baseline: str | RunRecord,
    candidate: str | RunRecord,
    *,
    store_dir: str | None = None,
    metrics: list[str] | None = None,
    tolerance: float = DEFAULT_TOLERANCE,
    **options: Any,
) -> Comparison:
    """Statistically compare two recorded runs from the run store.

    ``baseline``/``candidate`` are store references (record id, unique
    prefix, series key, or ``"latest"``) or already-loaded records.
    """
    store = RunStore(resolve_store_dir(store_dir))
    baseline_record = (
        baseline if isinstance(baseline, RunRecord) else store.get(baseline)
    )
    candidate_record = (
        candidate
        if isinstance(candidate, RunRecord)
        else store.get(candidate)
    )
    return compare_records(
        baseline_record,
        candidate_record,
        metrics=metrics,
        tolerance=tolerance,
        **options,
    )


def gate(
    baseline: str,
    candidate: str | RunRecord | None = None,
    *,
    store_dir: str | None = None,
    metrics: list[str] | None = None,
    tolerance: float = DEFAULT_TOLERANCE,
    **options: Any,
) -> GateReport:
    """Check a candidate run against a promoted baseline (CI gate).

    ``baseline`` is a baseline *name* (see
    :class:`~repro.analysis.baselines.BaselineManager`); the report's
    ``exit_code`` is 0 on pass, 1 on regression.
    """
    store = RunStore(resolve_store_dir(store_dir))
    return check_regressions(
        store,
        baseline,
        candidate,
        metrics=metrics,
        tolerance=tolerance,
        **options,
    )


def load(
    prescription: str | None = None,
    *,
    arrival: str = "poisson",
    rate: float = 100.0,
    duration: float = 10.0,
    sessions: int = 0,
    think_time: float = 0.0,
    seed: int = 0,
    clock: str = "virtual",
    concurrency: int = 4,
    queue_capacity: int = 64,
    engine: str | None = None,
    volume: int | None = None,
    params: dict[str, Any] | None = None,
    layout: str = "row",
    service: bool = False,
    schedulers: int = 2,
    mean_service: float = 0.005,
    service_distribution: str = "lognormal",
    slo: "SLOPolicy | None" = None,
    record: bool = False,
    store_dir: str | None = None,
    repository: PrescriptionRepository | None = None,
    tracer: Tracer | None = None,
    **arrival_options: Any,
) -> "LoadReport":
    """Drive a target at a controlled rate and judge it against an SLO.

    The target is a seeded synthetic service-time model by default
    (fully deterministic on the virtual clock: same seed → same
    verdict), a prescribed workload when ``prescription`` is given, or
    the benchmark service when ``service=True``.  ``sessions > 0``
    switches from the open-loop ``arrival`` schedule to the closed-loop
    session model.  With ``record=True`` the report lands in the run
    store as its own comparable series.  ``slo=None`` judges against
    the stock :class:`~repro.loadgen.SLOPolicy` budgets.
    """
    from repro.loadgen import (
        LoadPlan,
        LoadRunner,
        ServiceTarget,
        SyntheticTarget,
        WorkloadTarget,
    )

    if service:
        target: Any = ServiceTarget(
            spec=prescription,
            store_dir=store_dir,
            schedulers=schedulers,
        )
    elif prescription is not None:
        target = WorkloadTarget(
            prescription,
            engine=engine,
            volume=volume,
            params=params,
            layout=layout,
            repository=repository,
        )
    else:
        target = SyntheticTarget(
            mean_service=mean_service,
            distribution=service_distribution,
        )
    plan = LoadPlan(
        arrival=arrival,
        rate=rate,
        duration=duration,
        sessions=sessions,
        think_time=think_time,
        seed=seed,
        arrival_options=arrival_options,
    )
    runner = LoadRunner(
        target,
        clock=clock,
        concurrency=concurrency,
        queue_capacity=queue_capacity,
        tracer=tracer,
    )
    store = RunStore(resolve_store_dir(store_dir)) if record else None
    return runner.run(plan, slo=slo or SLOPolicy(), store=store)


def ablate(
    workloads: Any,
    engines: Any = None,
    **options: Any,
) -> "AblationReport":
    """Run a tuning-ablation matrix with statistical verdicts.

    Expands workload × engine × {normal, optimized, per-knob one-off},
    runs every supported cell through the harness (recording each into
    the run store under a tuning-aware fingerprint), and judges every
    tuned cell against its normal baseline with bootstrap CIs and the
    Mann–Whitney test.  Returns an
    :class:`~repro.tuning.ablate.AblationReport`; render it with
    :func:`repro.tuning.render_ablation`.  Keyword ``options`` mirror
    :func:`repro.tuning.ablate.run_ablation` (``repeats``, ``seed``,
    ``layout``, ``service=True`` for queued submission, ...).
    """
    from repro.tuning import run_ablation

    return run_ablation(workloads, engines, **options)


def serve(**options: Any) -> ServiceClient:
    """Start a benchmark service and return its client.

    Keyword arguments configure the underlying
    :class:`~repro.service.Orchestrator` (``schedulers``, ``store_dir``,
    ``queue``, ``tracer``, ...).  Use as a context manager so queued
    jobs drain on exit::

        with serve(schedulers=4) as client:
            handle = client.submit("micro-wordcount")
    """
    return ServiceClient(**options)


__all__ = [
    "AdmissionError",
    "BaselineManager",
    "BenchmarkSpec",
    "Comparison",
    "GateReport",
    "Job",
    "JobHandle",
    "LoadPlan",
    "LoadReport",
    "LoadRunner",
    "Orchestrator",
    "ProcessReport",
    "RunRecord",
    "RunStore",
    "SLOPolicy",
    "SLOVerdict",
    "SPEC_VERSION",
    "ServiceClient",
    "SweepReport",
    "ablate",
    "compare",
    "gate",
    "load",
    "run",
    "serve",
    "sweep",
]
