"""E-commerce domain scenario: structured + semi-structured + analytics.

Follows the BigBench recipe the paper surveys, fully executed:

1. fit a table model on the "real" retail orders and generate synthetic
   orders (structured data, veracity considered);
2. chain semi-structured data from the tables — web logs and product
   reviews whose entities all resolve against the structured data;
3. run the e-commerce analytics: item-based collaborative filtering and
   the select→join→aggregate relational query, the latter on BOTH system
   types (DBMS and MapReduce) with identical answers.

Run:  python examples/ecommerce_analytics.py
"""

from __future__ import annotations

from repro.datagen import (
    FittedTableGenerator,
    LdaTextGenerator,
    ReviewGenerator,
    WebLogGenerator,
    convert,
    table_veracity,
)
from repro.datagen.corpus import load_retail_tables, load_text_corpus
from repro.engines.dbms import DbmsEngine
from repro.engines.mapreduce import MapReduceEngine
from repro.workloads import (
    CollaborativeFilteringWorkload,
    CountUrlLinksWorkload,
    RelationalQueryWorkload,
)


def main() -> None:
    seeds = load_retail_tables()

    # -- Structured data: fitted table generation ---------------------------
    order_generator = FittedTableGenerator(seed=7).fit(seeds["orders"])
    orders = order_generator.generate(1200)
    veracity = table_veracity(seeds["orders"].records, orders.records)
    print(f"Synthetic orders: {orders.num_records} rows, "
          f"veracity JS={veracity.score:.4f} "
          f"({'faithful' if veracity.is_faithful else 'NOT faithful'})")

    # -- Semi-structured data chained from the tables (BigBench style) ------
    weblog = WebLogGenerator(seeds["customers"], seeds["products"],
                             seed=7).generate(600)
    print(f"Web logs: {weblog.num_records} records; sample line:")
    print(f"  {convert(weblog, 'common-log').payload[0]}")

    review_text = LdaTextGenerator(iterations=10, seed=7).fit(
        load_text_corpus(num_documents=120, words_per_document=40)
    )
    reviews = ReviewGenerator(
        seeds["customers"], seeds["products"], review_text, seed=7
    ).generate(100)
    positive = sum(1 for r in reviews.records if r["rating"] >= 4)
    print(f"Reviews: {reviews.num_records} generated, "
          f"{positive} rated 4-5 stars; text + table references combined "
          f"(the paper's semi-structured example)")

    # -- Analytics: collaborative filtering ---------------------------------
    cf = CollaborativeFilteringWorkload().run(MapReduceEngine(), orders)
    some_item = next(iter(sorted(cf.output)))
    print(f"\nCollaborative filtering: {cf.extra['pairs_counted']} "
          f"co-occurrence pairs counted; customers who bought product "
          f"{some_item} also bought {cf.output[some_item][:3]}")

    # -- The same relational query on two system types ----------------------
    query = RelationalQueryWorkload()
    on_dbms = query.run(DbmsEngine(), orders)
    on_mapreduce = query.run(MapReduceEngine(), orders)
    print("\nTop categories by quantity sold "
          "(select→join→aggregate, both engines):")
    dbms_answer = sorted(on_dbms.output, key=lambda row: -row[1])[:3]
    for category, total in dbms_answer:
        print(f"  {category:12s} {total:8.0f}")
    agreement = sorted(on_dbms.output) == [
        (category, total) for category, total in sorted(on_mapreduce.output)
    ]
    print(f"DBMS answer == MapReduce answer: {agreement}")
    print(f"DBMS {on_dbms.duration_seconds:.4f}s vs "
          f"MapReduce {on_mapreduce.duration_seconds:.4f}s (measured)")

    # -- Pavlo's count-URL-links over the chained web logs -------------------
    links = CountUrlLinksWorkload().run(MapReduceEngine(), weblog)
    busiest = sorted(links.output, key=lambda row: -row[1])[:3]
    print("\nBusiest URLs in the generated click stream:")
    for path, hits in busiest:
        print(f"  {path:20s} {hits:5d} hits")


if __name__ == "__main__":
    main()
