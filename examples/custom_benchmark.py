"""Extensibility scenario: add a new workload and prescription.

Section 2.3 requires that benchmarks "be able to add new workloads or
data sets with little or no change to the underlying algorithms and
functions".  This example adds a brand-new workload (distinct-word
counting), registers it, wraps it in a prescription built from abstract
operations and a pattern (Figure 4 steps 2-4), and runs it through the
standard process — without touching any framework code.

Run:  python examples/custom_benchmark.py
"""

from __future__ import annotations

from typing import Any

from repro import BigDataBenchmark, api
from repro.core import registry
from repro.core.operations import operations
from repro.core.patterns import MultiOperationPattern
from repro.core.prescription import DataRequirement
from repro.datagen.base import DataSet, DataType
from repro.engines.mapreduce import JobConf, MapReduceEngine, MapReduceJob
from repro.workloads.base import (
    ApplicationDomain,
    Workload,
    WorkloadCategory,
    WorkloadResult,
)


class DistinctWordsWorkload(Workload):
    """Count the number of *distinct* words per starting letter."""

    name = "distinct-words"
    domain = ApplicationDomain.MICRO
    category = WorkloadCategory.OFFLINE_ANALYTICS
    data_type = DataType.TEXT
    abstract_operations = tuple(operations("transform", "aggregate", "count"))
    pattern = MultiOperationPattern(
        operations("transform", "aggregate", "count")
    )

    def run_mapreduce(
        self, engine: MapReduceEngine, dataset: DataSet, **params: Any
    ) -> WorkloadResult:
        def letter_map(doc_id: int, text: str):
            for word in set(text.split()):
                yield word[0], word

        def distinct_reduce(letter: str, words: list[str]):
            yield letter, len(set(words))

        job = MapReduceJob(
            "distinct-words", letter_map, distinct_reduce,
            conf=JobConf(num_reduce_tasks=2),
        )
        result = engine.run(job, list(enumerate(dataset.records)))
        return WorkloadResult(
            workload=self.name,
            engine=engine.name,
            output=dict(result.output),
            records_in=dataset.num_records,
            records_out=len(result.output),
            duration_seconds=result.wall_seconds,
            cost=result.cost,
            simulated_seconds=result.simulated_seconds,
        )


def main() -> None:
    # 1. Register the new workload (one line; nothing else changes).
    registry.workloads.register(DistinctWordsWorkload.name,
                                DistinctWordsWorkload)

    benchmark = BigDataBenchmark()

    # 2. Assemble a prescription from abstract parts (Figure 4, steps 2-4).
    benchmark.function_layer.test_generator.make_prescription(
        name="micro-distinct-words",
        domain="micro benchmarks",
        data=DataRequirement("lda-text", DataType.TEXT, volume=150,
                             fit_on="text-corpus"),
        operations=operations("transform", "aggregate", "count"),
        pattern=MultiOperationPattern(
            operations("transform", "aggregate", "count")
        ),
        workload="distinct-words",
        metric_names=["duration", "throughput", "ops_per_second"],
    )

    # 3. Run it through the unchanged five-step process — via the
    #    blessed facade, pointing it at the repository that now holds
    #    the custom prescription.
    repository = benchmark.function_layer.test_generator.repository
    report = api.run("micro-distinct-words", repository=repository)
    result = report.results[0]
    print("New workload ran through the standard process:")
    for step in report.steps:
        print(f"  {step.step:22s} {step.elapsed_seconds * 1e3:8.2f} ms")
    print(f"\nDistinct words per letter "
          f"({result.extra if result.extra else 'ok'}):")

    raw = report.results[0]
    print(f"  throughput: {raw.mean('throughput'):,.0f} docs/s")
    print(f"  engines ran: {raw.engine}")

    test = benchmark.function_layer.test_generator.generate(
        "micro-distinct-words", "mapreduce"
    )
    outcome = test.run()
    top = sorted(outcome.output.items(), key=lambda kv: -kv[1])[:5]
    for letter, count in top:
        print(f"  '{letter}': {count} distinct words")


if __name__ == "__main__":
    main()
