"""Heterogeneous platform study (Section 5.2 future work, executed).

Answers the paper's two platform questions over simulated Xeon /
Xeon+GPGPU / Xeon+MIC platforms, with the §5.2 "enriched" workloads
(multimedia image classification and data-parallel MLP training) among
the applications under test:

1. Is there a platform that consistently wins BOTH performance and
   energy efficiency for all big data applications?
2. For each application class, which platform fits best?

Run:  python examples/platform_study.py
"""

from __future__ import annotations

from repro.core.platforms import (
    PlatformEvaluation,
    accelerable_fraction,
)
from repro.datagen.media import SyntheticImageGenerator
from repro.datagen.mixture import GaussianMixtureGenerator
from repro.datagen.text import RandomTextGenerator
from repro.engines.mapreduce import MapReduceEngine
from repro.execution.report import ascii_table
from repro.workloads import (
    GrepWorkload,
    ImageClassificationWorkload,
    MlpClassificationWorkload,
    SortWorkload,
)

# The multimedia and learning workloads are numeric-kernel heavy.
from repro.core.platforms import ACCELERABLE_FRACTIONS

ACCELERABLE_FRACTIONS.setdefault("image-classification", 0.8)
ACCELERABLE_FRACTIONS.setdefault("mlp-classification", 0.92)


def main() -> None:
    text = RandomTextGenerator(document_length=40, seed=61).generate(250)
    images = SyntheticImageGenerator(seed=62).generate(150)
    features = GaussianMixtureGenerator(
        num_components=4, dimensions=3, spread=10.0, seed=63
    ).generate(400)

    print("Measuring workloads on the MapReduce substrate ...")
    results = [
        SortWorkload().run(MapReduceEngine(), text),
        GrepWorkload().run(MapReduceEngine(), text, pattern_text="river"),
        ImageClassificationWorkload().run(MapReduceEngine(), images),
        MlpClassificationWorkload().run(
            MapReduceEngine(), features, max_epochs=20, seed=1
        ),
    ]
    for result in results:
        accuracy = result.extra.get("accuracy")
        note = f" (accuracy {accuracy:.2f})" if accuracy is not None else ""
        print(f"  {result.workload:22s} "
              f"{(result.simulated_seconds or 0) * 1e3:8.3f} ms simulated"
              f"{note}")

    evaluation = PlatformEvaluation()
    for result in results:
        evaluation.add(result)

    print("\nProjections (uniform interface, same software stack):")
    print(ascii_table(evaluation.rows()))

    print("\nQuestion 2 — per-class recommendation:")
    print(
        ascii_table(
            [
                {
                    "workload": workload,
                    "accelerable": accelerable_fraction(workload),
                    "best performance": picks["performance"],
                    "best energy": picks["energy"],
                }
                for workload, picks in
                evaluation.per_class_recommendation().items()
            ]
        )
    )

    winner = evaluation.consistent_winner()
    print(f"\nQuestion 1 — a platform winning both metrics everywhere: "
          f"{winner or 'none (as the paper anticipated)'}")


if __name__ == "__main__":
    main()
