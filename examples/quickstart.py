"""Quickstart: run a benchmark through the blessed ``repro.api`` facade.

Demonstrates the paper's five-step benchmarking process (Figure 1) in a
dozen lines — synchronously via :func:`repro.api.run`, then as a
service job via :class:`repro.api.ServiceClient`.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import api
from repro.execution.report import render_results


def main() -> None:
    # Run WordCount, three repeats, through the five-step process.
    report = api.run("micro-wordcount", volume=300, repeats=3)

    print("Five-step process (Figure 1):")
    for step in report.steps:
        print(f"  {step.step:22s} {step.elapsed_seconds * 1e3:8.2f} ms")

    print("\nResults:")
    print(render_results(report.results,
                         metrics=["duration", "throughput", "ops_per_second",
                                  "energy", "cost"]))

    ranking = report.step("analysis-evaluation").detail["ranking"]
    engine, duration = ranking[0]
    print(f"\nFastest engine: {engine} ({duration:.4f}s mean duration)")

    # The same benchmark as a *job*: submitted to the in-process
    # service, admitted through the bounded queue, executed by a
    # scheduler thread, and fetched back through the handle.
    with api.serve(schedulers=2) as client:
        handle = client.submit(
            api.BenchmarkSpec("micro-wordcount", volume=300, repeats=3)
        )
        job = handle.wait()
    print(f"\nService job {job.job_id}: {job.state} "
          f"({len(job.outcomes)} outcome(s), "
          f"queue wait {job.queue_wait_seconds():.3f}s)")


if __name__ == "__main__":
    main()
