"""Quickstart: run a benchmark through the three-layer facade.

Demonstrates the paper's five-step benchmarking process (Figure 1) in a
dozen lines: pick a prescription, run it, read the per-step audit trail
and the metric report.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import BigDataBenchmark
from repro.execution.report import render_results


def main() -> None:
    benchmark = BigDataBenchmark()

    print("Available prescriptions:")
    for name in benchmark.user_interface.available_prescriptions():
        prescription = benchmark.prescription(name)
        print(f"  {name:32s} [{prescription.domain}] -> {prescription.workload}")

    # Run WordCount on the MapReduce engine, three repeats.
    report = benchmark.run("micro-wordcount", volume=300, repeats=3)

    print("\nFive-step process (Figure 1):")
    for step in report.steps:
        print(f"  {step.step:22s} {step.elapsed_seconds * 1e3:8.2f} ms")

    print("\nResults:")
    print(render_results(report.results,
                         metrics=["duration", "throughput", "ops_per_second",
                                  "energy", "cost"]))

    ranking = report.step("analysis-evaluation").detail["ranking"]
    engine, duration = ranking[0]
    print(f"\nFastest engine: {engine} ({duration:.4f}s mean duration)")


if __name__ == "__main__":
    main()
