"""Cloud-serving (OLTP) scenario: YCSB mixes, hybrid traffic, velocity.

1. run YCSB workload mixes A/B/E against the partitioned NoSQL store and
   compare against the DBMS serving the same operations (the YCSB paper's
   NoSQL-vs-relational comparison, Section 4.2);
2. demonstrate the *data updating frequency* facet of velocity by
   planning and applying update streams at controlled frequencies;
3. run the Section 5.2 "truly hybrid workload": serving traffic with an
   arrival pattern profiled from web logs, interleaved with analytics
   scans, and show the interference.

Run:  python examples/cloud_serving.py
"""

from __future__ import annotations

from repro._util import percentile
from repro.datagen import UpdateScheduler
from repro.datagen.corpus import load_retail_tables
from repro.datagen.kv import KeyValueGenerator
from repro.datagen.weblog import WebLogGenerator
from repro.engines.dbms import DbmsEngine
from repro.engines.nosql import NoSqlStore
from repro.workloads import HybridWorkload, YcsbWorkload, profile_arrival_pattern


def main() -> None:
    records = KeyValueGenerator(field_count=10, field_length=100,
                                seed=3).generate(400)
    ycsb = YcsbWorkload()

    # -- 1. YCSB mixes on NoSQL vs DBMS --------------------------------------
    print("YCSB operation mixes (400 records, 800 operations):")
    print(f"{'mix':4s} {'engine':8s} {'mean':>10s} {'p99':>10s}")
    for mix in ("A", "B", "E"):
        for engine in (NoSqlStore(num_partitions=8, replication=2, seed=4),
                       DbmsEngine()):
            result = ycsb.run(engine, records, workload_mix=mix,
                              operation_count=800, seed=5)
            ordered = sorted(result.latencies)
            print(f"{mix:4s} {result.engine:8s} "
                  f"{1e3 * sum(ordered) / len(ordered):9.3f}ms "
                  f"{1e3 * percentile(ordered, 0.99):9.3f}ms")

    # -- 2. controlled update frequency --------------------------------------
    print("\nControlled data-updating frequency (the Table 1 gap):")
    for frequency in (100.0, 1000.0):
        scheduler = UpdateScheduler(updates_per_second=frequency, seed=6)
        events = scheduler.plan(duration_seconds=3.0, key_space=400)
        state: dict[int, float] = {}
        counts = UpdateScheduler.apply(state, events)
        print(f"  requested {frequency:7.0f} ops/s -> planned "
              f"{len(events) / 3.0:7.0f} ops/s "
              f"(mix: {counts})")

    # -- 3. hybrid workload with profiled arrivals ---------------------------
    tables = load_retail_tables()
    weblog = WebLogGenerator(tables["customers"], tables["products"],
                             seed=8).generate(600)
    pattern = profile_arrival_pattern(weblog)
    print("\nArrival pattern profiled from web logs:")
    for operation, rate in sorted(pattern.rates.items()):
        print(f"  {operation:8s} {rate:8.1f} ops/s")

    hybrid = HybridWorkload().run(
        NoSqlStore(num_partitions=8, seed=9), records,
        arrival_pattern=pattern, operation_count=1000,
        analytics_every=50, analytics_scan_length=300,
    )
    print("\nHybrid run (serving + interleaved analytics scans):")
    for op_class, mean_latency in sorted(
        hybrid.output["mean_latency_by_class"].items()
    ):
        count = hybrid.extra["per_class_counts"][op_class]
        print(f"  {op_class:8s} {count:5d} ops, "
              f"mean {mean_latency * 1e3:7.3f} ms")
    print(f"Total simulated service time: "
          f"{hybrid.simulated_seconds:.3f}s for {hybrid.records_out} ops")


if __name__ == "__main__":
    main()
