"""Search-engine domain scenario (one of the paper's three major
internet-service domains).

The full 4V pipeline for a search-engine benchmark:

1. learn data models from "real" seeds — an LDA topic model from the text
   corpus, R-MAT parameters from the social web graph (veracity);
2. generate a synthetic document corpus and a synthetic link graph at the
   requested volume, in parallel partitions (volume + velocity);
3. verify the synthetic data against the seeds with divergence metrics;
4. run the domain's workloads: inverted-index build and PageRank.

Run:  python examples/search_engine.py
"""

from __future__ import annotations

from repro.core.prescription import load_seed
from repro.datagen import (
    LdaTextGenerator,
    ParallelGenerationController,
    RmatGraphGenerator,
    graph_veracity,
    text_veracity,
)
from repro.engines.mapreduce import MapReduceEngine
from repro.workloads import InvertedIndexWorkload, PageRankWorkload


def main() -> None:
    # -- Step 1+2: veracity-preserving generation --------------------------
    corpus_seed = load_seed("text-corpus")
    text_generator = LdaTextGenerator(num_topics=4, iterations=15, seed=42)
    text_generator.fit(corpus_seed)
    controller = ParallelGenerationController(text_generator, num_partitions=4)
    documents, velocity = controller.run(400)
    print(f"Generated {documents.num_records} documents on "
          f"{velocity.num_partitions} parallel generators "
          f"(simulated rate {velocity.simulated_rate:,.0f} docs/s)")

    graph_seed = load_seed("social-graph")
    graph_generator = RmatGraphGenerator(seed=42).fit(graph_seed)
    web_graph = graph_generator.generate(1024)
    print(f"Generated web graph: {len(web_graph)} links, "
          f"R-MAT a={graph_generator.a:.2f}")

    # -- Step 3: veracity checks -------------------------------------------
    text_report = text_veracity(corpus_seed.records, documents.records)
    graph_report = graph_veracity(graph_seed.records, web_graph.records)
    print(f"Text veracity:  JS={text_report.score:.4f} "
          f"({'faithful' if text_report.is_faithful else 'NOT faithful'})")
    print(f"Graph veracity: JS={graph_report.score:.4f} "
          f"({'faithful' if graph_report.is_faithful else 'NOT faithful'})")

    # -- Step 4: the domain workloads ---------------------------------------
    index_result = InvertedIndexWorkload().run(MapReduceEngine(), documents)
    print(f"\nInverted index: {index_result.records_out} terms from "
          f"{index_result.records_in} documents "
          f"in {index_result.duration_seconds:.3f}s "
          f"(simulated cluster: {index_result.simulated_seconds:.4f}s)")
    sample_term = next(iter(sorted(index_result.output)))
    print(f"  e.g. postings[{sample_term!r}] = "
          f"{index_result.output[sample_term][:4]} ...")

    rank_result = PageRankWorkload().run(
        MapReduceEngine(), web_graph, tolerance=1e-4, max_iterations=25
    )
    top = sorted(rank_result.output.items(), key=lambda kv: -kv[1])[:5]
    print(f"\nPageRank converged after {rank_result.extra['iterations']} "
          f"iterations (the iterative-operation pattern: the job count was "
          f"only known at run time)")
    for vertex, rank in top:
        print(f"  vertex {vertex:5d}  rank {rank:.5f}")


if __name__ == "__main__":
    main()
